"""Benchmark for the BTB-X way-sizing ablation (extension beyond the paper)."""

from conftest import BENCH_SIM_SCALE

from repro.experiments import ablation_ways
from repro.experiments.config import current_scale


def test_bench_ablation_ways(benchmark):
    scale = current_scale(BENCH_SIM_SCALE)
    result = benchmark.pedantic(ablation_ways.run, args=(scale,), rounds=1, iterations=1)
    print("\n" + ablation_ways.format_report(result))
    variants = result["variants"]
    # Key Insight 2: uniform 25-bit offset fields waste storage, so the
    # uniform variant tracks fewer branches than the skewed-width variants.
    assert variants["uniform25"]["entries"] < variants["paper"]["entries"]
    assert variants["uniform25"]["entries"] < variants["calibrated"]["entries"]

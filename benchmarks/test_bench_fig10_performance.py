"""Benchmark/reproduction target for Figure 10 (speedups with/without FDIP)."""

from conftest import BENCH_SIM_SCALE

from repro.experiments import fig10_performance
from repro.experiments.config import current_scale


def test_bench_fig10_performance(benchmark):
    scale = current_scale(BENCH_SIM_SCALE)
    result = benchmark.pedantic(fig10_performance.run, args=(scale,), rounds=1, iterations=1)
    print("\n" + fig10_performance.format_report(result))
    server = result["summary"]["server"]
    # Shape: every organization gains from FDIP, BTB-X gains at least as much
    # as the conventional BTB, and gains on servers exceed 1.0 (the baseline).
    for style in ("Conv-BTB", "PDede", "BTB-X"):
        assert server[style]["gain_with_fdip"] >= server[style]["gain_without_fdip"] - 1e-6
    assert server["BTB-X"]["gain_with_fdip"] >= server["Conv-BTB"]["gain_with_fdip"] - 0.02
    assert server["BTB-X"]["gain_without_fdip"] >= 0.95

"""Benchmark/reproduction target for Table IV (branch capacity per budget)."""

import pytest

from repro.experiments import table4_capacity


def test_bench_table4_capacity(benchmark):
    result = benchmark(table4_capacity.run)
    print("\n" + table4_capacity.format_report(result))
    summary = result["summary"]
    # Headline claims: ~2.24x more branches than Conv-BTB, 1.24-1.34x over PDede.
    assert summary["btbx_over_conventional_min"] == pytest.approx(2.24, abs=0.02)
    assert summary["btbx_over_pdede_min"] == pytest.approx(1.24, abs=0.04)
    assert summary["btbx_over_pdede_max"] == pytest.approx(1.34, abs=0.04)
    for row in result["rows"]:
        assert abs(row["pdede"] - row["paper_pdede"]) <= 4
        assert row["conventional"] == row["paper_conventional"]

"""Benchmark of the scenario subsystem: composer throughput and overhead.

Times the streaming interleave on its own (instructions/second through
:meth:`TraceComposer.stream`) and a full scenario simulation, so the cost the
scenario layer adds on top of plain single-trace simulation shows up in the
perf trajectory.  The composer must stay cheap relative to the simulator's
inner loop: interleaving is index arithmetic, simulation is the work.
"""

from __future__ import annotations

from conftest import BENCH_SIM_SCALE

from repro.common.config import ASIDMode, BTBStyle
from repro.experiments.config import current_scale
from repro.scenarios import TraceComposer, execute_scenario, get_scenario
from repro.traces.store import default_store


def _composer(instructions: int) -> TraceComposer:
    spec = get_scenario("consolidated_server")
    store = default_store()
    traces = {workload: store.get(workload, instructions) for workload in set(spec.workloads)}
    return TraceComposer(spec, traces)


def test_bench_composer_throughput(benchmark):
    scale = current_scale(BENCH_SIM_SCALE)
    composer = _composer(scale.instructions)

    def drain() -> int:
        consumed = 0
        for _ in composer.stream(scale.instructions):
            consumed += 1
        return consumed

    consumed = benchmark(drain)
    assert consumed == scale.instructions
    rate = scale.instructions / benchmark.stats.stats.mean
    print(f"\ncomposer interleave: {rate:,.0f} instructions/s over 4 tenants")


def test_bench_scenario_simulation(benchmark):
    scale = current_scale(BENCH_SIM_SCALE)

    result = benchmark.pedantic(
        execute_scenario,
        args=("consolidated_server",),
        kwargs=dict(
            style=BTBStyle.BTBX,
            asid_mode=ASIDMode.TAGGED,
            instructions=scale.instructions,
            warmup_instructions=scale.warmup_instructions,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.aggregate.instructions == scale.instructions - scale.warmup_instructions
    assert result.context_switches > 0
    print(
        f"\nscenario sim: {result.aggregate.instructions} measured instructions, "
        f"{result.context_switches} context switches, "
        f"aggregate BTB MPKI {result.aggregate.btb_mpki:.2f}"
    )

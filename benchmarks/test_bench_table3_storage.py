"""Benchmark/reproduction target for Table III (BTB-X storage requirements)."""

import pytest

from repro.experiments import table3_storage


def test_bench_table3_storage(benchmark):
    result = benchmark(table3_storage.run)
    print("\n" + table3_storage.format_report(result))
    for row in result["rows"]:
        assert row["storage_kib"] == pytest.approx(row["paper_storage_kib"], rel=0.02)
        assert row["set_bits"] == 224

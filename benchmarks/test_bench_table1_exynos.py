"""Benchmark/reproduction target for Table I (Exynos BTB storage trend)."""

from repro.experiments import table1_exynos


def test_bench_table1_exynos(benchmark):
    result = benchmark(table1_exynos.run)
    print("\n" + table1_exynos.format_report(result))
    assert result["growth_factor_m1_to_m6"] > 5.0

"""Benchmark/reproduction target for Figure 12 (CVP-1 offset distribution)."""

from repro.experiments import fig12_cvp
from repro.experiments.config import QUICK_SCALE, current_scale


def test_bench_fig12_cvp(benchmark):
    scale = current_scale(QUICK_SCALE)
    result = benchmark.pedantic(fig12_cvp.run, args=(scale,), rounds=1, iterations=1)
    print("\n" + fig12_cvp.format_report(result))
    # The CVP-1-like suite must show essentially the same distribution as the
    # IPC-1-like suite (the paper's point: the shape is a software property).
    assert result["max_cdf_gap"] <= 0.25
    assert result["cvp1_cdf"] == sorted(result["cvp1_cdf"])

"""Benchmark/reproduction target for Table V (energy) and the latency analysis."""

import pytest

from conftest import BENCH_SIM_SCALE

from repro.experiments import table5_energy
from repro.experiments.config import current_scale


def test_bench_table5_energy(benchmark):
    scale = current_scale(BENCH_SIM_SCALE)
    result = benchmark.pedantic(table5_energy.run, args=(scale,), rounds=1, iterations=1)
    print("\n" + table5_energy.format_report(result))
    designs = result["designs"]
    conv = designs["Conv-BTB"]
    pdede = designs["PDede"]
    btbx = designs["BTB-X"]
    # Per-access energies reproduce the CACTI calibration points.
    assert conv["per_access"]["main"]["read_pj"] == pytest.approx(13.2, abs=0.4)
    assert btbx["per_access"]["main"]["read_pj"] == pytest.approx(8.5, abs=0.4)
    # Total energy ordering of Table V: Conv-BTB >> PDede >= BTB-X.
    assert conv["total_energy_uj"] > pdede["total_energy_uj"]
    assert conv["total_energy_uj"] > btbx["total_energy_uj"]
    # Latency analysis (Section VI-E): PDede's serial lookup is the slowest,
    # BTB-X is at least as fast as the conventional BTB.
    assert pdede["lookup_latency_ns"] > conv["lookup_latency_ns"]
    assert btbx["lookup_latency_ns"] <= conv["lookup_latency_ns"] + 0.01

"""Benchmark/reproduction target for Figure 13 / Section VI-G (x86 study)."""

import pytest

from repro.experiments import fig13_x86
from repro.experiments.config import QUICK_SCALE, current_scale


def test_bench_fig13_x86(benchmark):
    scale = current_scale(QUICK_SCALE)
    result = benchmark.pedantic(fig13_x86.run, args=(scale,), rounds=1, iterations=1)
    print("\n" + fig13_x86.format_report(result))
    # x86 needs a few more offset bits per set and loses a little capacity.
    assert result["x86_set_bits"] == 230
    assert result["arm64_set_bits"] == 224
    ratios = result["capacity_ratio_vs_conventional"]
    assert ratios["arm64"] == pytest.approx(2.24, abs=0.02)
    assert ratios["x86"] == pytest.approx(2.18, abs=0.02)
    # At equal coverage the x86 CDF never exceeds the Arm64 CDF by much.
    for arm_val, x86_val in zip(result["arm64_cdf"], result["x86_cdf"]):
        assert x86_val <= arm_val + 0.12

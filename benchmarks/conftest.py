"""Benchmark harness configuration.

Each benchmark module regenerates one table or figure of the paper.  The
simulation-heavy benchmarks (Figures 9, 10, 11 and Table V) default to a
reduced workload count and trace length so the whole suite finishes in
minutes; set ``REPRO_SCALE=full`` for paper-style runs (much slower).

Benchmarks print a short report of the regenerated table/figure so the run's
output doubles as the reproduction record.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale

#: Scale used by the simulation-heavy benchmarks unless REPRO_SCALE overrides.
BENCH_SIM_SCALE = ExperimentScale(
    name="bench",
    instructions=100_000,
    warmup_fraction=0.5,
    server_workloads=4,
    client_workloads=2,
    cvp_workloads=3,
    x86_workloads=2,
)

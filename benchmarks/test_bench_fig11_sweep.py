"""Benchmark/reproduction target for Figure 11 (performance vs storage budget)."""

from conftest import BENCH_SIM_SCALE

from repro.experiments import fig11_sweep
from repro.experiments.config import BUDGETS_KIB, current_scale


def test_bench_fig11_sweep(benchmark):
    scale = current_scale(BENCH_SIM_SCALE)
    result = benchmark.pedantic(
        fig11_sweep.run, args=(scale, BUDGETS_KIB), rounds=1, iterations=1
    )
    print("\n" + fig11_sweep.format_report(result))
    server = result["curves"]["server"]
    client = result["curves"]["client"]
    budgets = result["budgets_kib"]
    # Shape 1: performance never degrades substantially as the budget grows.
    for style, series in server.items():
        assert series[-1] >= series[0] - 0.02, style
    # Shape 2: at every shared budget BTB-X is at least as fast as Conv-BTB.
    for btbx_val, conv_val in zip(server["BTB-X"], server["Conv-BTB"]):
        assert btbx_val >= conv_val - 0.03
    # Shape 3 (headline): BTB-X with half the budget matches Conv-BTB; compare
    # BTB-X at budget[i] with Conv-BTB at budget[i+1] (which is 2x larger).
    for i in range(len(budgets) - 1):
        assert server["BTB-X"][i] >= server["Conv-BTB"][i + 1] - 0.05
    # Shape 4: client curves level off earlier (smaller spread across budgets).
    client_spread = max(client["Conv-BTB"]) - min(client["Conv-BTB"])
    server_spread = max(server["Conv-BTB"]) - min(server["Conv-BTB"])
    assert client_spread <= server_spread + 0.05

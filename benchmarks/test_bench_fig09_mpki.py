"""Benchmark/reproduction target for Figure 9 (BTB MPKI at 14.5 KB)."""

from conftest import BENCH_SIM_SCALE

from repro.experiments import fig09_mpki
from repro.experiments.config import current_scale


def test_bench_fig09_mpki(benchmark):
    scale = current_scale(BENCH_SIM_SCALE)
    result = benchmark.pedantic(fig09_mpki.run, args=(scale,), rounds=1, iterations=1)
    print("\n" + fig09_mpki.format_report(result))
    averages = result["averages"]
    # Shape: servers stress the BTB far more than clients, and the conventional
    # BTB (fewest entries per KB) misses the most on servers.
    assert averages["server"]["Conv-BTB"] > averages["client"]["Conv-BTB"]
    assert averages["server"]["Conv-BTB"] >= averages["server"]["BTB-X"]
    assert averages["server"]["Conv-BTB"] >= averages["server"]["PDede"]
    assert averages["server"]["Conv-BTB"] > 1.0

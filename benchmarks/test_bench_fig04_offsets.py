"""Benchmark/reproduction target for Figure 4 (target offset distribution)."""

from repro.experiments import fig04_offsets
from repro.experiments.config import QUICK_SCALE, current_scale


def test_bench_fig04_offsets(benchmark):
    scale = current_scale(QUICK_SCALE)
    result = benchmark.pedantic(fig04_offsets.run, args=(scale,), rounds=1, iterations=1)
    print("\n" + fig04_offsets.format_report(result))
    bands = result["bands"]
    cdf = result["cdf"]
    # Shape checks: short offsets dominate, the long tail is tiny, CDF monotone.
    assert cdf == sorted(cdf)
    assert 0.35 <= bands["le_6_bits"] <= 0.90
    assert bands["gt_25_bits"] <= 0.03
    assert result["bands"]["11_to_25_bits"] > 0.02

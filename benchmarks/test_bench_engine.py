"""Benchmark of the experiment engine itself: pooled grid throughput.

Times one fig09-style (style x trace) grid going through
:class:`ExperimentEngine` so the orchestration overhead (job hashing, result
round-tripping, pool dispatch) is tracked alongside the simulation kernels.
Set ``REPRO_WORKERS`` to benchmark a worker pool instead of serial execution;
the warm-cache assertion at the end pins the engine's memoization contract.
"""

from __future__ import annotations

import os

from conftest import BENCH_SIM_SCALE

from repro.experiments.config import DEFAULT_BUDGET_KIB, current_scale
from repro.experiments.engine import ExperimentEngine, grid_jobs
from repro.experiments.runner import EVALUATED_STYLES, evaluation_traces


def test_bench_engine_grid(benchmark):
    scale = current_scale(BENCH_SIM_SCALE)
    workers = int(os.environ.get("REPRO_WORKERS", "1"))
    traces = evaluation_traces(scale, suites=("ipc1_client", "ipc1_server"))
    jobs = grid_jobs(
        traces,
        EVALUATED_STYLES,
        (DEFAULT_BUDGET_KIB,),
        (True,),
        instructions=scale.instructions,
        warmup_instructions=scale.warmup_instructions,
    )
    engine = ExperimentEngine(workers=workers)

    outcomes = benchmark.pedantic(engine.run_jobs, args=(jobs,), rounds=1, iterations=1)

    assert len(outcomes) == len(jobs)
    assert engine.stats()["executed"] == len(jobs)
    for outcome in outcomes:
        assert outcome.result.instructions > 0

    # Memoized resubmission is effectively free and runs nothing new.
    engine.run_jobs(jobs)
    assert engine.stats()["executed"] == len(jobs)

"""Per-design BTB energy and latency analysis (Table V / Section VI-E).

:class:`BTBEnergyModel` builds the SRAM arrays of each organization at a given
storage budget, reports per-access read/write energies and access latencies,
and combines them with access counts (either supplied directly or taken from a
simulated BTB's counters) into total energy, exactly as Table V does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.common.config import ISAStyle
from repro.btb.base import BTBBase
from repro.btb.btbx import BTBX
from repro.btb.conventional import ConventionalBTB
from repro.btb.pdede import PDedeBTB
from repro.btb.rbtb import ReducedBTB
from repro.btb.storage import BTBStorageModel
from repro.energy.sram import SRAMArray


@dataclass(frozen=True)
class StructureEnergy:
    """Per-access numbers and totals for one SRAM structure of a design."""

    structure: str
    read_energy_pj: float
    write_energy_pj: float
    search_energy_pj: float
    access_latency_ns: float
    reads: float = 0.0
    writes: float = 0.0
    searches: float = 0.0

    @property
    def total_energy_uj(self) -> float:
        """Total dynamic energy in micro-joules."""
        total_pj = (
            self.reads * self.read_energy_pj
            + self.writes * self.write_energy_pj
            + self.searches * self.search_energy_pj
        )
        return total_pj / 1e6


@dataclass
class DesignEnergy:
    """Energy/latency report of one BTB organization."""

    design: str
    structures: Dict[str, StructureEnergy] = field(default_factory=dict)

    @property
    def total_energy_uj(self) -> float:
        """Total dynamic energy across all structures (the Table V totals)."""
        return sum(entry.total_energy_uj for entry in self.structures.values())

    @property
    def lookup_latency_ns(self) -> float:
        """End-to-end lookup latency (serial structures add up)."""
        main = self.structures.get("main")
        page = self.structures.get("page")
        latency = main.access_latency_ns if main else 0.0
        if page is not None and self.design in ("pdede", "rbtb"):
            # Main-BTB and Page-BTB are accessed serially (Section VI-E).
            latency += page.access_latency_ns
        return latency


@dataclass
class BTBEnergyReport:
    """Table V: one :class:`DesignEnergy` per organization."""

    budget_kib: float
    designs: Dict[str, DesignEnergy] = field(default_factory=dict)

    def design(self, name: str) -> DesignEnergy:
        """Return the report of one organization."""
        return self.designs[name]


class BTBEnergyModel:
    """Builds SRAM arrays per organization and evaluates energy/latency."""

    def __init__(self, budget_kib: float = 14.5, isa: ISAStyle = ISAStyle.ARM64) -> None:
        self.budget_kib = budget_kib
        self.isa = isa
        self.storage = BTBStorageModel(isa)

    # -- array construction ----------------------------------------------------

    def arrays_for_conventional(self) -> Dict[str, SRAMArray]:
        """Arrays of the conventional BTB at the configured budget."""
        entries = self.storage.conventional_capacity_for_budget(self.budget_kib)
        return {"main": SRAMArray("conv.main", entries, 64, associativity=8)}

    def arrays_for_btbx(self) -> Dict[str, SRAMArray]:
        """Arrays of BTB-X (main ways plus the BTB-XC companion)."""
        entries, companion = self.storage.btbx_capacity_for_budget(self.budget_kib)
        ways = len(self.storage.way_offset_bits)
        sets = max(entries // ways, 1)
        avg_entry_bits = self.storage.btbx_set_bits() / ways
        arrays = {"main": SRAMArray("btbx.main", sets * ways, avg_entry_bits, associativity=ways)}
        if companion:
            arrays["companion"] = SRAMArray("btbx.companion", companion, 64, associativity=1)
        return arrays

    def arrays_for_pdede(self) -> Dict[str, SRAMArray]:
        """Arrays of PDede: Main-, Page- and Region-BTB."""
        main_entries, page_entries, avg_bits, _, _ = self.storage.pdede_capacity_for_budget(
            self.budget_kib
        )
        return {
            "main": SRAMArray("pdede.main", main_entries, avg_bits, associativity=8),
            "page": SRAMArray("pdede.page", page_entries, 20, associativity=16),
            "region": SRAMArray("pdede.region", 4, 22, associativity=4),
        }

    def arrays_for(self, design: str) -> Dict[str, SRAMArray]:
        """Arrays for a named design ("conventional", "pdede", "btbx")."""
        if design == "conventional":
            return self.arrays_for_conventional()
        if design == "btbx":
            return self.arrays_for_btbx()
        if design == "pdede":
            return self.arrays_for_pdede()
        raise ValueError(f"unknown design {design!r}")

    # -- evaluation ----------------------------------------------------------------

    def design_energy(
        self, design: str, access_counts: Mapping[str, float] | None = None
    ) -> DesignEnergy:
        """Per-access numbers (and totals when access counts are provided)."""
        counts = dict(access_counts or {})
        report = DesignEnergy(design=design)
        for structure, array in self.arrays_for(design).items():
            page_search_entries = 16 if design == "pdede" else None
            report.structures[structure] = StructureEnergy(
                structure=structure,
                read_energy_pj=array.read_energy_pj(),
                write_energy_pj=array.write_energy_pj(),
                search_energy_pj=array.search_energy_pj(page_search_entries),
                access_latency_ns=array.access_latency_ns(),
                reads=counts.get(f"reads.{structure}", 0.0),
                writes=counts.get(f"writes.{structure}", 0.0),
                searches=counts.get(f"searches.{structure}", 0.0),
            )
        return report

    def energy_from_btb(self, btb: BTBBase) -> DesignEnergy:
        """Evaluate a simulated BTB instance using its recorded access counts.

        :meth:`~repro.btb.base.BTBBase.energy_access_counts` is the one
        merge point for organizations with separately-counted secondaries
        (BTB-X's companion), so this report and any counters exported
        alongside it always agree.
        """
        return self.design_energy(_design_name(btb), btb.energy_access_counts())

    def report(self, access_counts_per_design: Mapping[str, Mapping[str, float]] | None = None) -> BTBEnergyReport:
        """Full Table V style report for the three evaluated organizations."""
        counts = access_counts_per_design or {}
        report = BTBEnergyReport(budget_kib=self.budget_kib)
        for design in ("conventional", "pdede", "btbx"):
            report.designs[design] = self.design_energy(design, counts.get(design))
        return report


def _design_name(btb: BTBBase) -> str:
    if isinstance(btb, ConventionalBTB):
        return "conventional"
    if isinstance(btb, BTBX):
        return "btbx"
    if isinstance(btb, PDedeBTB):
        return "pdede"
    if isinstance(btb, ReducedBTB):
        return "pdede"  # closest geometry: main + page
    raise ValueError(f"no energy model for BTB type {type(btb).__name__}")

"""Analytic SRAM energy and latency model (CACTI-like) for BTB designs.

The paper uses CACTI 7.0 at 22 nm to obtain per-access read/write energies and
access latencies for each BTB organization (Table V and Section VI-E).  CACTI
itself is a large C++ tool; this package provides an analytic stand-in whose
scaling behaviour (energy and delay grow with array capacity, output width and
associativity) is calibrated so that the paper's 14.5 KB operating point
reproduces the reported per-access numbers:

========================  ==========  ===========  ==========
structure                 read (pJ)   write (pJ)   delay (ns)
========================  ==========  ===========  ==========
Conv-BTB (1856 x 64 b)    13.2        25.2         0.36
PDede Main-BTB            8.4         12.5         0.34
PDede Page-BTB            0.9         0.8          0.13
BTB-X (+ BTB-XC)          8.5         11.4         0.33
========================  ==========  ===========  ==========

Total energy for a workload multiplies the per-access numbers by the access
counts collected by the simulator, as Table V does.
"""

from repro.energy.sram import SRAMArray, sram_access_latency_ns, sram_read_energy_pj, sram_write_energy_pj
from repro.energy.btb_energy import BTBEnergyModel, BTBEnergyReport, DesignEnergy

__all__ = [
    "SRAMArray",
    "sram_read_energy_pj",
    "sram_write_energy_pj",
    "sram_access_latency_ns",
    "BTBEnergyModel",
    "BTBEnergyReport",
    "DesignEnergy",
]

"""Analytic SRAM array energy/latency model calibrated against CACTI 7.0.

The paper obtains per-access energies and latencies from CACTI 7.0 at 22 nm
(Table V and Section VI-E).  CACTI's internal sub-array partitioning makes its
results hard to reproduce with a first-principles formula, so this module uses
a *calibrated* linear model over three geometry features -- rows (sets),
row bits (bits read per access, i.e. entry bits times associativity) and total
bits -- fitted by least squares to the four CACTI operating points the paper
reports at the 14.5 KB budget:

==============================  ======  =========  ==========  =====
array                           rows    row bits   total bits  read
==============================  ======  =========  ==========  =====
Conv-BTB     (1856 x 64 b, 8w)  232     512        118 784     13.2
PDede Main   (3184 x 34 b, 8w)  398     272        108 256      8.4
BTB-X        (4096 x 28 b, 8w)  512     224        114 688      8.5
PDede Page   (512 x 20 b, 16w)  32      320        10 240       0.9
==============================  ======  =========  ==========  =====

(write energy and access latency are fitted to the corresponding columns of
Table V / Section VI-E).  The fit reproduces the paper's numbers exactly at
the calibration points and interpolates smoothly in between; results are
floored so very small arrays never report non-physical negative values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import EnergyModelError

# Least-squares coefficients over (rows, row_bits, total_bits, 1).
_READ_COEF = (6.4591259389327775e-03, 2.1702760706272545e-02, 6.302738757194424e-05, -6.896975904789772)
_WRITE_COEF = (4.305921373524544e-03, 5.028375280460443e-02, 1.2791434981952978e-04, -16.73843332357819)
_LATENCY_COEF = (-4.6256462784118757e-04, -3.978148473319691e-04, 3.674946346697888e-06, 0.23447136864696172)

#: Floors applied so tiny arrays (e.g. the 4-entry Region-BTB) stay physical.
_READ_FLOOR_PJ = 0.25
_WRITE_FLOOR_PJ = 0.25
_LATENCY_FLOOR_NS = 0.05

#: Associative-search energy per searched entry, calibrated so that PDede's
#: 16-way Page-BTB search costs the 6.2 pJ reported in Table V.
_SEARCH_ENERGY_PER_ENTRY_PJ = 0.3763
_SEARCH_BASE_PJ = 0.18


def _evaluate(coef: tuple[float, float, float, float], rows: float, row_bits: float, total_bits: float) -> float:
    a_rows, a_row_bits, a_total, constant = coef
    return a_rows * rows + a_row_bits * row_bits + a_total * total_bits + constant


@dataclass(frozen=True)
class SRAMArray:
    """Geometry of one SRAM array (a BTB partition, a cache tag array, ...)."""

    name: str
    entries: int
    entry_bits: float
    associativity: int = 1

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.entry_bits <= 0 or self.associativity <= 0:
            raise EnergyModelError(f"{self.name}: invalid SRAM geometry")

    @property
    def rows(self) -> int:
        """Number of physical rows (sets)."""
        return max(self.entries // self.associativity, 1)

    @property
    def row_bits(self) -> float:
        """Bits read out per access (all ways of one set)."""
        return self.entry_bits * self.associativity

    @property
    def total_bits(self) -> float:
        """Total storage bits of the array."""
        return self.entry_bits * self.entries

    # -- per-access metrics -----------------------------------------------

    def read_energy_pj(self) -> float:
        """Dynamic energy of one read access (all ways of a set)."""
        value = _evaluate(_READ_COEF, self.rows, self.row_bits, self.total_bits)
        return max(value, _READ_FLOOR_PJ)

    def write_energy_pj(self) -> float:
        """Dynamic energy of one write access."""
        value = _evaluate(_WRITE_COEF, self.rows, self.row_bits, self.total_bits)
        return max(value, _WRITE_FLOOR_PJ)

    def search_energy_pj(self, searched_entries: int | None = None) -> float:
        """Energy of an associative search over ``searched_entries`` entries.

        Defaults to the whole array (fully-associative search, as in the
        R-BTB/ITTAGE Page-BTB); PDede restricts the search to a 16-entry set.
        """
        entries = self.entries if searched_entries is None else searched_entries
        return _SEARCH_BASE_PJ + entries * _SEARCH_ENERGY_PER_ENTRY_PJ

    def access_latency_ns(self) -> float:
        """Access latency of the array."""
        value = _evaluate(_LATENCY_COEF, self.rows, self.row_bits, self.total_bits)
        return max(value, _LATENCY_FLOOR_NS)


def sram_read_energy_pj(entries: int, entry_bits: float, associativity: int = 1) -> float:
    """Convenience wrapper: read energy of an array with the given geometry."""
    return SRAMArray("array", entries, entry_bits, associativity).read_energy_pj()


def sram_write_energy_pj(entries: int, entry_bits: float, associativity: int = 1) -> float:
    """Convenience wrapper: write energy of an array with the given geometry."""
    return SRAMArray("array", entries, entry_bits, associativity).write_energy_pj()


def sram_access_latency_ns(entries: int, entry_bits: float, associativity: int = 1) -> float:
    """Convenience wrapper: access latency of an array with the given geometry."""
    return SRAMArray("array", entries, entry_bits, associativity).access_latency_ns()

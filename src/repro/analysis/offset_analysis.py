"""Branch target offset distribution analysis (Figures 4, 12 and 13).

Builds the cumulative distribution of *stored* offset bits over the dynamic
branches of one or more traces, exactly as Section III defines it: returns
need 0 bits (their target comes from the RAS), Arm64 drops the two alignment
bits, x86 keeps them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.common.config import ISAStyle
from repro.btb.offsets import instruction_stored_offset_bits
from repro.traces.trace import Trace


@dataclass
class OffsetDistribution:
    """Histogram + CDF of stored offset bit counts over dynamic branches."""

    name: str
    isa: ISAStyle
    histogram: Dict[int, int] = field(default_factory=dict)

    # -- building -----------------------------------------------------------

    def add(self, bits: int, count: int = 1) -> None:
        """Record ``count`` dynamic branches needing ``bits`` stored bits."""
        self.histogram[bits] = self.histogram.get(bits, 0) + count

    def merge(self, other: "OffsetDistribution") -> None:
        """Fold another distribution into this one."""
        for bits, count in other.histogram.items():
            self.add(bits, count)

    # -- queries ------------------------------------------------------------

    @property
    def total_branches(self) -> int:
        """Total dynamic branches observed."""
        return sum(self.histogram.values())

    def fraction_covered(self, max_bits: int) -> float:
        """Fraction of dynamic branches whose offsets fit in ``max_bits`` bits.

        This is the Y value of Figure 4 at X = ``max_bits``.
        """
        total = self.total_branches
        if not total:
            return 0.0
        covered = sum(count for bits, count in self.histogram.items() if bits <= max_bits)
        return covered / total

    def cdf(self, max_bits: int = 46) -> List[float]:
        """The full CDF as a list indexed by bit count (0..max_bits)."""
        return [self.fraction_covered(bits) for bits in range(max_bits + 1)]

    def quantile_bits(self, fraction: float) -> int:
        """Smallest bit count covering at least ``fraction`` of branches."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        for bits in range(0, 64):
            if self.fraction_covered(bits) >= fraction:
                return bits
        return 64

    def way_sizing(self, num_ways: int = 8) -> List[int]:
        """Per-way offset widths sized so each way covers ~1/num_ways of branches.

        This is the methodology of Section V-A: the i-th way is sized at the
        (i+1)/num_ways quantile of the offset distribution.  Used by the
        way-sizing ablation and by the Figure 13 x86 analysis.
        """
        return [self.quantile_bits((i + 1) / num_ways) for i in range(num_ways)]

    def to_rows(self, max_bits: int = 46) -> List[tuple[int, float]]:
        """(bits, cumulative fraction) rows for reporting."""
        return [(bits, self.fraction_covered(bits)) for bits in range(max_bits + 1)]


def offset_distribution(trace: Trace, name: str | None = None) -> OffsetDistribution:
    """Compute the stored-offset-bit distribution of one trace."""
    distribution = OffsetDistribution(name=name or trace.name, isa=trace.isa)
    for inst in trace:
        if not inst.is_branch:
            continue
        distribution.add(instruction_stored_offset_bits(inst, trace.isa))
    return distribution


def combined_distribution(
    traces: Iterable[Trace], name: str = "combined", isa: ISAStyle | None = None
) -> OffsetDistribution:
    """Merge the offset distributions of several traces (suite averages)."""
    traces = list(traces)
    if not traces:
        raise ValueError("need at least one trace")
    resolved_isa = isa if isa is not None else traces[0].isa
    combined = OffsetDistribution(name=name, isa=resolved_isa)
    for trace in traces:
        combined.merge(offset_distribution(trace))
    return combined


def distribution_table(
    distributions: Sequence[OffsetDistribution], bit_points: Sequence[int] = (0, 4, 5, 6, 7, 9, 10, 11, 19, 25, 46)
) -> List[dict]:
    """Tabulate several distributions at selected bit counts (for reports)."""
    rows = []
    for dist in distributions:
        row: dict = {"name": dist.name, "branches": dist.total_branches}
        for bits in bit_points:
            row[f"<={bits}b"] = round(dist.fraction_covered(bits), 4)
        rows.append(row)
    return rows

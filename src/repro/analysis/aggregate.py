"""Aggregation helpers for experiment results (geomeans, per-suite summaries)."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.core.metrics import SimulationResult


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregation for speedups)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean (the paper's aggregation for MPKI)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def summarize_results(results: Sequence[SimulationResult]) -> Dict[str, float]:
    """Aggregate a list of per-workload results into suite-level numbers."""
    if not results:
        return {}
    return {
        "workloads": len(results),
        "avg_btb_mpki": arithmetic_mean(r.btb_mpki for r in results),
        "avg_l1i_mpki": arithmetic_mean(r.l1i_mpki for r in results),
        "avg_direction_mpki": arithmetic_mean(r.direction_mpki for r in results),
        "gmean_ipc": geometric_mean(r.ipc for r in results),
        "total_instructions": sum(r.instructions for r in results),
    }


def speedups_over_baseline(
    results: Mapping[str, SimulationResult], baseline: Mapping[str, SimulationResult]
) -> Dict[str, float]:
    """Per-workload speedups of ``results`` over ``baseline`` (matched by name)."""
    speedups: Dict[str, float] = {}
    for workload, result in results.items():
        base = baseline.get(workload)
        if base is not None and base.ipc > 0:
            speedups[workload] = result.ipc / base.ipc
    return speedups


def gmean_speedup(
    results: Mapping[str, SimulationResult], baseline: Mapping[str, SimulationResult]
) -> float:
    """Geometric-mean speedup over matched workloads."""
    return geometric_mean(speedups_over_baseline(results, baseline).values())


def format_table(rows: List[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render rows of dictionaries as a fixed-width text table."""
    if not rows:
        return "(no data)"
    columns = list(columns) if columns else list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)

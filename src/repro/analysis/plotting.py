"""Sweep-aware plotting: turn the sweep CSVs into committed figures.

``btbx-repro sweep scenarios|shared|caches --csv`` emit flat, plot-ready rows;
this module recognises which sweep a CSV came from by its header and renders
one line chart per (sweep-axis, metric) combination, each with one series per
``style/mode`` configuration (aggregate rows only -- per-tenant curves are a
``--json`` analysis, not a headline figure).

Two backends:

* **svg** -- a small built-in renderer writing hand-rolled SVG.  It has no
  dependencies and its output is *deterministic* (pure function of the rows),
  so figures can be committed and diffed like golden results;
* **mpl** -- matplotlib PNGs, when matplotlib is installed.  The container
  images used by CI deliberately do not ship it, so ``auto`` falls back to
  the SVG renderer rather than failing.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


class PlotSchemaError(ValueError):
    """The CSV header does not match any known sweep schema."""


#: Header signature -> (schema name, x-axis column, series-key columns,
#: metric columns plotted, row filter column/value).
_SCHEMAS: Dict[str, Dict[str, object]] = {
    "scenario_sweep": {
        "required": {"sweep", "preset", "axis_value", "style", "asid_mode", "tenant", "btb_mpki"},
        "x": "axis_value",
        "series": ("style", "asid_mode"),
        "metrics": ("btb_mpki", "ipc"),
        "aggregate": ("tenant", "(aggregate)"),
        "facets": ("sweep", "preset"),
    },
    "shared_footprint": {
        "required": {"preset", "shared_fraction", "style", "asid_mode", "record", "btb_mpki"},
        "x": "shared_fraction",
        "series": ("style", "asid_mode"),
        "metrics": ("btb_mpki", "ipc"),
        "aggregate": ("record", "(aggregate)"),
        "facets": ("preset",),
    },
    "cache_interference": {
        "required": {"sweep", "preset", "axis_value", "style", "cache_mode", "tenant", "l1i_mpki"},
        "x": "axis_value",
        "series": ("style", "cache_mode"),
        "metrics": ("l1i_mpki", "l2_mpki"),
        "aggregate": ("tenant", "(aggregate)"),
        "facets": ("sweep", "preset"),
    },
}


def detect_schema(header: Sequence[str]) -> str:
    """Name of the sweep schema a CSV header belongs to.

    Checked most-specific first (cache_interference's header is a superset
    test away from scenario_sweep's shape but uses different metric columns).
    """
    columns = set(header)
    for name in ("cache_interference", "shared_footprint", "scenario_sweep"):
        if _SCHEMAS[name]["required"] <= columns:
            return name
    raise PlotSchemaError(
        "unrecognised sweep CSV header: expected columns of 'sweep scenarios', "
        f"'sweep shared' or 'sweep caches' output, got {sorted(columns)}"
    )


@dataclass
class LineChart:
    """One renderable chart: named series of (x, y) points."""

    title: str
    x_label: str
    y_label: str
    #: Series label -> ordered (x, y) points.
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)


def _rows_to_charts(schema_name: str, rows: List[Dict[str, str]]) -> List[LineChart]:
    """Group aggregate rows into one chart per (facet-values, metric)."""
    schema = _SCHEMAS[schema_name]
    filter_column, filter_value = schema["aggregate"]
    facets: Tuple[str, ...] = schema["facets"]
    x_column: str = schema["x"]
    series_columns: Tuple[str, ...] = schema["series"]

    charts: Dict[Tuple[Tuple[str, ...], str], LineChart] = {}
    for row in rows:
        if row.get(filter_column) != filter_value:
            continue
        facet_values = tuple(row[column] for column in facets)
        series_key = "/".join(row[column] for column in series_columns)
        for metric in schema["metrics"]:
            value = row.get(metric, "")
            if value in ("", None):
                continue
            chart_key = (facet_values, metric)
            chart = charts.get(chart_key)
            if chart is None:
                facet_label = " ".join(facet_values)
                chart = charts[chart_key] = LineChart(
                    title=f"{facet_label}: {metric}",
                    x_label=x_column,
                    y_label=metric,
                )
            chart.series.setdefault(series_key, []).append(
                (float(row[x_column]), float(value))
            )
    ordered = list(charts.values())
    for chart in ordered:
        for points in chart.series.values():
            points.sort(key=lambda point: point[0])
    return ordered


def _chart_slug(chart: LineChart) -> str:
    slug = chart.title.lower()
    for bad in (":", "/", " "):
        slug = slug.replace(bad, "_")
    while "__" in slug:
        slug = slug.replace("__", "_")
    return slug.strip("_")


# -- the built-in SVG renderer -------------------------------------------------

#: Categorical series colors (Okabe-Ito, colorblind-safe, stable order).
_COLORS = (
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#F0E442",
    "#000000",
)

_WIDTH, _HEIGHT = 720, 440
_MARGIN_LEFT, _MARGIN_RIGHT = 72, 200
_MARGIN_TOP, _MARGIN_BOTTOM = 48, 56


def _ticks(low: float, high: float, count: int = 5) -> List[float]:
    """Evenly spaced axis ticks (deterministic, no "nice number" rounding)."""
    if high == low:
        return [low]
    step = (high - low) / (count - 1)
    return [low + index * step for index in range(count)]


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def render_svg(chart: LineChart) -> str:
    """Render one chart as a standalone SVG document (deterministic)."""
    plot_width = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_height = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM
    all_points = [point for points in chart.series.values() for point in points]
    xs = [x for x, _ in all_points] or [0.0]
    ys = [y for _, y in all_points] or [0.0]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(min(ys), 0.0), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    def sx(value: float) -> float:
        return _MARGIN_LEFT + (value - x_low) / (x_high - x_low) * plot_width

    def sy(value: float) -> float:
        return _MARGIN_TOP + plot_height - (value - y_low) / (y_high - y_low) * plot_height

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" height="{_HEIGHT}" '
        f'viewBox="0 0 {_WIDTH} {_HEIGHT}" font-family="Helvetica, Arial, sans-serif">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_MARGIN_LEFT}" y="24" font-size="15" font-weight="bold">'
        f"{_escape(chart.title)}</text>",
    ]
    # Axes, gridlines, ticks.
    for tick in _ticks(y_low, y_high):
        y = sy(tick)
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{y:.2f}" x2="{_MARGIN_LEFT + plot_width}" '
            f'y2="{y:.2f}" stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT - 8}" y="{y + 4:.2f}" font-size="11" '
            f'text-anchor="end">{_format_tick(tick)}</text>'
        )
    for tick in _ticks(x_low, x_high):
        x = sx(tick)
        parts.append(
            f'<line x1="{x:.2f}" y1="{_MARGIN_TOP + plot_height}" x2="{x:.2f}" '
            f'y2="{_MARGIN_TOP + plot_height + 5}" stroke="#333333" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x:.2f}" y="{_MARGIN_TOP + plot_height + 20}" font-size="11" '
            f'text-anchor="middle">{_format_tick(tick)}</text>'
        )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP}" x2="{_MARGIN_LEFT}" '
        f'y2="{_MARGIN_TOP + plot_height}" stroke="#333333" stroke-width="1"/>'
    )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP + plot_height}" '
        f'x2="{_MARGIN_LEFT + plot_width}" y2="{_MARGIN_TOP + plot_height}" '
        f'stroke="#333333" stroke-width="1"/>'
    )
    # Axis labels.
    parts.append(
        f'<text x="{_MARGIN_LEFT + plot_width / 2:.2f}" y="{_HEIGHT - 12}" '
        f'font-size="12" text-anchor="middle">{_escape(chart.x_label)}</text>'
    )
    parts.append(
        f'<text x="18" y="{_MARGIN_TOP + plot_height / 2:.2f}" font-size="12" '
        f'text-anchor="middle" transform="rotate(-90 18 '
        f'{_MARGIN_TOP + plot_height / 2:.2f})">{_escape(chart.y_label)}</text>'
    )
    # Series polylines + legend (insertion order = CSV order: deterministic).
    legend_y = _MARGIN_TOP + 6
    for position, (label, points) in enumerate(chart.series.items()):
        color = _COLORS[position % len(_COLORS)]
        coords = " ".join(f"{sx(x):.2f},{sy(y):.2f}" for x, y in points)
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        for x, y in points:
            parts.append(
                f'<circle cx="{sx(x):.2f}" cy="{sy(y):.2f}" r="3" fill="{color}"/>'
            )
        legend_x = _MARGIN_LEFT + plot_width + 16
        parts.append(
            f'<line x1="{legend_x}" y1="{legend_y + 4}" x2="{legend_x + 22}" '
            f'y2="{legend_y + 4}" stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{legend_x + 28}" y="{legend_y + 8}" font-size="11">'
            f"{_escape(label)}</text>"
        )
        legend_y += 18
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


# -- backends ------------------------------------------------------------------


def _render_mpl(chart: LineChart, path: str) -> None:  # pragma: no cover - optional dep
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    figure, axes = plt.subplots(figsize=(7.2, 4.4))
    for position, (label, points) in enumerate(chart.series.items()):
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        axes.plot(xs, ys, marker="o", label=label, color=_COLORS[position % len(_COLORS)])
    axes.set_title(chart.title)
    axes.set_xlabel(chart.x_label)
    axes.set_ylabel(chart.y_label)
    axes.grid(axis="y", alpha=0.4)
    axes.legend(loc="center left", bbox_to_anchor=(1.02, 0.5), fontsize=8)
    figure.tight_layout()
    figure.savefig(path, dpi=120)
    plt.close(figure)


def matplotlib_available() -> bool:
    """Whether the optional matplotlib backend can be used."""
    try:  # pragma: no cover - environment-dependent
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True  # pragma: no cover - environment-dependent


def resolve_backend(backend: str = "auto") -> str:
    """Map a requested backend name to a usable one ('svg' or 'mpl')."""
    if backend == "svg":
        return "svg"
    if backend == "mpl":
        if not matplotlib_available():
            raise PlotSchemaError(
                "matplotlib is not installed; use --backend svg (the built-in "
                "deterministic renderer) instead"
            )
        return "mpl"
    if backend == "auto":
        return "mpl" if matplotlib_available() else "svg"
    raise PlotSchemaError(f"unknown plot backend {backend!r}")


# -- entry point ---------------------------------------------------------------


def plot_csv(
    csv_path: str,
    out_dir: str | None = None,
    backend: str = "auto",
) -> List[str]:
    """Render every chart a sweep CSV contains; returns the written paths.

    Figures are named ``<csv stem>_<chart slug>.<ext>`` and written next to
    the CSV unless ``out_dir`` is given.  The SVG backend's output is a pure
    function of the CSV rows, so regenerating a committed figure from an
    unchanged CSV is a no-op diff.
    """
    chosen = resolve_backend(backend)
    with open(csv_path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise PlotSchemaError(f"{csv_path} is empty (no CSV header)")
        schema_name = detect_schema(reader.fieldnames)
        rows = list(reader)
    charts = _rows_to_charts(schema_name, rows)

    directory = out_dir if out_dir is not None else (os.path.dirname(csv_path) or ".")
    os.makedirs(directory, exist_ok=True)
    stem = os.path.splitext(os.path.basename(csv_path))[0]
    extension = "svg" if chosen == "svg" else "png"

    written: List[str] = []
    for chart in charts:
        path = os.path.join(directory, f"{stem}_{_chart_slug(chart)}.{extension}")
        if chosen == "svg":
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(render_svg(chart))
        else:  # pragma: no cover - optional dep
            _render_mpl(chart, path)
        written.append(path)
    return written

"""Analysis helpers: offset distributions, MPKI aggregation, sweep plotting."""

from repro.analysis.offset_analysis import OffsetDistribution, offset_distribution, combined_distribution
from repro.analysis.aggregate import geometric_mean, summarize_results
from repro.analysis.plotting import PlotSchemaError, detect_schema, plot_csv, render_svg

__all__ = [
    "OffsetDistribution",
    "offset_distribution",
    "combined_distribution",
    "geometric_mean",
    "summarize_results",
    "PlotSchemaError",
    "detect_schema",
    "plot_csv",
    "render_svg",
]

"""Analysis helpers: offset distributions, MPKI aggregation, speedup summaries."""

from repro.analysis.offset_analysis import OffsetDistribution, offset_distribution, combined_distribution
from repro.analysis.aggregate import geometric_mean, summarize_results

__all__ = [
    "OffsetDistribution",
    "offset_distribution",
    "combined_distribution",
    "geometric_mean",
    "summarize_results",
]

"""Pipelined chunk composition: decode chunk N+1 while chunk N simulates.

The batched engine consumes a scenario as a stream of
:class:`~repro.scenarios.compose.ScheduledChunk` slices and, before walking a
chunk, needs its trace's structure-of-arrays view
(:func:`repro.traces.batch.trace_arrays`).  That decode is pure, per-trace
and cached on the trace object -- which makes it safe to run *ahead* of the
simulation on a second thread: while the engine simulates chunk N, a bounded
producer advances the composer's schedule and decodes the traces chunk N+1
onward will need.  The consumer still sees the chunks in exactly the schedule
order (single producer, FIFO queue), so the simulated stream is untouched;
only the wall-clock placement of the decode work moves.

Overlap is observable: every decode that actually builds arrays is wrapped in
a ``scenario.compose.decode`` span emitted from the producer thread, so a
recorded trace shows those spans inside the consumer's ``scenario.simulate``
window (``obs report`` and the CI bench job assert exactly that).

Lifecycle rules, pinned by ``tests/test_scenario_pipeline.py``:

* a producer-side exception (composer or decode) is re-raised to the consumer
  at the point of iteration, after the producer thread has exited;
* :meth:`ChunkPipeline.close` always joins the producer thread, even when it
  is blocked on a full queue mid-schedule -- a failed or cancelled job never
  leaks a thread;
* exhausting the iterator joins the thread on its own, so the happy path
  needs no explicit close (``execute_scenario`` still closes in a
  ``finally`` for the failure paths).
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, Iterator

from repro.obs import get_recorder
from repro.scenarios.compose import ScheduledChunk
from repro.traces.batch import trace_arrays

#: Chunks buffered ahead of the consumer.  Small on purpose: the payload per
#: entry is a trace *slice descriptor* (the decoded arrays live on the trace
#: object), so depth only bounds how far the schedule runs ahead, and a
#: shallow queue keeps close() responsive.
PIPELINE_DEPTH = 4

#: Queue poll interval; bounds how long close()/iteration lag a state change.
_POLL_S = 0.05

_SENTINEL = object()


class ChunkPipeline:
    """Bounded producer thread feeding a scenario's chunk schedule.

    Iterating the pipeline yields exactly the chunks of ``chunks`` in order.
    The producer eagerly decodes each chunk's trace into its SoA view before
    enqueueing it, so by the time the consumer reaches a chunk its
    ``trace_arrays`` call is (usually) a cache hit.
    """

    def __init__(self, chunks: Iterable[ScheduledChunk], depth: int = PIPELINE_DEPTH) -> None:
        if depth < 1:
            raise ValueError("pipeline depth must be at least 1")
        self._source = chunks
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._closed = threading.Event()
        self._error: BaseException | None = None
        self._recorder = get_recorder()
        self._thread = threading.Thread(
            target=self._produce, name="chunk-pipeline", daemon=True
        )
        self._thread.start()

    # -- producer ----------------------------------------------------------

    def _produce(self) -> None:
        try:
            for chunk in self._source:
                if self._closed.is_set():
                    return
                trace = chunk.trace
                if getattr(trace, "_batch_arrays", None) is None:
                    with self._recorder.span(
                        "scenario.compose.decode",
                        tenant=chunk.tenant,
                        instructions=len(trace),
                    ):
                        trace_arrays(trace)
                if not self._put(chunk):
                    return
        except BaseException as exc:  # re-raised on the consumer side
            self._error = exc
        finally:
            self._put(_SENTINEL)

    def _put(self, item) -> bool:
        """Enqueue ``item``, giving up (False) once the pipeline is closed."""
        while not self._closed.is_set():
            try:
                self._queue.put(item, timeout=_POLL_S)
                return True
            except queue.Full:
                continue
        return False

    # -- consumer ----------------------------------------------------------

    def __iter__(self) -> Iterator[ScheduledChunk]:
        return self

    def __next__(self) -> ScheduledChunk:
        while True:
            if self._closed.is_set():
                raise StopIteration
            try:
                item = self._queue.get(timeout=_POLL_S)
            except queue.Empty:
                continue
            if item is _SENTINEL:
                self._thread.join()
                if self._error is not None:
                    raise self._error
                raise StopIteration
            return item

    def close(self) -> None:
        """Stop the producer and join its thread (idempotent).

        Safe at any point: a producer blocked on the bounded queue observes
        the closed flag at its next put timeout, and draining the queue here
        shortens that wait.  After close() the iterator only raises
        ``StopIteration``.
        """
        self._closed.set()
        while self._thread.is_alive():
            try:
                self._queue.get_nowait()
            except queue.Empty:
                pass
            self._thread.join(timeout=_POLL_S)

"""The built-in scenario presets (and a registry for user-defined ones).

Five presets span the consolidation questions the paper's single-trace
evaluation cannot ask:

* ``solo_baseline``      -- one tenant, no switches: must reproduce the plain
  single-trace simulation exactly (the subsystem's correctness anchor);
* ``consolidated_server`` -- four server tenants timesliced round-robin with
  warm address spaces: the steady-state consolidation case where ASID-tagged
  retention can pay off;
* ``microservice_churn`` -- short quanta and *cold* switch semantics (every
  turn is a fresh address space): retention can never help, flushing and
  tagging only differ in how the dead state hurts;
* ``shared_services``    -- three instances of the same service binary with
  half their code pages remapped onto a common shared-library region: makes
  ASID tagging's *duplication* cost (the same branch stored once per address
  space) measurable;
* ``noisy_neighbor``     -- one BTB-hungry server tenant with a large weight
  sharing the machine with two light client tenants under weighted
  round-robin: who pays the thrashing cost?

Workload names refer to the deterministic suites of
:mod:`repro.workloads.suites`; worker processes resolve presets by name, so a
scenario cell is as self-contained as a workload cell.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec, TenantSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry (``replace=True`` to overwrite)."""
    if not replace and spec.name in _REGISTRY:
        raise ConfigurationError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def scenario_names() -> List[str]:
    """Registered scenario names, presets first, in registration order."""
    return list(_REGISTRY)


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: {', '.join(_REGISTRY) or '(none)'}"
        ) from exc


# -- built-in presets ---------------------------------------------------------

register_scenario(
    ScenarioSpec(
        name="solo_baseline",
        tenants=(TenantSpec("primary", "server_001"),),
        quantum_instructions=8_192,
        policy="round_robin",
        switch_semantics="warm",
        description="One tenant, zero context switches: equals the plain single-trace run.",
    )
)

register_scenario(
    ScenarioSpec(
        name="consolidated_server",
        tenants=(
            TenantSpec("frontend", "server_001"),
            TenantSpec("search", "server_009"),
            TenantSpec("ads", "server_023"),
            TenantSpec("feed", "server_030"),
        ),
        quantum_instructions=4_096,
        policy="round_robin",
        switch_semantics="warm",
        description="Four server tenants timesliced round-robin with warm address spaces.",
    )
)

register_scenario(
    ScenarioSpec(
        name="microservice_churn",
        tenants=(
            TenantSpec("auth", "server_002"),
            TenantSpec("cart", "server_010"),
            TenantSpec("gateway", "client_001"),
            TenantSpec("recs", "server_024"),
        ),
        quantum_instructions=1_024,
        policy="round_robin",
        switch_semantics="cold",
        description="Short-lived instances: every scheduling turn is a fresh address space.",
    )
)

register_scenario(
    ScenarioSpec(
        name="shared_services",
        tenants=(
            TenantSpec("svc_a", "server_009"),
            TenantSpec("svc_b", "server_009"),
            TenantSpec("svc_c", "server_009"),
        ),
        quantum_instructions=4_096,
        policy="round_robin",
        switch_semantics="warm",
        shared_fraction=0.5,
        description="Three instances of one service binary mapping half their "
        "code pages onto a shared-library region.",
    )
)

register_scenario(
    ScenarioSpec(
        name="noisy_neighbor",
        tenants=(
            TenantSpec("noisy", "server_023", weight=4),
            TenantSpec("victim_a", "client_002", weight=1),
            TenantSpec("victim_b", "client_003", weight=1),
        ),
        quantum_instructions=2_048,
        policy="weighted",
        switch_semantics="warm",
        description="A BTB-hungry server tenant dominating two light client tenants.",
    )
)

#: Names of the built-in presets, in definition order.
PRESET_NAMES: tuple[str, ...] = tuple(_REGISTRY)

"""Seeded generation of large consolidation scenarios.

The preset scenarios top out at four tenants; server-consolidation studies
need hundreds to thousands.  A :class:`ScenarioRecipe` describes a scenario
*statistically* -- tenant count, server/client class mix, footprint-scale
range, weight skew, scheduling knobs -- and :func:`generate_scenario`
expands it deterministically (seeded ``random.Random``: same recipe gives
the same spec in any process, any worker count) into a plain
:class:`~repro.scenarios.spec.ScenarioSpec` whose tenants reference
*generated* workload names (``gen_<class>_<seed>_<milliscale>``).

Those names are self-describing:
:func:`repro.workloads.suites.workload_spec_by_name` rebuilds the workload
spec from the string alone, so pooled engine workers and the sharded result
cache resolve generated scenarios exactly like preset ones -- no registry
hand-off, no cache-format change.

Memory stays bounded at four-digit tenant counts because a recipe draws its
tenants from a small ``workload_population`` (default 8, capped at the trace
store's LRU bound): a thousand tenants share a handful of distinct
workloads, and every tenant replaying workload W shares the same in-memory
:class:`~repro.traces.trace.Trace` object -- the composer wraps each tenant
in its own cursor over it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.config import ISAStyle, require_positive_int
from repro.common.errors import ConfigurationError
from repro.obs import get_recorder
from repro.scenarios.spec import POLICIES, SWITCH_SEMANTICS, ScenarioSpec, TenantSpec
from repro.traces.store import DEFAULT_MAX_TRACES
from repro.workloads.suites import generated_workload_name

#: Distinct workloads a recipe draws from by default.
DEFAULT_POPULATION = 8

#: Hard cap on a recipe's workload population: the trace store's LRU bound.
#: A population beyond it would thrash trace generation at composition time.
MAX_POPULATION = DEFAULT_MAX_TRACES

#: Generated workload seeds are drawn below this bound.
_WORKLOAD_SEED_BOUND = 1 << 31


@dataclass(frozen=True)
class ScenarioRecipe:
    """Statistical description of a generated consolidation scenario.

    ``server_fraction`` sets the server/client class mix of the workload
    population; ``isa`` picks the compiled flavour of the whole population
    (mixed-ISA scenarios are rejected by the composer, so a recipe is
    single-ISA by construction).  ``scale_min``/``scale_max`` bound the
    uniform footprint-scale distribution.  ``weight_skew`` controls the
    scheduling/partition weights: ``0.0`` (default) gives every tenant
    weight 1; positive values draw from ``1 + floor((max_weight - 1) *
    u**weight_skew)`` with ``u`` uniform, so larger skews concentrate high
    weights on fewer tenants.  The remaining knobs pass straight through to
    :class:`~repro.scenarios.spec.ScenarioSpec`.
    """

    name: str
    tenants: int
    seed: int = 0
    server_fraction: float = 0.75
    isa: ISAStyle = ISAStyle.ARM64
    workload_population: int = DEFAULT_POPULATION
    scale_min: float = 0.5
    scale_max: float = 2.0
    weight_skew: float = 0.0
    max_weight: int = 8
    quantum_instructions: int = 8_192
    policy: str = "round_robin"
    switch_semantics: str = "warm"
    shared_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario recipe needs a name")
        require_positive_int(self.tenants, f"recipe {self.name!r}: tenants")
        require_positive_int(self.workload_population, f"recipe {self.name!r}: workload_population")
        require_positive_int(self.max_weight, f"recipe {self.name!r}: max_weight")
        require_positive_int(
            self.quantum_instructions, f"recipe {self.name!r}: quantum_instructions"
        )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int) or self.seed < 0:
            raise ConfigurationError(
                f"recipe {self.name!r}: seed must be a non-negative int, got {self.seed!r}"
            )
        if self.workload_population > MAX_POPULATION:
            raise ConfigurationError(
                f"recipe {self.name!r}: workload_population {self.workload_population} "
                f"exceeds the trace store bound ({MAX_POPULATION}); a larger population "
                "would regenerate traces mid-composition"
            )
        if not isinstance(self.isa, ISAStyle):
            raise ConfigurationError(f"recipe {self.name!r}: isa must be an ISAStyle")
        for field in ("server_fraction", "shared_fraction"):
            value = getattr(self, field)
            if isinstance(value, bool) or not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"recipe {self.name!r}: {field} must be within [0, 1], got {value!r}"
                )
        if (
            isinstance(self.weight_skew, bool)
            or not isinstance(self.weight_skew, (int, float))
            or self.weight_skew < 0
        ):
            raise ConfigurationError(
                f"recipe {self.name!r}: weight_skew must be a non-negative number"
            )
        if not (
            isinstance(self.scale_min, (int, float))
            and isinstance(self.scale_max, (int, float))
            and 0 < self.scale_min <= self.scale_max
        ):
            raise ConfigurationError(
                f"recipe {self.name!r}: need 0 < scale_min <= scale_max, got "
                f"{self.scale_min!r}..{self.scale_max!r}"
            )
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"recipe {self.name!r}: unknown policy {self.policy!r}; "
                f"expected one of {POLICIES}"
            )
        if self.switch_semantics not in SWITCH_SEMANTICS:
            raise ConfigurationError(
                f"recipe {self.name!r}: unknown switch semantics "
                f"{self.switch_semantics!r}; expected one of {SWITCH_SEMANTICS}"
            )

    def config_dict(self) -> Dict[str, object]:
        """Canonical JSON-able form (reports and experiment metadata)."""
        return {
            "name": self.name,
            "tenants": self.tenants,
            "seed": self.seed,
            "server_fraction": float(self.server_fraction),
            "isa": self.isa.value,
            "workload_population": self.workload_population,
            "scale_min": float(self.scale_min),
            "scale_max": float(self.scale_max),
            "weight_skew": float(self.weight_skew),
            "max_weight": self.max_weight,
            "quantum_instructions": self.quantum_instructions,
            "policy": self.policy,
            "switch_semantics": self.switch_semantics,
            "shared_fraction": float(self.shared_fraction),
        }


def _draw_population(recipe: ScenarioRecipe, rng: random.Random) -> Tuple[str, ...]:
    """Draw the recipe's workload population as generated workload names."""
    server_token = "xserver" if recipe.isa is ISAStyle.X86 else "server"
    client_token = "xclient" if recipe.isa is ISAStyle.X86 else "client"
    names = []
    for _ in range(recipe.workload_population):
        token = server_token if rng.random() < recipe.server_fraction else client_token
        scale = rng.uniform(recipe.scale_min, recipe.scale_max)
        workload_seed = rng.randrange(_WORKLOAD_SEED_BOUND)
        names.append(generated_workload_name(token, workload_seed, scale))
    return tuple(names)


def _draw_weight(recipe: ScenarioRecipe, rng: random.Random) -> int:
    if recipe.weight_skew <= 0 or recipe.max_weight == 1:
        return 1
    return 1 + int((recipe.max_weight - 1) * rng.random() ** recipe.weight_skew)


def generate_scenario(recipe: ScenarioRecipe) -> ScenarioSpec:
    """Expand ``recipe`` into a concrete :class:`ScenarioSpec`, deterministically.

    The expansion is a pure function of the recipe (a single seeded
    ``random.Random`` drawn in a fixed order), so the same recipe produces a
    bit-identical spec in every process -- which is what lets a generated
    scenario be pinned into engine jobs and replayed from the result cache
    like any preset.
    """
    recorder = get_recorder()
    with recorder.span(
        "scenario.generate",
        recipe=recipe.name,
        tenants=recipe.tenants,
        population=recipe.workload_population,
        seed=recipe.seed,
    ):
        rng = random.Random(f"scenario-recipe:{recipe.seed}")
        population = _draw_population(recipe, rng)
        width = max(4, len(str(recipe.tenants - 1)))
        tenants = tuple(
            TenantSpec(
                name=f"t{index:0{width}d}",
                workload=population[rng.randrange(len(population))],
                weight=_draw_weight(recipe, rng),
            )
            for index in range(recipe.tenants)
        )
        return ScenarioSpec(
            name=recipe.name,
            tenants=tenants,
            quantum_instructions=recipe.quantum_instructions,
            policy=recipe.policy,
            switch_semantics=recipe.switch_semantics,
            shared_fraction=recipe.shared_fraction,
            description=(
                f"generated: {recipe.tenants} tenants over "
                f"{len(set(population))} workloads "
                f"({recipe.isa.value}, server_fraction={recipe.server_fraction:g}, "
                f"seed={recipe.seed})"
            ),
        )

"""Streaming interleave of per-tenant traces into one scheduled stream.

:class:`TraceComposer` walks the scenario's schedule (round-robin or weighted
round-robin over the tenants, one quantum per turn) and yields
``(asid, tenant_name, instruction)`` triples one at a time.  Nothing about the
merged stream is ever materialized: each tenant is read through a wrapping
:class:`~repro.traces.trace.TraceCursor`, so composing a billion-instruction
stream costs the memory of the per-tenant traces and nothing more.

ASID assignment implements the spec's switch semantics:

* ``warm``: tenant *i* always runs as ASID *i* (the first-scheduled tenant is
  ASID 0, so a single-tenant scenario is indistinguishable from a plain
  single-trace simulation);
* ``cold``: every scheduling turn allocates a fresh ASID (monotonically
  increasing), so no turn can ever re-use retained state -- and under tagged
  retention the dead entries of previous incarnations pollute capacity, which
  is exactly the microservice-churn effect the scenario models.

Consecutive turns of the *same* tenant under ``warm`` semantics keep the same
ASID and therefore cause no context switch (the scheduler just keeps running
the tenant), which is why a one-tenant warm scenario never switches at all.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Tuple

from repro.common.errors import ConfigurationError
from repro.isa.instruction import Instruction
from repro.scenarios.spec import ScenarioSpec
from repro.traces.trace import Trace, TraceCursor


class TraceComposer:
    """Interleaves per-tenant traces according to a :class:`ScenarioSpec`."""

    def __init__(self, spec: ScenarioSpec, traces: Mapping[str, Trace]) -> None:
        missing = [t.workload for t in spec.tenants if t.workload not in traces]
        if missing:
            raise ConfigurationError(
                f"scenario {spec.name!r} is missing traces for workloads {missing}"
            )
        isas = {traces[t.workload].isa for t in spec.tenants}
        if len(isas) > 1:
            raise ConfigurationError(
                f"scenario {spec.name!r} mixes ISAs {sorted(i.value for i in isas)}; "
                "all tenants must share one ISA"
            )
        self.spec = spec
        self.isa = next(iter(isas))
        self._traces: Dict[str, Trace] = {t.workload: traces[t.workload] for t in spec.tenants}

    # -- scheduling ---------------------------------------------------------

    def turn_lengths(self) -> List[int]:
        """Instructions each tenant runs per scheduling turn, in tenant order."""
        return [self.spec.turn_quantum(tenant) for tenant in self.spec.tenants]

    def stream(self, total_instructions: int) -> Iterator[Tuple[int, str, Instruction]]:
        """Yield exactly ``total_instructions`` scheduled ``(asid, tenant, instruction)``.

        Tenant traces wrap when exhausted, so any total length is valid.  The
        schedule is a pure function of the spec and the total length: two
        streams composed from equal specs are element-for-element identical,
        which is what lets scenario cells live in the content-addressed result
        cache.
        """
        if total_instructions < 0:
            raise ConfigurationError("composed stream length cannot be negative")
        spec = self.spec
        tenants = spec.tenants
        cursors = [TraceCursor(self._traces[tenant.workload]) for tenant in tenants]
        quanta = self.turn_lengths()
        cold = spec.switch_semantics == "cold"

        remaining = total_instructions
        turn = 0
        next_cold_asid = 0
        while remaining > 0:
            tenant_index = turn % len(tenants)
            tenant_name = tenants[tenant_index].name
            if cold:
                asid = next_cold_asid
                next_cold_asid += 1
            else:
                asid = tenant_index
            count = min(quanta[tenant_index], remaining)
            for instruction in cursors[tenant_index].take(count):
                yield asid, tenant_name, instruction
            remaining -= count
            turn += 1

    def context_switch_count(self, total_instructions: int) -> int:
        """Number of ASID changes the composed stream will trigger.

        Useful for sizing tests and reports without walking the stream.  The
        first turn never counts (the machine boots into it).
        """
        tenants = self.spec.tenants
        quanta = self.turn_lengths()
        cycle = sum(quanta)
        if total_instructions <= 0:
            return 0
        full_cycles, leftover = divmod(total_instructions, cycle)
        turns = full_cycles * len(tenants)
        for quantum in quanta:
            if leftover <= 0:
                break
            turns += 1
            leftover -= quantum
        if self.spec.switch_semantics == "cold":
            return max(turns - 1, 0)
        # Warm: consecutive turns of the same tenant (single-tenant scenarios)
        # do not switch.
        return max(turns - 1, 0) if len(tenants) > 1 else 0

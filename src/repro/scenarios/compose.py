"""Streaming interleave of per-tenant traces into one scheduled stream.

:class:`TraceComposer` walks the scenario's schedule (round-robin or weighted
round-robin over the tenants, one quantum per turn) and yields
``(asid, tenant_name, instruction)`` triples one at a time.  Nothing about the
merged stream is ever materialized: each tenant is read through a wrapping
:class:`~repro.traces.trace.TraceCursor`, so composing a billion-instruction
stream costs the memory of the per-tenant traces and nothing more.

ASID assignment implements the spec's switch semantics:

* ``warm``: tenant *i* always runs as ASID *i* (the first-scheduled tenant is
  ASID 0, so a single-tenant scenario is indistinguishable from a plain
  single-trace simulation);
* ``cold``: every scheduling turn allocates a fresh ASID (monotonically
  increasing), so no turn can ever re-use retained state -- and under tagged
  retention the dead entries of previous incarnations pollute capacity, which
  is exactly the microservice-churn effect the scenario models.

Consecutive turns of the *same* tenant under ``warm`` semantics keep the same
ASID and therefore cause no context switch (the scheduler just keeps running
the tenant), which is why a one-tenant warm scenario never switches at all.

Shared code footprints (``spec.shared_fraction > 0``) are modelled by a
page-granular remap applied to each tenant's trace before scheduling:

* every tenant's code pages (pages touched by a PC, fall-through or branch
  target) are sorted; the first ``floor(shared_fraction * pages)`` of them --
  the low-address prefix, i.e. the shared-library image -- are remapped by
  rank onto a **shared region**.  Shared regions are scoped *per workload*
  (one slot per distinct binary, in tenant order): tenants running the same
  binary map the same branches at the same shared addresses, while tenants
  running different binaries share nothing -- two unrelated programs do not
  map each other's libraries, and colliding their code would report fake
  "duplication" for content that was never the same;
* the remaining pages are remapped by rank into a **private region** at a
  per-tenant-index stride, so private footprints are disjoint across tenants
  (the historical layout, where every workload image starts at the same base
  address, overlaps them incidentally);
* the remap is order-preserving over each tenant's sorted page set and keeps
  page offsets, so same-page branches stay same-page, branch ordering is
  kept, and call fall-throughs stay consistent with their returns (boundary
  instructions get a stretched ``size`` so ``pc + size`` lands on the next
  mapped page).

With ``shared_fraction == 0.0`` no remap object is ever built and the input
traces are streamed as-is, bit-identical to the historical composer.  The
remap is a pure function of (trace, tenant index, fraction), so composed
streams stay deterministic across processes and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Mapping, Tuple

from repro.common.errors import ConfigurationError
from repro.isa.instruction import Instruction
from repro.scenarios.spec import ScenarioSpec
from repro.traces.trace import Trace, TraceCursor


@dataclass(frozen=True)
class ScheduledChunk:
    """One contiguous piece of a scheduling turn, for the batched backend.

    Covers ``trace.instructions[start:stop]`` run by ``tenant`` under
    ``asid``.  A turn whose cursor wraps past the trace end is split into
    multiple chunks so every chunk is a contiguous slice -- which is what lets
    the backend index straight into the trace's structure-of-arrays view.
    Concatenating the chunks' instructions reproduces
    :meth:`TraceComposer.stream` element for element (pinned by the
    round-trip property suite).
    """

    asid: int
    tenant: str
    trace: Trace
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start

#: 4 KiB pages, matching the page/region granularity of PDede and R-BTB.
PAGE_SHIFT = 12
_PAGE_MASK = (1 << PAGE_SHIFT) - 1

#: Base of shared slot 0 (each distinct workload gets its own shared region,
#: one stride higher per slot).  Below the private bases so the remap is
#: order-preserving (shared pages are each tenant's lowest pages).
SHARED_BASE_PAGE = 0x4000_0000_0000 >> PAGE_SHIFT

#: Pages between consecutive workloads' shared regions (16 GiB of VA each).
SHARED_SLOT_STRIDE_PAGES = (1 << 34) >> PAGE_SHIFT

#: Base of tenant 0's private region; tenant *i* starts ``i`` strides higher.
PRIVATE_BASE_PAGE = 0x6000_0000_0000 >> PAGE_SHIFT

#: Pages between consecutive tenants' private regions (16 GiB of VA each).
PRIVATE_TENANT_STRIDE_PAGES = (1 << 34) >> PAGE_SHIFT

#: Remapped addresses must stay within the modelled 48-bit address space
#: (and every shared slot must stay below the private bases).
_MAX_REMAP_TENANTS = ((1 << 47) - 0x6000_0000_0000) // (1 << 34)


def tenant_code_pages(trace: Trace) -> list[int]:
    """Sorted page numbers touched by the trace (PCs, fall-throughs, targets)."""
    pages = set()
    for instruction in trace:
        pages.add(instruction.pc >> PAGE_SHIFT)
        pages.add(instruction.fall_through >> PAGE_SHIFT)
        if instruction.is_branch:
            pages.add(instruction.target >> PAGE_SHIFT)
    return sorted(pages)


def shared_page_split(page_count: int, shared_fraction: float) -> int:
    """Number of pages of a ``page_count``-page footprint that are shared.

    The floor of ``page_count * shared_fraction`` over the fraction's
    *intended* decimal value: ``Fraction(str(f))`` recovers the shortest
    decimal that reprs to the float, so ``0.7`` of 10 pages is 7, not the 6
    that binary ``0.7 = 0.69999…`` truncates to.  Fractions exact in binary
    (0.5, 0.25, …) are unchanged, which keeps the pinned goldens byte-stable.
    """
    return int(page_count * Fraction(str(shared_fraction)))


#: Per-source-trace bound on memoized remaps (see :func:`cached_remap`): big
#: enough for every (tenant index, fraction, slot) combination a sweep grid
#: replays against one source, small enough that thousand-tenant scenarios
#: (which use thousands of distinct tenant indices) stay bounded in memory.
_REMAP_CACHE_LIMIT = 16


def cached_remap(
    trace: Trace, tenant_index: int, shared_fraction: float, shared_slot: int = 0
) -> Trace:
    """Memoizing wrapper around :func:`remap_tenant_trace`.

    The remap is a pure function of its arguments, so the result is cached on
    the *source* trace object: sweep grids replay the same few (tenant index,
    fraction, slot) combinations against one stored trace across many cells,
    and rebuilding the full instruction list dominated the composer's cost.
    The cache is insertion-order bounded so scenarios with many tenants (every
    tenant index is a distinct key) cannot pin unbounded remapped copies.
    """
    key = (tenant_index, str(shared_fraction), shared_slot)
    cache: Dict[tuple, Trace] | None = getattr(trace, "_remap_cache", None)
    if cache is None:
        cache = {}
        trace._remap_cache = cache  # type: ignore[attr-defined]
    cached = cache.get(key)
    if cached is not None:
        return cached
    remapped = remap_tenant_trace(trace, tenant_index, shared_fraction, shared_slot)
    if len(cache) >= _REMAP_CACHE_LIMIT:
        cache.pop(next(iter(cache)))
    cache[key] = remapped
    return remapped


def remap_tenant_trace(
    trace: Trace, tenant_index: int, shared_fraction: float, shared_slot: int = 0
) -> Trace:
    """Remap ``trace`` for the tenant at ``tenant_index`` (see module docs).

    ``shared_slot`` selects the shared region the tenant's shared prefix lands
    in -- the composer assigns one slot per distinct *workload*, so only
    tenants replaying the same binary coincide.  Pure and deterministic:
    equal arguments always produce an identical trace, and two tenants
    replaying the same workload get identical *shared* mappings (their shared
    prefixes land on the same addresses) while their private pages land in
    disjoint per-tenant windows.
    """
    if tenant_index >= _MAX_REMAP_TENANTS or shared_slot >= _MAX_REMAP_TENANTS:
        raise ConfigurationError(
            f"shared-footprint remapping supports at most {_MAX_REMAP_TENANTS} "
            f"tenants/workloads within the 48-bit address space, got "
            f"index {tenant_index} / slot {shared_slot}"
        )
    pages = tenant_code_pages(trace)
    shared_count = shared_page_split(len(pages), shared_fraction)
    shared_base = SHARED_BASE_PAGE + shared_slot * SHARED_SLOT_STRIDE_PAGES
    private_base = PRIVATE_BASE_PAGE + tenant_index * PRIVATE_TENANT_STRIDE_PAGES
    page_map: Dict[int, int] = {}
    for rank, page in enumerate(pages):
        if rank < shared_count:
            page_map[page] = shared_base + rank
        else:
            page_map[page] = private_base + (rank - shared_count)

    def remap(address: int) -> int:
        return (page_map[address >> PAGE_SHIFT] << PAGE_SHIFT) | (address & _PAGE_MASK)

    instructions = []
    for instruction in trace:
        pc = remap(instruction.pc)
        # Keep fall-throughs consistent with the remapped return targets: the
        # remap is order-preserving, so the stretched size is always positive.
        size = remap(instruction.fall_through) - pc
        if instruction.is_branch:
            instructions.append(
                Instruction(
                    pc=pc,
                    size=size,
                    branch_type=instruction.branch_type,
                    taken=instruction.taken,
                    target=remap(instruction.target),
                )
            )
        else:
            instructions.append(Instruction(pc=pc, size=size))
    metadata = dict(trace.metadata)
    metadata["shared_fraction"] = shared_fraction
    metadata["shared_pages"] = shared_count
    metadata["private_pages"] = len(pages) - shared_count
    return Trace(trace.name, instructions, isa=trace.isa, metadata=metadata)


class TraceComposer:
    """Interleaves per-tenant traces according to a :class:`ScenarioSpec`."""

    def __init__(self, spec: ScenarioSpec, traces: Mapping[str, Trace]) -> None:
        missing = [t.workload for t in spec.tenants if t.workload not in traces]
        if missing:
            raise ConfigurationError(
                f"scenario {spec.name!r} is missing traces for workloads {missing}"
            )
        isas = {traces[t.workload].isa for t in spec.tenants}
        if len(isas) > 1:
            raise ConfigurationError(
                f"scenario {spec.name!r} mixes ISAs {sorted(i.value for i in isas)}; "
                "all tenants must share one ISA"
            )
        empty = sorted({t.workload for t in spec.tenants if len(traces[t.workload]) == 0})
        if empty:
            raise ConfigurationError(
                f"scenario {spec.name!r} has empty traces for workloads {empty}; "
                "every tenant needs at least one instruction to schedule"
            )
        self.spec = spec
        self.isa = next(iter(isas))
        self._traces: Dict[str, Trace] = {t.workload: traces[t.workload] for t in spec.tenants}
        # One trace per tenant, in scheduling order.  With a shared footprint
        # each tenant gets its own remapped copy: tenants replaying the same
        # workload share one shared-region slot (their shared prefixes
        # coincide) but never a private window; with shared_fraction == 0 the
        # input traces are used untouched.
        if spec.shared_fraction > 0.0:
            slots: Dict[str, int] = {}
            for tenant in spec.tenants:
                slots.setdefault(tenant.workload, len(slots))
            self._tenant_traces: List[Trace] = [
                cached_remap(
                    self._traces[tenant.workload],
                    index,
                    spec.shared_fraction,
                    shared_slot=slots[tenant.workload],
                )
                for index, tenant in enumerate(spec.tenants)
            ]
        else:
            self._tenant_traces = [self._traces[tenant.workload] for tenant in spec.tenants]

    def tenant_trace(self, tenant_index: int) -> Trace:
        """The (possibly remapped) trace the given tenant replays."""
        return self._tenant_traces[tenant_index]

    def code_page_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant page accounting of the composed footprint.

        Maps tenant name to ``{"pages", "shared_pages", "private_pages"}``
        computed over the tenant's *replayed* (remapped when shared) trace.
        Walks every tenant trace once, so call it for reports and tests, not
        per instruction.
        """
        stats: Dict[str, Dict[str, int]] = {}
        for tenant, trace in zip(self.spec.tenants, self._tenant_traces):
            pages = tenant_code_pages(trace)
            shared = sum(1 for page in pages if page < PRIVATE_BASE_PAGE)
            if self.spec.shared_fraction <= 0.0:
                # No remap: the historical layout has no shared region.
                shared = 0
            stats[tenant.name] = {
                "pages": len(pages),
                "shared_pages": shared,
                "private_pages": len(pages) - shared,
            }
        return stats

    # -- scheduling ---------------------------------------------------------

    def turn_lengths(self) -> List[int]:
        """Instructions each tenant runs per scheduling turn, in tenant order."""
        return [self.spec.turn_quantum(tenant) for tenant in self.spec.tenants]

    def stream(self, total_instructions: int) -> Iterator[Tuple[int, str, Instruction]]:
        """Yield exactly ``total_instructions`` scheduled ``(asid, tenant, instruction)``.

        Tenant traces wrap when exhausted, so any total length is valid.  The
        schedule is a pure function of the spec and the total length: two
        streams composed from equal specs are element-for-element identical,
        which is what lets scenario cells live in the content-addressed result
        cache.
        """
        if total_instructions < 0:
            raise ConfigurationError("composed stream length cannot be negative")
        spec = self.spec
        tenants = spec.tenants
        cursors = [TraceCursor(trace) for trace in self._tenant_traces]
        quanta = self.turn_lengths()
        cold = spec.switch_semantics == "cold"

        remaining = total_instructions
        turn = 0
        next_cold_asid = 0
        while remaining > 0:
            tenant_index = turn % len(tenants)
            tenant_name = tenants[tenant_index].name
            if cold:
                asid = next_cold_asid
                next_cold_asid += 1
            else:
                asid = tenant_index
            count = min(quanta[tenant_index], remaining)
            for instruction in cursors[tenant_index].take(count):
                yield asid, tenant_name, instruction
            remaining -= count
            turn += 1

    def stream_batches(self, total_instructions: int) -> Iterator[ScheduledChunk]:
        """Yield the schedule of :meth:`stream` as contiguous trace chunks.

        Mirrors :meth:`stream`'s scheduling exactly -- same turn order, same
        per-turn quanta, same ASID assignment, same wrapping cursor positions
        -- but instead of yielding instructions one at a time it yields
        ``(asid, tenant, trace, start, stop)`` chunks, splitting a turn
        wherever its cursor wraps.  Feeding every chunk's slice to a consumer
        in order therefore produces the identical ``(asid, tenant,
        instruction)`` sequence.
        """
        if total_instructions < 0:
            raise ConfigurationError("composed stream length cannot be negative")
        spec = self.spec
        tenants = spec.tenants
        traces = self._tenant_traces
        positions = [0] * len(tenants)
        quanta = self.turn_lengths()
        cold = spec.switch_semantics == "cold"

        remaining = total_instructions
        turn = 0
        next_cold_asid = 0
        while remaining > 0:
            tenant_index = turn % len(tenants)
            tenant_name = tenants[tenant_index].name
            if cold:
                asid = next_cold_asid
                next_cold_asid += 1
            else:
                asid = tenant_index
            count = min(quanta[tenant_index], remaining)
            trace = traces[tenant_index]
            length = len(trace)
            position = positions[tenant_index]
            left = count
            while left > 0:
                piece = min(left, length - position)
                yield ScheduledChunk(
                    asid=asid,
                    tenant=tenant_name,
                    trace=trace,
                    start=position,
                    stop=position + piece,
                )
                position = (position + piece) % length
                left -= piece
            positions[tenant_index] = position
            remaining -= count
            turn += 1

    def context_switch_count(self, total_instructions: int) -> int:
        """Number of ASID changes the composed stream will trigger.

        Useful for sizing tests and reports without walking the stream.  The
        first turn never counts (the machine boots into it).
        """
        tenants = self.spec.tenants
        quanta = self.turn_lengths()
        cycle = sum(quanta)
        if total_instructions <= 0:
            return 0
        full_cycles, leftover = divmod(total_instructions, cycle)
        turns = full_cycles * len(tenants)
        for quantum in quanta:
            if leftover <= 0:
                break
            turns += 1
            leftover -= quantum
        if self.spec.switch_semantics == "cold":
            return max(turns - 1, 0)
        # Warm: consecutive turns of the same tenant (single-tenant scenarios)
        # do not switch.
        return max(turns - 1, 0) if len(tenants) > 1 else 0

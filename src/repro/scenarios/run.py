"""Run one scenario on one machine configuration.

This is the scenario counterpart of :func:`repro.core.simulator.simulate_trace`:
resolve the spec, build the tenant traces through the (bounded, process-local)
trace store, compose the scheduled stream, and hand it to
:meth:`FrontEndSimulator.run_scenario`.  Everything is deterministic in the
argument tuple, which is what makes scenario cells cacheable experiment jobs.
"""

from __future__ import annotations

from repro.common.config import ASIDMode, BTBStyle, default_machine_config
from repro.core.metrics import ScenarioResult
from repro.core.simulator import FrontEndSimulator
from repro.obs import get_recorder
from repro.btb.base import BTBBase
from repro.btb.storage import make_btb_for_budget
from repro.scenarios.compose import TraceComposer
from repro.scenarios.presets import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.traces.store import TraceStore, default_store


def resolve_scenario(scenario: ScenarioSpec | str) -> ScenarioSpec:
    """Accept a spec or a registered preset name."""
    if isinstance(scenario, ScenarioSpec):
        return scenario
    return get_scenario(scenario)


def _energy_report(btb: BTBBase, budget_kib: float, isa) -> dict | None:
    """Table V's per-design energy, evaluated on this run's access counters.

    Returns ``None`` for organizations without an energy model (ideal).
    """
    from repro.energy.btb_energy import BTBEnergyModel

    try:
        design = BTBEnergyModel(budget_kib, isa=isa).energy_from_btb(btb)
    except ValueError:
        return None
    return {
        "design": design.design,
        "total_energy_uj": design.total_energy_uj,
        "lookup_latency_ns": design.lookup_latency_ns,
        "structures": {
            name: {
                "reads": float(entry.reads),
                "writes": float(entry.writes),
                "searches": float(entry.searches),
                "read_energy_pj": entry.read_energy_pj,
                "write_energy_pj": entry.write_energy_pj,
                "search_energy_pj": entry.search_energy_pj,
                "total_energy_uj": entry.total_energy_uj,
            }
            for name, entry in design.structures.items()
        },
    }


def execute_scenario(
    scenario: ScenarioSpec | str,
    style: BTBStyle = BTBStyle.BTBX,
    asid_mode: ASIDMode = ASIDMode.FLUSH,
    budget_kib: float = 14.5,
    instructions: int = 100_000,
    warmup_instructions: int = 0,
    fdip_enabled: bool = True,
    trace_store: TraceStore | None = None,
    cache_mode: ASIDMode | None = None,
    backend: str | None = None,
) -> ScenarioResult:
    """Compose and simulate ``scenario`` for ``instructions`` total instructions.

    Each tenant's trace is generated at the full stream length (cursors wrap,
    so a tenant scheduled for only a fraction of the stream still replays its
    own deterministic workload).  Full-length generation is a deliberate
    choice: a tenant's trace is then identical to the one the single-trace
    experiments cache under ``(workload, instructions)``, whatever the
    scenario's policy or weights, so the trace store shares work across
    scenario and plain cells and the job identity stays simple.  The cost --
    tenant-count times the generation work, each trace only partially consumed
    -- is acceptable at this model's scales.  The BTB is sized for
    ``budget_kib`` exactly like every single-trace experiment cell.

    Under ``ASIDMode.PARTITIONED`` the BTB's sets are divided among the
    tenants before the run, proportionally to the spec's scheduling weights
    (see :meth:`~repro.scenarios.spec.ScenarioSpec.partition_weights`); the
    resulting per-tenant set counts are reported on the
    :class:`~repro.core.metrics.ScenarioResult`, as are any partitioned
    secondary structures (PDede's Page-/Region-BTB, R-BTB's Page-BTB, BTB-X's
    companion) and the BTB's duplication counters -- the tag-distinct versus
    distinct allocations that make shared-code duplication measurable when
    ``spec.shared_fraction > 0``.

    ``backend`` selects the execution engine: ``"python"`` is the scalar
    oracle, ``"numpy"`` streams the schedule as structure-of-arrays chunks
    through :mod:`repro.core.batch` (bit-exact, enforced by the differential
    backend suite), and ``None`` defers to the ``REPRO_BACKEND`` environment
    variable (see :func:`repro.common.config.resolve_backend`).  The backend
    is an execution detail, never part of a cell's identity.

    ``cache_mode`` selects the memory hierarchy's context-switch behaviour:
    ``None`` (the default) keeps the legacy shared, untagged hierarchy, while
    an :class:`ASIDMode` makes every cache level flush, ASID-tag or
    set-partition across switches -- partitioned cache capacity uses the same
    scheduling weights as the BTB.  The result also carries the BTB's access
    counters and their Table V energy evaluation, so consolidation's energy
    cost reads off the same cell as its MPKI cost.
    """
    spec = resolve_scenario(scenario)
    recorder = get_recorder()
    store = trace_store or default_store()
    # Compose covers tenant trace fetch/build plus the composer's shared-page
    # remap work; simulate covers the actual run.  Splitting the two is what
    # lets `obs report` show where a scenario cell's wall-clock goes.
    with recorder.span(
        "scenario.compose", scenario=spec.name, tenants=len(spec.tenant_names)
    ):
        traces = {
            workload: store.get(workload, instructions) for workload in set(spec.workloads)
        }
        composer = TraceComposer(spec, traces)
    machine = default_machine_config(
        btb_style=style,
        fdip_enabled=fdip_enabled,
        isa=composer.isa,
        asid_mode=asid_mode,
        cache_asid_mode=cache_mode,
        backend=backend,
    )
    btb = make_btb_for_budget(style, budget_kib, isa=composer.isa)
    if asid_mode is ASIDMode.PARTITIONED:
        btb.configure_partitions(spec.partition_weights)
    simulator = FrontEndSimulator(machine, btb=btb)
    if cache_mode is ASIDMode.PARTITIONED:
        simulator.hierarchy.configure_partitions(spec.partition_weights)
    with recorder.span(
        "scenario.simulate",
        scenario=spec.name,
        style=style.value,
        asid_mode=asid_mode.value,
        backend=machine.backend,
        instructions=instructions,
        quantum=spec.quantum_instructions,
    ) as sim_span:
        if machine.backend == "numpy":
            from repro.scenarios.pipeline import ChunkPipeline

            # Bounded producer thread: composes the chunk schedule and decodes
            # each chunk's SoA view ahead of the simulate loop.  The finally
            # guarantees the thread is joined on every exit -- normal
            # completion, simulate failure or producer failure alike.
            pipeline = ChunkPipeline(composer.stream_batches(instructions))
            try:
                result = simulator.run_scenario_batches(
                    pipeline,
                    warmup_instructions=warmup_instructions,
                    scenario_name=spec.name,
                )
            finally:
                pipeline.close()
        else:
            result = simulator.run_scenario(
                composer.stream(instructions),
                warmup_instructions=warmup_instructions,
                scenario_name=spec.name,
            )
        sim_span.set(context_switches=result.context_switches)
    recorder.count("scenario.context_switches", result.context_switches)
    counts = btb.partition_set_counts()
    if counts is not None:
        result.partition_sets = dict(zip(spec.tenant_names, counts))
    secondary = btb.secondary_partition_counts()
    if secondary:
        result.secondary_partition_sets = {
            structure: dict(zip(spec.tenant_names, structure_counts))
            for structure, structure_counts in secondary.items()
        }
    cache_partitions = simulator.hierarchy.partition_report()
    if cache_partitions:
        result.cache_partition_sets = {
            level: dict(zip(spec.tenant_names, level_counts))
            for level, level_counts in cache_partitions.items()
        }
    result.duplication = btb.duplication_counts()
    # One merge point with the energy model: BTB-X's companion counters are
    # folded in by energy_access_counts(), so re-deriving energy from these
    # exported counters reproduces the energy field exactly.
    result.btb_access_counts = btb.energy_access_counts()
    result.energy = _energy_report(btb, budget_kib, composer.isa)
    return result

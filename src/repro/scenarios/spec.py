"""Declarative description of a multi-tenant consolidation scenario.

A scenario names a set of **tenants** (each replaying one workload trace), a
scheduling **quantum** in instructions, a scheduler **policy**, and the
**switch semantics** that decide how address spaces behave across scheduling
turns.  Specs are frozen and hashable, so a scenario can key the experiment
engine's result cache exactly like a workload name does.

Switch semantics:

* ``warm`` -- every tenant keeps a stable ASID for the whole run, so under
  ASID-tagged retention its BTB/RAS state survives descheduling (the steady
  consolidated-server case);
* ``cold`` -- every scheduling turn runs in a *fresh* address space (think
  short-lived microservice instances or serverless functions), so retained
  state can never be re-used and even tagged BTBs behave like cold ones while
  still paying the capacity pollution of dead entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.config import require_positive_int
from repro.common.errors import ConfigurationError

#: Scheduler policies understood by the composer.
POLICIES: Tuple[str, ...] = ("round_robin", "weighted")

#: Switch semantics understood by the composer.
SWITCH_SEMANTICS: Tuple[str, ...] = ("warm", "cold")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a named replay of a workload trace with a scheduling weight."""

    name: str
    workload: str
    weight: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant needs a name")
        if not self.workload:
            raise ConfigurationError(f"tenant {self.name!r} needs a workload")
        require_positive_int(self.weight, f"tenant {self.name!r}: weight")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, hashable description of one consolidation scenario.

    ``shared_fraction`` models shared libraries: that fraction of every
    tenant's code pages (the low-address prefix of its sorted page set) is
    remapped onto one region of addresses common to all tenants, while the
    remaining pages move to per-tenant disjoint private regions.  ``0.0``
    (the default) disables remapping entirely and reproduces the historical
    composer output bit-for-bit; see
    :mod:`repro.scenarios.compose` for the remapping rules.
    """

    name: str
    tenants: Tuple[TenantSpec, ...]
    quantum_instructions: int = 8_192
    policy: str = "round_robin"
    switch_semantics: str = "warm"
    shared_fraction: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigurationError(f"scenario {self.name!r} needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"scenario {self.name!r} has duplicate tenant names")
        require_positive_int(
            self.quantum_instructions,
            f"scenario {self.name!r}: quantum_instructions (per scheduling turn)",
        )
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown scheduler policy {self.policy!r}; expected one of {POLICIES}"
            )
        if self.switch_semantics not in SWITCH_SEMANTICS:
            raise ConfigurationError(
                f"unknown switch semantics {self.switch_semantics!r}; "
                f"expected one of {SWITCH_SEMANTICS}"
            )
        if (
            isinstance(self.shared_fraction, bool)
            or not isinstance(self.shared_fraction, (int, float))
            or not 0.0 <= self.shared_fraction <= 1.0
        ):
            raise ConfigurationError(
                f"scenario {self.name!r}: shared_fraction must be a number within "
                f"[0, 1], got {self.shared_fraction!r}"
            )
        # Normalize so 0 and 0.0 hash/serialize identically (cache identity).
        object.__setattr__(self, "shared_fraction", float(self.shared_fraction))

    @property
    def tenant_names(self) -> Tuple[str, ...]:
        """Tenant names in scheduling order."""
        return tuple(tenant.name for tenant in self.tenants)

    @property
    def workloads(self) -> Tuple[str, ...]:
        """Workload of each tenant, in scheduling order (may repeat)."""
        return tuple(tenant.workload for tenant in self.tenants)

    @property
    def partition_weights(self) -> Tuple[int, ...]:
        """Per-tenant capacity shares for ``ASIDMode.PARTITIONED`` BTBs.

        The scheduling weights double as the partition map: a tenant that gets
        more CPU time also gets a proportionally larger slice of every
        partitioned BTB's sets.
        """
        return tuple(tenant.weight for tenant in self.tenants)

    def turn_quantum(self, tenant: TenantSpec) -> int:
        """Instructions ``tenant`` runs per scheduling turn under this policy."""
        if self.policy == "weighted":
            return self.quantum_instructions * tenant.weight
        return self.quantum_instructions

    def config_dict(self) -> Dict[str, object]:
        """Canonical JSON-able form (cache identity and reports)."""
        return {
            "name": self.name,
            "tenants": [
                {"name": t.name, "workload": t.workload, "weight": t.weight}
                for t in self.tenants
            ],
            "quantum_instructions": self.quantum_instructions,
            "policy": self.policy,
            "switch_semantics": self.switch_semantics,
            "shared_fraction": self.shared_fraction,
        }

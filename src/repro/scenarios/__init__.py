"""Multi-tenant scenario engine: trace composition with context switches.

The paper evaluates BTB organizations on isolated traces; real servers
timeslice many tenants, and context switches are exactly what thrashes a BTB.
This package opens that axis:

* :mod:`repro.scenarios.spec`    -- declarative :class:`ScenarioSpec` (tenants,
  weights, quantum, scheduler policy, warm/cold switch semantics);
* :mod:`repro.scenarios.compose` -- streaming :class:`TraceComposer` that
  interleaves per-tenant traces into one scheduled ``(asid, tenant,
  instruction)`` stream without materializing the merge;
* :mod:`repro.scenarios.generate` -- seeded :class:`ScenarioRecipe` expansion
  into large (4..1024+ tenant) scenarios over generated workload names;
* :mod:`repro.scenarios.presets` -- the built-in scenario registry
  (``solo_baseline``, ``consolidated_server``, ``microservice_churn``,
  ``shared_services``, ``noisy_neighbor``) plus :func:`register_scenario`;
* :mod:`repro.scenarios.run`     -- :func:`execute_scenario`, the one-call
  bridge from a spec to a :class:`~repro.core.metrics.ScenarioResult`.

Context-switch behavior is governed by the machine's
:class:`~repro.common.config.ASIDMode`: flush everything, retain via
ASID-tagged BTB entries and checkpointed RAS state, or retain with the BTB's
capacity set-partitioned among the tenants (weight-proportionally), which
separates cross-tenant pollution from cold-start misses.
"""

from repro.scenarios.compose import TraceComposer, remap_tenant_trace, tenant_code_pages
from repro.scenarios.generate import ScenarioRecipe, generate_scenario
from repro.scenarios.presets import (
    PRESET_NAMES,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.run import execute_scenario, resolve_scenario
from repro.scenarios.spec import ScenarioSpec, TenantSpec

__all__ = [
    "ScenarioRecipe",
    "ScenarioSpec",
    "TenantSpec",
    "generate_scenario",
    "TraceComposer",
    "remap_tenant_trace",
    "tenant_code_pages",
    "PRESET_NAMES",
    "scenario_names",
    "get_scenario",
    "register_scenario",
    "execute_scenario",
    "resolve_scenario",
]

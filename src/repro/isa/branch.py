"""Branch classification used by the BTB ``type`` field and the front end.

The conventional BTB entry (Figure 1) spends two bits on the branch type;
accordingly the model distinguishes the four classes the front end treats
differently:

* conditional direct branches -- need a direction prediction; target from BTB;
* unconditional direct branches (jumps) -- always taken; target from BTB;
  resolvable at decode when they miss in the BTB (Section VI-A);
* calls -- always taken; push the return address onto the RAS;
* returns -- always taken; target comes from the RAS, so BTB-X way 0 stores no
  offset bits for them (Section V-A).

Indirect branches (excluding returns) are modelled as unconditional branches
whose target cannot be recovered at decode; they are tracked separately so the
timing model can charge them the full execute-stage flush on a BTB miss.
"""

from __future__ import annotations

import enum


class BranchType(enum.Enum):
    """Branch classes distinguished by the front end."""

    NOT_BRANCH = "not_branch"
    CONDITIONAL = "conditional"
    UNCONDITIONAL = "unconditional"
    CALL = "call"
    RETURN = "return"
    INDIRECT = "indirect"
    INDIRECT_CALL = "indirect_call"

    @property
    def is_branch(self) -> bool:
        """True for every class except plain (non-branch) instructions."""
        return self is not BranchType.NOT_BRANCH

    @property
    def is_conditional(self) -> bool:
        """True only for conditional direct branches."""
        return self is BranchType.CONDITIONAL

    @property
    def is_always_taken(self) -> bool:
        """True for branch classes that unconditionally redirect fetch."""
        return self in _ALWAYS_TAKEN

    @property
    def is_call(self) -> bool:
        """True for direct and indirect calls (they push onto the RAS)."""
        return self in (BranchType.CALL, BranchType.INDIRECT_CALL)

    @property
    def is_return(self) -> bool:
        """True for return instructions (target supplied by the RAS)."""
        return self is BranchType.RETURN

    @property
    def is_indirect(self) -> bool:
        """True when the target is register-supplied (not decodable)."""
        return self in (BranchType.INDIRECT, BranchType.INDIRECT_CALL)

    @property
    def target_from_ras(self) -> bool:
        """True when the predicted target comes from the return address stack."""
        return self is BranchType.RETURN

    @property
    def decode_resolvable(self) -> bool:
        """True when the target is encoded in the instruction bytes.

        Such branches can be resolved at the decode stage when they miss in the
        BTB (the Section VI-A optimization): the front end is resteered after
        paying only the decode-resteer penalty instead of a full flush.
        """
        return self in (BranchType.CONDITIONAL, BranchType.UNCONDITIONAL, BranchType.CALL)

    def encoding(self) -> int:
        """Two-bit encoding stored in a BTB entry's ``type`` field.

        The hardware only needs to distinguish conditional / unconditional /
        call / return; indirect branches share the unconditional or call
        encodings.
        """
        if self is BranchType.CONDITIONAL:
            return 0
        if self in (BranchType.UNCONDITIONAL, BranchType.INDIRECT):
            return 1
        if self in (BranchType.CALL, BranchType.INDIRECT_CALL):
            return 2
        if self is BranchType.RETURN:
            return 3
        raise ValueError("non-branch instructions have no BTB type encoding")


_ALWAYS_TAKEN = frozenset(
    {
        BranchType.UNCONDITIONAL,
        BranchType.CALL,
        BranchType.RETURN,
        BranchType.INDIRECT,
        BranchType.INDIRECT_CALL,
    }
)

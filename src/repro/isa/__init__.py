"""Instruction-set level abstractions: branch types and instruction records.

The simulator is trace driven; the only ISA-level information it needs per
instruction is whether it is a branch, which kind of branch, whether it was
taken, and its target.  :class:`repro.isa.branch.BranchType` enumerates the
branch classes the BTB's ``type`` field distinguishes, and
:class:`repro.isa.instruction.Instruction` is the retired-instruction record
shared by the trace readers, the workload generators and the simulator.
"""

from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction

__all__ = ["BranchType", "Instruction"]

"""The retired-instruction record consumed by the trace-driven simulator.

A trace is a sequence of :class:`Instruction` objects in retirement order.
Each record carries the PC, instruction size, branch class, the resolved
taken/not-taken outcome and the resolved target.  This is the same information
a ChampSim trace record provides to the front end; micro-op and register
information is not needed by any experiment in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.branch import BranchType


@dataclass(frozen=True, slots=True)
class Instruction:
    """One retired instruction.

    Attributes:
        pc: Virtual address of the instruction.
        size: Instruction size in bytes (4 on Arm64, variable on x86).
        branch_type: Branch class, ``BranchType.NOT_BRANCH`` for non-branches.
        taken: Resolved direction; always ``True`` for unconditional classes
            and always ``False`` for non-branches.
        target: The branch's architectural target (where control goes when the
            branch is taken), regardless of the resolved direction.  Zero for
            non-branch instructions.  The architectural next PC is exposed by
            :attr:`next_pc`.
    """

    pc: int
    size: int = 4
    branch_type: BranchType = BranchType.NOT_BRANCH
    taken: bool = False
    target: int = 0

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise ValueError(f"instruction PC must be non-negative, got {self.pc}")
        if self.size <= 0:
            raise ValueError(f"instruction size must be positive, got {self.size}")
        if not self.branch_type.is_branch and self.taken:
            raise ValueError("a non-branch instruction cannot be taken")
        if self.branch_type.is_always_taken and not self.taken:
            raise ValueError(f"{self.branch_type} branches are always taken")

    @property
    def is_branch(self) -> bool:
        """True when the instruction is any kind of branch."""
        return self.branch_type.is_branch

    @property
    def fall_through(self) -> int:
        """Address of the next sequential instruction."""
        return self.pc + self.size

    @property
    def next_pc(self) -> int:
        """Architectural next PC: target when taken, fall-through otherwise."""
        return self.target if self.taken else self.fall_through

    def cache_block(self, line_size: int = 64) -> int:
        """Cache-block address (block-aligned) containing this instruction."""
        return self.pc & ~(line_size - 1)

    @staticmethod
    def non_branch(pc: int, size: int = 4) -> "Instruction":
        """Convenience constructor for a plain, non-branch instruction."""
        return Instruction(pc=pc, size=size)

    @staticmethod
    def branch(
        pc: int,
        branch_type: BranchType,
        taken: bool,
        target: int,
        size: int = 4,
    ) -> "Instruction":
        """Convenience constructor for a branch instruction."""
        return Instruction(pc=pc, size=size, branch_type=branch_type, taken=taken, target=target)

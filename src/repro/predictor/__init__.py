"""Branch direction predictors and the return address stack.

The modelled core (Table II) uses a hashed-perceptron direction predictor and
a 64-entry return address stack.  Simpler predictors (gshare, bimodal,
always-taken) are provided for ablations and for tests that need a
deterministic predictor.

All predictors implement the same two-method interface
(:meth:`~repro.predictor.base.DirectionPredictor.predict` /
:meth:`~repro.predictor.base.DirectionPredictor.update`), so the front end is
agnostic to which one is configured.
"""

from repro.predictor.base import AlwaysTakenPredictor, DirectionPredictor
from repro.predictor.bimodal import BimodalPredictor
from repro.predictor.gshare import GSharePredictor
from repro.predictor.perceptron import HashedPerceptronPredictor
from repro.predictor.ras import ReturnAddressStack
from repro.predictor.factory import make_direction_predictor

__all__ = [
    "DirectionPredictor",
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "GSharePredictor",
    "HashedPerceptronPredictor",
    "ReturnAddressStack",
    "make_direction_predictor",
]

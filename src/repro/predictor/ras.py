"""Return address stack (RAS).

Calls push their return address (the instruction after the call); returns pop
it.  The modelled RAS has a fixed number of entries (64 in Table II) and wraps
on overflow, exactly like hardware circular RAS implementations: pushing onto
a full stack overwrites the oldest entry, and popping an empty stack returns
``None`` (the front end then has no predicted target for the return).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.common.stats import Stats


class ReturnAddressStack:
    """Fixed-capacity circular return address stack."""

    def __init__(self, entries: int = 64, stats: Stats | None = None) -> None:
        if entries <= 0:
            raise ConfigurationError("RAS needs at least one entry")
        self.entries = entries
        registry = stats if stats is not None else Stats()
        self.stats = registry.group("ras")
        self._stack: List[int] = []

    def push(self, return_address: int) -> None:
        """Push a call's return address; overwrites the oldest on overflow."""
        self.stats.inc("pushes")
        self._stack.append(return_address)
        if len(self._stack) > self.entries:
            # Circular overwrite: the oldest entry is lost.
            self._stack.pop(0)
            self.stats.inc("overflows")

    def pop(self) -> Optional[int]:
        """Pop the predicted return target; ``None`` when the stack is empty."""
        self.stats.inc("pops")
        if not self._stack:
            self.stats.inc("underflows")
            return None
        return self._stack.pop()

    def peek(self) -> Optional[int]:
        """Return the top of the stack without popping."""
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        """Empty the stack (context-switch flush, tests)."""
        self._stack.clear()

    def snapshot(self) -> List[int]:
        """Copy of the current stack contents (per-ASID checkpointing)."""
        return list(self._stack)

    def restore(self, entries: List[int]) -> None:
        """Replace the stack contents with a previously taken snapshot."""
        self._stack = list(entries)

    def __len__(self) -> int:
        return len(self._stack)

    @property
    def capacity(self) -> int:
        """Maximum number of return addresses held."""
        return self.entries

    def storage_bits(self, address_bits: int = 48) -> int:
        """Storage footprint of the RAS."""
        return self.entries * address_bits

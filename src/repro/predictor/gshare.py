"""gshare direction predictor: global history XOR-ed with the PC."""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.stats import Stats
from repro.predictor.base import DirectionPredictor


class GSharePredictor(DirectionPredictor):
    """Classic gshare: a 2-bit counter table indexed by PC xor global history."""

    name = "gshare"

    def __init__(
        self,
        table_bits: int = 14,
        history_bits: int = 14,
        stats: Stats | None = None,
    ) -> None:
        super().__init__(stats)
        if table_bits <= 0 or history_bits < 0:
            raise ConfigurationError("gshare needs a positive table and non-negative history")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self.table_size = 1 << table_bits
        self._counters = [2] * self.table_size
        self._history = 0

    def reset(self) -> None:
        """Restore the weakly-taken counters and clear the global history."""
        self._counters = [2] * self.table_size
        self._history = 0

    def _index(self, pc: int) -> int:
        history = self._history & ((1 << self.history_bits) - 1)
        return ((pc >> 2) ^ history) & (self.table_size - 1)

    def predict(self, pc: int) -> bool:
        """Predict from the counter selected by PC xor history."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter and shift the outcome into the global history."""
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, 3)
        else:
            self._counters[index] = max(counter - 1, 0)
        self._history = ((self._history << 1) | (1 if taken else 0)) & (
            (1 << self.history_bits) - 1
        )

    def storage_bits(self) -> int:
        """Two bits per counter plus the history register."""
        return 2 * self.table_size + self.history_bits

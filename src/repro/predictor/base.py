"""Direction predictor interface and the trivial always-taken predictor."""

from __future__ import annotations

import abc

from repro.common.stats import StatGroup, Stats


class DirectionPredictor(abc.ABC):
    """Predicts taken/not-taken for conditional branches.

    Predictors are consulted for every branch the BTB identifies as
    conditional; unconditional branches bypass the predictor.  The front end
    calls :meth:`predict` at prediction time and :meth:`update` with the
    resolved outcome at commit time.
    """

    name = "predictor"

    def __init__(self, stats: Stats | None = None) -> None:
        registry = stats if stats is not None else Stats()
        self.stats: StatGroup = registry.group(f"predictor.{self.name}")

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Return the predicted direction for the conditional branch at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train the predictor with the resolved direction of the branch at ``pc``."""

    def reset(self) -> None:
        """Forget all learned state (context-switch flush).

        Stateless predictors inherit this no-op; stateful ones must override
        it to restore their construction-time tables and history.
        """

    def record_outcome(self, predicted: bool, taken: bool) -> None:
        """Book-keeping helper used by the front end to track accuracy."""
        self.stats.inc("predictions")
        if predicted == taken:
            self.stats.inc("correct")
        else:
            self.stats.inc("mispredictions")

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Storage footprint of the predictor's tables."""


class AlwaysTakenPredictor(DirectionPredictor):
    """Static predictor that predicts every conditional branch taken.

    Useful for tests (fully deterministic) and as a lower bound in ablations.
    """

    name = "always_taken"

    def predict(self, pc: int) -> bool:
        """Always predict taken."""
        return True

    def update(self, pc: int, taken: bool) -> None:
        """Static predictor: nothing to train."""

    def storage_bits(self) -> int:
        """No storage at all."""
        return 0

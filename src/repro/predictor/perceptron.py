"""Hashed perceptron direction predictor (the Table II default).

This follows the structure of the hashed-perceptron predictor shipped with
ChampSim: several weight tables, each indexed by a hash of the branch PC and a
different length of global branch history, whose selected weights are summed;
the sign of the sum is the prediction.  Training nudges the selected weights
when the prediction was wrong or the sum's magnitude was below a threshold.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.common.errors import ConfigurationError
from repro.common.stats import Stats
from repro.predictor.base import DirectionPredictor


class HashedPerceptronPredictor(DirectionPredictor):
    """Multi-table hashed perceptron over geometric history lengths."""

    name = "hashed_perceptron"

    def __init__(
        self,
        history_lengths: Sequence[int] = (3, 8, 14, 21, 31),
        table_bits: int = 12,
        weight_bits: int = 8,
        stats: Stats | None = None,
    ) -> None:
        super().__init__(stats)
        if not history_lengths:
            raise ConfigurationError("the perceptron needs at least one history length")
        if table_bits <= 0 or weight_bits <= 1:
            raise ConfigurationError("invalid perceptron geometry")
        self.history_lengths = tuple(history_lengths)
        self.table_bits = table_bits
        self.table_size = 1 << table_bits
        self._length_masks = tuple((1 << length) - 1 for length in self.history_lengths)
        self.weight_bits = weight_bits
        self.weight_max = (1 << (weight_bits - 1)) - 1
        self.weight_min = -(1 << (weight_bits - 1))
        # One weight table per history length plus a bias table (index 0 uses
        # history length 0, i.e. PC only).
        self._tables: List[List[int]] = [
            [0] * self.table_size for _ in range(len(self.history_lengths) + 1)
        ]
        self._history = 0
        self.max_history = max(self.history_lengths)
        # Training threshold from the perceptron literature: ~1.93*h + 14.
        self.threshold = int(1.93 * self.max_history + 14)
        # predict() -> update() memo for the common per-branch call pair: both
        # hash the same (pc, history) state, so the selected indices and their
        # sum can be computed once.  Invalidated whenever weights or history
        # change, so it never outlives one instruction's predict/update pair.
        self._memo_pc: int | None = None
        self._memo: tuple[List[int], int] | None = None

    def reset(self) -> None:
        """Zero every weight table and the global history register."""
        zero = [0] * self.table_size
        for table in self._tables:
            table[:] = zero
        self._history = 0
        self._memo_pc = None

    # -- hashing ------------------------------------------------------------

    def _fold_history(self, length: int) -> int:
        """Fold the newest ``length`` history bits down to the table index width."""
        history = self._history & ((1 << length) - 1)
        folded = 0
        while history:
            folded ^= history & (self.table_size - 1)
            history >>= self.table_bits
        return folded

    def _indices(self, pc: int) -> List[int]:
        mask = self.table_size - 1
        bits = self.table_bits
        base = (pc >> 2) & mask
        history = self._history
        indices = [base]
        append = indices.append
        # _fold_history inlined per length (this is the hottest loop of the
        # whole direction predictor).
        for length_mask in self._length_masks:
            folded = 0
            h = history & length_mask
            while h:
                folded ^= h & mask
                h >>= bits
            append((base ^ folded) & mask)
        return indices

    def _locate(self, pc: int) -> tuple[List[int], int]:
        """Selected table indices and their weight sum for ``pc``, memoized.

        The memo is only ever valid between a ``predict(pc)`` and the
        ``update(pc, ...)`` of the same instruction: any weight or history
        mutation clears it.
        """
        if pc == self._memo_pc:
            return self._memo  # type: ignore[return-value]
        indices = self._indices(pc)
        total = sum(table[index] for table, index in zip(self._tables, indices))
        self._memo_pc = pc
        self._memo = (indices, total)
        return indices, total

    def _sum(self, pc: int) -> int:
        return self._locate(pc)[1]

    # -- interface ------------------------------------------------------------

    def predict(self, pc: int) -> bool:
        """Predict taken when the summed weights are non-negative."""
        return self._locate(pc)[1] >= 0

    def update(self, pc: int, taken: bool) -> None:
        """Perceptron training rule with a magnitude threshold, then shift history."""
        indices, total = self._locate(pc)
        predicted = total >= 0
        if predicted != taken or abs(total) < self.threshold:
            direction = 1 if taken else -1
            weight_min = self.weight_min
            weight_max = self.weight_max
            for table, index in zip(self._tables, indices):
                updated = table[index] + direction
                table[index] = max(weight_min, min(weight_max, updated))
        self._history = ((self._history << 1) | (1 if taken else 0)) & (
            (1 << self.max_history) - 1
        )
        self._memo_pc = None

    def storage_bits(self) -> int:
        """Weight tables plus the global history register."""
        return len(self._tables) * self.table_size * self.weight_bits + self.max_history

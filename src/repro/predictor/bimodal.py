"""Bimodal (per-PC 2-bit counter) direction predictor."""

from __future__ import annotations

from repro.common.bitutils import is_power_of_two
from repro.common.errors import ConfigurationError
from repro.common.stats import Stats
from repro.predictor.base import DirectionPredictor


class BimodalPredictor(DirectionPredictor):
    """A table of saturating 2-bit counters indexed by the branch PC."""

    name = "bimodal"

    def __init__(self, table_bits: int = 14, stats: Stats | None = None) -> None:
        super().__init__(stats)
        if table_bits <= 0 or table_bits > 28:
            raise ConfigurationError("bimodal table size must be between 2^1 and 2^28 entries")
        self.table_bits = table_bits
        self.table_size = 1 << table_bits
        if not is_power_of_two(self.table_size):  # pragma: no cover - by construction
            raise ConfigurationError("bimodal table size must be a power of two")
        # Counters initialised to weakly taken (2): branches are taken-biased.
        self._counters = [2] * self.table_size

    def reset(self) -> None:
        """Restore every counter to weakly taken."""
        self._counters = [2] * self.table_size

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.table_size - 1)

    def predict(self, pc: int) -> bool:
        """Predict taken when the counter is in one of its two upper states."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Saturating increment/decrement of the counter."""
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, 3)
        else:
            self._counters[index] = max(counter - 1, 0)

    def storage_bits(self) -> int:
        """Two bits per counter."""
        return 2 * self.table_size

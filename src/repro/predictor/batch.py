"""Batched commit plans: vectorized direction prediction for the numpy backend.

The direction predictors' state (counter tables, weight tables, global history
registers) evolves *only* through ``update(pc, taken)`` calls at conditional
branch commits, and always with the architectural outcome the trace carries --
never with anything prediction-dependent.  For a scheduling piece the batched
engine therefore knows, before simulating a single instruction, the exact
sequence of ``(pc, taken)`` commits the predictor will see.  A *commit plan*
exploits that:

* **histories** -- the global history value at every commit is a sliding
  window over ``[initial history bits | piece taken bits]``, computed for the
  whole piece with one strided-view matmul;
* **indices** -- every table index (bimodal's PC hash, gshare's PC^history,
  the hashed perceptron's per-table XOR folds, the hottest loop of the scalar
  predictor) is a pure function of ``(pc, history)`` and is vectorized over
  the commit sub-array;
* **segments** (2-bit counter predictors) -- table reads and writes conflict
  only when the same index repeats, so the commit stream is cut into segments
  at first-repeat points; within a segment every read precedes every write,
  and the per-commit predictions and trained counter values are evaluated
  with array gathers/scatters against a plan-private mirror, provably equal
  to the scalar interleaved order.

Application stays **lazy**: the plan precomputes, but each commit's table
write lands when the engine reaches that commit.  This is what keeps the plan
bit-exact under the front end's interleaved reads -- a false BTB hit on a
non-branch PC consults ``predict(pc)`` *between* commits and must observe
exactly-current tables (pinned by the oracle-differential suite and the
property tests in ``tests/test_predictor_batch.py``).

The perceptron's weight *sums* are deliberately not segment-batched: measured
commit streams cut at bias-table conflicts have median segment length 2 (same
branch PCs recur immediately), far below numpy's per-call break-even, so the
plan vectorizes the index/history computation and applies the sum + training
rule per commit through plain list indexing.  See TESTING.md.

Everything here degrades gracefully: no numpy, an unsupported predictor type
or an empty commit sub-array yields ``None`` and the engine falls back to the
scalar ``predict``/``update`` calls (counted as ``batch.commits_scalar``).
"""

from __future__ import annotations

from repro.predictor.base import DirectionPredictor
from repro.predictor.bimodal import BimodalPredictor
from repro.predictor.gshare import GSharePredictor
from repro.predictor.perceptron import HashedPerceptronPredictor
from repro.traces.batch import HAVE_NUMPY, np

#: Counter-plan segments shorter than this are evaluated with plain Python
#: (numpy's per-call overhead dwarfs 2-3 element gathers); longer segments
#: use array gathers/scatters.  Purely an evaluation-cost knob: both paths
#: compute identical values and the property suite drives both.
_SEGMENT_VECTOR_MIN = 8


def plan_commits(predictor: DirectionPredictor, pcs, taken):
    """Build a commit plan for this piece's conditional-branch sub-array.

    ``pcs``/``taken`` are numpy arrays holding the PCs and architectural
    outcomes of the piece's conditional branch commits, in stream order.
    Returns ``None`` when there is nothing to plan (no numpy, no commits, or
    a predictor type without a batched twin); the caller then stays on the
    scalar path.
    """
    if not HAVE_NUMPY or len(pcs) == 0:
        return None
    if type(predictor) is BimodalPredictor:
        return _CounterPlan(predictor, pcs, taken, history_bits=0)
    if type(predictor) is GSharePredictor:
        return _CounterPlan(predictor, pcs, taken, history_bits=predictor.history_bits)
    if type(predictor) is HashedPerceptronPredictor:
        return _PerceptronPlan(predictor, pcs, taken)
    return None


def history_values(initial: int, taken, bits: int):
    """Global-history value before and after every commit, vectorized.

    ``h_before[k]`` is the history register's value when commit ``k`` is
    processed; ``h_after[k]`` the value once its outcome has been shifted in
    (``h_after[k] == h_before[k + 1]``).  Equivalent to iterating
    ``h = ((h << 1) | taken) & mask``: the register after ``k`` shifts holds
    the last ``bits`` outcomes, which is exactly a ``bits``-wide sliding
    window over ``[initial bits | taken bits]``.
    """
    n = len(taken)
    if bits <= 0:
        zeros = np.zeros(n, dtype=np.int64)
        return zeros, zeros
    taken_bits = np.asarray(taken, dtype=np.uint8)
    initial_bits = np.empty(bits, dtype=np.uint8)
    for position in range(bits):
        initial_bits[position] = (initial >> (bits - 1 - position)) & 1
    padded = np.concatenate([initial_bits, taken_bits])
    windows = np.lib.stride_tricks.sliding_window_view(padded, bits)
    weights = np.int64(1) << np.arange(bits - 1, -1, -1, dtype=np.int64)
    values = windows.astype(np.int64) @ weights
    return values[:n], values[1 : n + 1]


def segment_cuts(indices) -> list[int]:
    """Greedy conflict cuts: start a new segment when an index repeats.

    Returns segment boundaries ``[0, c1, ..., n]``: within each half-open
    segment all indices are distinct, so every table read (which happens at
    the commit's prediction) precedes every write to the same entry -- batch
    evaluation against segment-start state equals the scalar interleaving.
    """
    cuts = [0]
    seen: set[int] = set()
    add = seen.add
    for position, index in enumerate(indices):
        if index in seen:
            cuts.append(position)
            seen = {index}
            add = seen.add
        else:
            add(index)
    cuts.append(len(indices))
    return cuts


class _PlanStats:
    """Deferred ``record_outcome`` accounting, flushed once per piece.

    The scalar front end bumps the predictor's accuracy counters at every
    conditional commit; those counters are only read at run boundaries, and
    integer-valued float sums are exact and order-independent below 2^53, so
    one bulk ``add`` per piece is bit-identical to per-commit increments.
    """

    __slots__ = ("_predictions", "_correct", "commits_applied")

    def __init__(self) -> None:
        self._predictions = 0
        self._correct = 0
        self.commits_applied = 0

    def record_outcome(self, predicted: bool, taken: bool) -> None:
        """Deferred twin of :meth:`DirectionPredictor.record_outcome`."""
        self._predictions += 1
        if predicted == taken:
            self._correct += 1

    def flush(self, predictor: DirectionPredictor) -> None:
        if not self._predictions:
            return
        stats = predictor.stats
        stats.inc("predictions", self._predictions)
        stats.inc("correct", self._correct)
        mispredictions = self._predictions - self._correct
        if mispredictions:
            stats.inc("mispredictions", mispredictions)
        self._predictions = 0
        self._correct = 0


class _CounterPlan(_PlanStats):
    """Commit plan for the 2-bit counter predictors (bimodal, gshare).

    Build time does all the work: indices vectorized over the piece, then a
    segment-batched mirror evaluation precomputes every commit's prediction
    *and* its trained counter value.  Applying a commit is two list stores
    (counter write-through, history register), so interleaved scalar
    ``predict`` calls against the live tables always see current state.
    """

    __slots__ = ("_predictor", "_indices", "_pred", "_trained", "_history_after")

    def __init__(self, predictor, pcs, taken, history_bits: int) -> None:
        super().__init__()
        self._predictor = predictor
        mask = np.uint64(predictor.table_size - 1)
        if history_bits > 0:
            before, after = history_values(predictor._history, taken, history_bits)
            indices = ((pcs >> np.uint64(2)) ^ before.astype(np.uint64)) & mask
            self._history_after = after.tolist()
        else:
            indices = (pcs >> np.uint64(2)) & mask
            self._history_after = None
        indices = indices.astype(np.int64)
        index_list = indices.tolist()
        taken_list = taken.tolist()

        mirror = np.asarray(predictor._counters, dtype=np.int64)
        pred = [False] * len(index_list)
        trained = [0] * len(index_list)
        cuts = segment_cuts(index_list)
        for cut in range(len(cuts) - 1):
            start, stop = cuts[cut], cuts[cut + 1]
            if stop - start >= _SEGMENT_VECTOR_MIN:
                segment = indices[start:stop]
                current = mirror[segment]
                step = np.where(taken[start:stop], 1, -1)
                new = np.clip(current + step, 0, 3)
                pred[start:stop] = (current >= 2).tolist()
                trained[start:stop] = new.tolist()
                mirror[segment] = new
            else:
                for position in range(start, stop):
                    index = index_list[position]
                    current = int(mirror[index])
                    pred[position] = current >= 2
                    if taken_list[position]:
                        new = current + 1 if current < 3 else 3
                    else:
                        new = current - 1 if current > 0 else 0
                    trained[position] = new
                    mirror[index] = new
        self._indices = index_list
        self._pred = pred
        self._trained = trained

    def predict(self, k: int) -> bool:
        """Bit-exact twin of ``predict(pc_k)`` against commit-time state."""
        return self._pred[k]

    def update(self, k: int) -> None:
        """Apply commit ``k``'s training to the live predictor."""
        predictor = self._predictor
        predictor._counters[self._indices[k]] = self._trained[k]
        if self._history_after is not None:
            predictor._history = self._history_after[k]
        self.commits_applied += 1

    def finish(self) -> None:
        """Flush the deferred accuracy counters at piece end."""
        self.flush(self._predictor)


class _PerceptronPlan(_PlanStats):
    """Commit plan for the hashed perceptron.

    The vectorized part is the hashing: per-commit history values and all
    per-table XOR-folded indices for the whole piece in a handful of array
    ops.  The weight sum and the training rule run per commit through the
    precomputed index rows -- mirroring the scalar ``_locate``/``update``
    pair line for line, including the predict->update memo handshake, so the
    live tables stay exact for interleaved reads.
    """

    __slots__ = ("_predictor", "_pcs", "_taken", "_rows", "_history_after")

    def __init__(self, predictor, pcs, taken) -> None:
        super().__init__()
        self._predictor = predictor
        mask_width = np.uint64(predictor.table_size - 1)
        table_bits = np.uint64(predictor.table_bits)
        before, after = history_values(predictor._history, taken, predictor.max_history)
        history = before.astype(np.uint64)
        base = (pcs >> np.uint64(2)) & mask_width
        columns = [base.astype(np.int64).tolist()]
        for length, length_mask in zip(predictor.history_lengths, predictor._length_masks):
            h = history & np.uint64(length_mask)
            folded = np.zeros_like(h)
            rounds = (length + predictor.table_bits - 1) // predictor.table_bits
            for _ in range(rounds):
                folded ^= h & mask_width
                h >>= table_bits
            columns.append(((base ^ folded) & mask_width).astype(np.int64).tolist())
        self._rows = list(zip(*columns))
        self._pcs = pcs.tolist()
        self._taken = taken.tolist()
        self._history_after = after.tolist()

    def _locate(self, k: int):
        """Scalar ``_locate`` with the index hashing replaced by the plan."""
        predictor = self._predictor
        pc = self._pcs[k]
        if pc == predictor._memo_pc:
            return predictor._memo
        indices = self._rows[k]
        total = 0
        for table, index in zip(predictor._tables, indices):
            total += table[index]
        predictor._memo_pc = pc
        predictor._memo = (indices, total)
        return indices, total

    def predict(self, k: int) -> bool:
        """Bit-exact twin of ``predict(pc_k)`` against commit-time state."""
        # Inlined _locate (this and update are the engine's hottest
        # predictor calls): sum the live weights and leave the memo behind
        # for the paired update, exactly like the scalar predict.
        predictor = self._predictor
        pc = self._pcs[k]
        if pc == predictor._memo_pc:
            return predictor._memo[1] >= 0
        indices = self._rows[k]
        total = 0
        for table, index in zip(predictor._tables, indices):
            total += table[index]
        predictor._memo_pc = pc
        predictor._memo = (indices, total)
        return total >= 0

    def update(self, k: int) -> None:
        """Scalar training rule over the precomputed index row for commit ``k``."""
        predictor = self._predictor
        # Inlined _locate: the predict->update pair makes the memo hit the
        # common case, and this is the engine's hottest predictor call.
        if self._pcs[k] == predictor._memo_pc:
            indices, total = predictor._memo
        else:
            indices = self._rows[k]
            total = 0
            for table, index in zip(predictor._tables, indices):
                total += table[index]
        taken = self._taken[k]
        predicted = total >= 0
        if predicted != taken or abs(total) < predictor.threshold:
            direction = 1 if taken else -1
            weight_min = predictor.weight_min
            weight_max = predictor.weight_max
            for table, index in zip(predictor._tables, indices):
                updated = table[index] + direction
                table[index] = max(weight_min, min(weight_max, updated))
        predictor._history = self._history_after[k]
        predictor._memo_pc = None
        self.commits_applied += 1

    def finish(self) -> None:
        """Flush the deferred accuracy counters at piece end."""
        self.flush(self._predictor)

"""Factory mapping a :class:`BranchPredictorConfig` to a predictor instance."""

from __future__ import annotations

from repro.common.config import BranchPredictorConfig
from repro.common.errors import ConfigurationError
from repro.common.stats import Stats
from repro.predictor.base import AlwaysTakenPredictor, DirectionPredictor
from repro.predictor.bimodal import BimodalPredictor
from repro.predictor.gshare import GSharePredictor
from repro.predictor.perceptron import HashedPerceptronPredictor


def make_direction_predictor(
    config: BranchPredictorConfig, stats: Stats | None = None
) -> DirectionPredictor:
    """Instantiate the direction predictor described by ``config``."""
    if config.kind == "hashed_perceptron":
        return HashedPerceptronPredictor(
            history_lengths=config.perceptron_history_lengths,
            table_bits=config.perceptron_table_bits,
            weight_bits=config.perceptron_weight_bits,
            stats=stats,
        )
    if config.kind == "gshare":
        return GSharePredictor(
            table_bits=config.gshare_table_bits,
            history_bits=config.gshare_history_bits,
            stats=stats,
        )
    if config.kind == "bimodal":
        return BimodalPredictor(table_bits=config.bimodal_table_bits, stats=stats)
    if config.kind == "always_taken":
        return AlwaysTakenPredictor(stats=stats)
    raise ConfigurationError(f"unknown direction predictor kind {config.kind!r}")

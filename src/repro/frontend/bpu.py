"""Branch prediction unit: BTB + direction predictor + return address stack.

For every instruction address the BPU walks over it produces a
:class:`FrontEndPrediction`: whether a branch was identified (BTB hit), the
predicted direction and target, and -- once the architectural outcome is known
-- how the prediction resolves (correct, resteerable at decode, or a full
execute-stage flush).

The resolution rules follow the improved branch handling of Section VI-A:

* a taken branch that *misses* in the BTB is resolved at decode (cheap
  resteer) when its target is encoded in the instruction -- unconditional
  direct branches and calls always, conditional branches only if the direction
  predictor predicted taken (the decode stage receives direction predictions
  for all instructions);
* a taken branch that misses in the BTB and cannot be resolved at decode
  (returns, indirect branches, conditional branches predicted not-taken)
  causes a full execute-stage flush;
* a BTB miss for a not-taken conditional branch is harmless;
* on a BTB hit, a wrong predicted direction or wrong predicted target causes a
  full execute-stage flush.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.asid import ASIDCheckpointStore, retains_across_switch
from repro.common.config import MachineConfig
from repro.common.stats import Stats
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.btb.base import BTBBase, BTBLookupResult
from repro.predictor.base import DirectionPredictor
from repro.predictor.factory import make_direction_predictor
from repro.predictor.ras import ReturnAddressStack


class PredictionOutcome(enum.Enum):
    """How the front end's handling of one instruction resolves."""

    #: Correct next-PC prediction (or a non-branch instruction): no penalty.
    CORRECT = "correct"
    #: Taken branch missed in the BTB but was resteered at the decode stage.
    DECODE_RESTEER = "decode_resteer"
    #: Wrong path until the execute stage: full pipeline flush.
    EXECUTE_FLUSH = "execute_flush"


@dataclass(frozen=True, slots=True)
class FrontEndPrediction:
    """Everything the front end decided about one instruction."""

    pc: int
    btb_hit: bool
    identified_branch: bool
    predicted_taken: bool
    predicted_target: int | None
    outcome: PredictionOutcome
    #: True when the instruction is a taken branch that missed in the BTB
    #: (the events counted by the paper's BTB MPKI metric).
    btb_miss_taken_branch: bool
    #: Extra BTB port cycles beyond the first (PDede different-page lookups).
    extra_btb_cycles: int = 0
    #: True when the prediction breaks the fetch stream (any wrong next-PC);
    #: used by the FTQ/FDIP model to reset the run-ahead distance.
    stream_break: bool = False


class BranchPredictionUnit:
    """Combines a BTB organization, a direction predictor and a RAS."""

    def __init__(
        self,
        btb: BTBBase,
        config: MachineConfig,
        stats: Stats | None = None,
        direction_predictor: DirectionPredictor | None = None,
    ) -> None:
        self._stats_registry = stats if stats is not None else Stats()
        self.stats = self._stats_registry.group("bpu")
        self.btb = btb
        self.config = config
        self.direction_predictor = direction_predictor or make_direction_predictor(
            config.branch_predictor, self._stats_registry
        )
        self.ras = ReturnAddressStack(config.branch_predictor.ras_entries, self._stats_registry)
        # Context-switch state: the currently scheduled ASID and, under tagged
        # retention, the saved RAS contents of descheduled address spaces
        # (the RAS is positional, not tag-matched, so retention means
        # checkpointing it per address space; see ASIDCheckpointStore).
        self.active_asid = 0
        self._ras_checkpoints = ASIDCheckpointStore(limit=256)

    # -- context switches ------------------------------------------------------

    def context_switch(self, asid: int) -> None:
        """Schedule address space ``asid`` in, applying the machine's ASID mode.

        ``FLUSH`` discards all predictive state (BTB, direction predictor,
        RAS), modelling hardware without ASID tags.  ``TAGGED`` retains it:
        the BTB switches its active tag color, the RAS is checkpointed per
        ASID, and the direction predictor keeps its (untagged, shared) tables
        -- cross-ASID aliasing in direction tables is benign and matches real
        cores, which tag BTBs but not weight tables.  ``PARTITIONED`` retains
        exactly like ``TAGGED`` -- the difference lives entirely in the BTB's
        set indexing (see :meth:`~repro.btb.base.BTBBase.configure_partitions`),
        which keys off the same active-ASID switch.
        """
        if asid == self.active_asid:
            return
        self.stats.inc("context_switches")
        if retains_across_switch(self.config.asid_mode):
            self.ras.restore(
                self._ras_checkpoints.swap(self.active_asid, asid, self.ras.snapshot())
            )
            self.btb.set_active_asid(asid)
        else:
            self.btb.invalidate_all()
            self.ras.clear()
            self.direction_predictor.reset()
        self.active_asid = asid

    # -- prediction -----------------------------------------------------------

    def process(self, instruction: Instruction, dplan=None, dk: int = -1) -> FrontEndPrediction:
        """Predict the instruction's control flow and resolve it against truth.

        The architectural outcome carried by ``instruction`` is only used to
        classify the prediction (correct / decode resteer / execute flush) and
        to train the predictors at commit -- the prediction itself relies
        exclusively on the BTB, the direction predictor and the RAS.
        """
        return self.process_resolved(instruction, self.btb.lookup(instruction.pc), dplan, dk)

    def process_resolved(
        self,
        instruction: Instruction,
        lookup: BTBLookupResult,
        dplan=None,
        dk: int = -1,
        is_branch: bool | None = None,
    ) -> FrontEndPrediction:
        """Classify and commit ``instruction`` against an already-performed lookup.

        Split out of :meth:`process` for the batched backend, which probes the
        BTB itself with pre-vectorized set indices and tags and must then run
        the identical classification/commit pipeline.

        ``dplan``/``dk`` carry the batched backend's direction-predictor
        commit plan (:mod:`repro.predictor.batch`): when ``dk >= 0`` the
        instruction is the plan's ``dk``-th conditional-branch commit and its
        direction prediction and training apply through the plan's
        precomputed indices -- bit-exact twins of the scalar calls.  The
        scalar loops never pass them, so their path is unchanged.

        ``is_branch``, when given, is the caller's already-known
        ``instruction.is_branch`` (the batched backend holds it as a chunk
        SoA column), skipping two property hops per instruction.
        """
        if is_branch is None:
            is_branch = instruction.is_branch
        prediction = self._classify(instruction, lookup, dplan, dk, is_branch)
        self._commit(instruction, prediction, dplan, dk, is_branch)
        return prediction

    def _classify(
        self,
        instruction: Instruction,
        lookup: BTBLookupResult,
        dplan,
        dk: int,
        is_branch: bool,
    ) -> FrontEndPrediction:
        pc = instruction.pc
        actually_taken = instruction.taken

        if not lookup.hit:
            # The front end does not know this PC is a branch: it continues on
            # the sequential path.  Conceptually the direction predictor still
            # produces a prediction for every PC (Section VI-A); it is only
            # consulted here when that prediction influences the outcome
            # (a taken conditional branch that decode might resteer).
            if not is_branch or not actually_taken:
                outcome = PredictionOutcome.CORRECT
                stream_break = False
            else:
                self.stats.inc("btb_miss_taken")
                stream_break = True
                if instruction.branch_type in (BranchType.UNCONDITIONAL, BranchType.CALL):
                    outcome = PredictionOutcome.DECODE_RESTEER
                elif instruction.branch_type is BranchType.CONDITIONAL and (
                    dplan.predict(dk) if dk >= 0 else self.direction_predictor.predict(pc)
                ):
                    outcome = PredictionOutcome.DECODE_RESTEER
                else:
                    outcome = PredictionOutcome.EXECUTE_FLUSH
            return FrontEndPrediction(
                pc=pc,
                btb_hit=False,
                identified_branch=False,
                predicted_taken=False,
                predicted_target=None,
                outcome=outcome,
                btb_miss_taken_branch=is_branch and actually_taken,
                extra_btb_cycles=0,
                stream_break=stream_break,
            )

        # BTB hit: the front end knows the branch type and (usually) its target.
        identified_type = lookup.branch_type or instruction.branch_type
        if identified_type.is_conditional:
            # dk >= 0 marks the plan's dk-th conditional-branch commit; a
            # false hit that merely *identifies* as conditional (dk == -1)
            # reads the live tables through the scalar call.
            predicted_taken = dplan.predict(dk) if dk >= 0 else self.direction_predictor.predict(pc)
        else:
            predicted_taken = True

        if lookup.target_from_ras or identified_type.target_from_ras:
            predicted_target = self.ras.peek()
        else:
            predicted_target = lookup.target

        extra_cycles = (lookup.latency_cycles - 1) if predicted_taken else 0

        if not is_branch:
            # A false BTB hit (partial-tag aliasing) on a non-branch: if it is
            # predicted taken the fetch stream is broken until decode notices.
            if predicted_taken:
                self.stats.inc("false_hits")
                outcome = PredictionOutcome.DECODE_RESTEER
                stream_break = True
            else:
                outcome = PredictionOutcome.CORRECT
                stream_break = False
            return FrontEndPrediction(
                pc=pc,
                btb_hit=True,
                identified_branch=True,
                predicted_taken=predicted_taken,
                predicted_target=predicted_target,
                outcome=outcome,
                btb_miss_taken_branch=False,
                extra_btb_cycles=extra_cycles,
                stream_break=stream_break,
            )

        if predicted_taken != actually_taken:
            self.stats.inc("direction_mispredictions")
            outcome = PredictionOutcome.EXECUTE_FLUSH
            stream_break = True
        elif actually_taken and predicted_target != instruction.target:
            # Wrong target: stale indirect target, RAS mismatch or aliasing.
            self.stats.inc("target_mispredictions")
            outcome = PredictionOutcome.EXECUTE_FLUSH
            stream_break = True
        else:
            outcome = PredictionOutcome.CORRECT
            stream_break = False

        return FrontEndPrediction(
            pc=pc,
            btb_hit=True,
            identified_branch=True,
            predicted_taken=predicted_taken,
            predicted_target=predicted_target,
            outcome=outcome,
            btb_miss_taken_branch=False,
            extra_btb_cycles=extra_cycles,
            stream_break=stream_break,
        )

    # -- commit-time updates ------------------------------------------------------

    def _commit(
        self,
        instruction: Instruction,
        prediction: FrontEndPrediction,
        dplan,
        dk: int,
        is_branch: bool,
    ) -> None:
        """Commit-time training: predictors, RAS and BTB updates."""
        if not is_branch:
            return
        branch_type = instruction.branch_type
        if branch_type.is_conditional:
            predicted = prediction.predicted_taken if prediction.identified_branch else False
            if dk >= 0:
                dplan.record_outcome(predicted, instruction.taken)
                dplan.update(dk)
            else:
                self.direction_predictor.record_outcome(predicted, instruction.taken)
                self.direction_predictor.update(instruction.pc, instruction.taken)
        # Architectural RAS maintenance: calls push, returns pop.
        if branch_type.is_call:
            self.ras.push(instruction.fall_through)
        elif branch_type.is_return:
            self.ras.pop()
        # The BTB is updated at commit by taken branches only (Section VI-A).
        if instruction.taken:
            self.btb.update(instruction)

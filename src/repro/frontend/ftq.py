"""Fetch target queue (FTQ).

The FTQ decouples the branch prediction unit from the fetch engine (Figure 2).
The BPU pushes predicted instruction addresses at its own pace; the fetch
engine pops them.  Its occupancy therefore measures how far ahead of fetch the
BPU is running, which is exactly the lead time available to FDIP for hiding
L1-I miss latency.  A pipeline flush or resteer empties the queue: the BPU
must start over on the corrected path.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.common.errors import ConfigurationError
from repro.common.stats import Stats


class FetchTargetQueue:
    """Bounded FIFO of predicted fetch addresses."""

    def __init__(self, capacity: int = 128, stats: Stats | None = None) -> None:
        if capacity <= 0:
            raise ConfigurationError("FTQ capacity must be positive")
        self.capacity = capacity
        registry = stats if stats is not None else Stats()
        self.stats = registry.group("ftq")
        # maxlen lets the deque itself discard spilled entries at C speed;
        # push/extend only have to *report* the spill, not perform it.
        self._entries: Deque[int] = deque(maxlen=capacity)

    def push(self, address: int) -> Optional[int]:
        """Push a predicted instruction address.

        When the queue is full the oldest address is returned (the fetch
        engine is modelled as consuming it), keeping occupancy at capacity.
        (This is the simulator's inner loop, so no per-push statistics are
        recorded; flushes are counted because they are rare and meaningful.)
        """
        entries = self._entries
        spilled = entries[0] if len(entries) == self.capacity else None
        entries.append(address)
        return spilled

    def extend(self, addresses) -> int:
        """Bulk-push predicted addresses; returns how many oldest ones spilled.

        Equivalent to calling :meth:`push` once per address: the queue ends
        with the same contents and occupancy, and any overflow is consumed
        from the old end.  Used by the batched backend to enqueue a whole run
        of sequential fetch addresses in one call.
        """
        entries = self._entries
        overflow = len(entries) + len(addresses) - self.capacity
        entries.extend(addresses)
        return overflow if overflow > 0 else 0

    def pop(self) -> Optional[int]:
        """Pop the oldest predicted address (fetch engine consumption)."""
        if not self._entries:
            return None
        return self._entries.popleft()

    def flush(self) -> int:
        """Drop every queued address (pipeline flush / resteer); returns count."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.stats.inc("flushes")
            self.stats.inc("flushed_entries", dropped)
        return dropped

    @property
    def occupancy(self) -> int:
        """Number of addresses currently queued (the BPU's run-ahead distance)."""
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """True when the BPU cannot run further ahead."""
        return len(self._entries) >= self.capacity

    def __len__(self) -> int:
        return len(self._entries)

"""Core front end: branch prediction unit, fetch target queue and FDIP.

The decoupled front end of Figure 2 is composed of:

* :class:`repro.frontend.bpu.BranchPredictionUnit` -- BTB + direction
  predictor + return address stack, producing a next-PC prediction for every
  instruction the BPU walks over;
* :class:`repro.frontend.ftq.FetchTargetQueue` -- the queue of predicted fetch
  addresses that decouples the BPU from the fetch engine and whose occupancy
  determines how much L1-I miss latency FDIP can hide;
* :class:`repro.frontend.fdip.FDIPPrefetcher` -- the prefetch engine scanning
  the FTQ and issuing L1-I prefetches.
"""

from repro.frontend.bpu import BranchPredictionUnit, FrontEndPrediction, PredictionOutcome
from repro.frontend.fdip import FDIPPrefetcher
from repro.frontend.ftq import FetchTargetQueue

__all__ = [
    "BranchPredictionUnit",
    "FrontEndPrediction",
    "PredictionOutcome",
    "FetchTargetQueue",
    "FDIPPrefetcher",
]

"""Fetch-directed instruction prefetcher (FDIP).

The prefetch engine scans the FTQ and issues L1-I prefetches for the cache
blocks the fetch engine will need (Figure 2).  How much of an L1-I miss the
prefetch hides depends on the BPU's run-ahead distance when the block entered
the FTQ: with a full 128-entry FTQ and a 6-wide fetch engine the prefetch has
roughly 21 cycles of lead time, enough to hide an L2 hit entirely and most of
an LLC hit.

Modelling note (documented in DESIGN.md): rather than simulating the prefetch
queue cycle-by-cycle, the model charges each demand L1-I miss the *residual*
latency that the prefetch could not hide, where the lead time is the FTQ
occupancy (in instructions) divided by the fetch width.  A fetch-stream break
(BTB miss on a taken branch, direction misprediction, wrong target) flushes
the FTQ, so the instructions immediately after a resteer see little or no
prefetch coverage -- exactly the FDIP degradation the paper attributes to BTB
misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.common.stats import Stats
from repro.frontend.ftq import FetchTargetQueue
from repro.memory.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class PrefetchCoverage:
    """How an L1-I demand miss interacts with FDIP."""

    #: Cycles of miss latency the demand fetch still has to wait for.
    residual_latency: int
    #: Cycles hidden by the prefetch (0 when FDIP is disabled or cold).
    hidden_latency: int
    #: Classification used for statistics: "full", "partial", "none".
    coverage: str


class FDIPPrefetcher:
    """Prefetch engine coupled to the FTQ and the memory hierarchy."""

    def __init__(
        self,
        config: MachineConfig,
        ftq: FetchTargetQueue,
        hierarchy: MemoryHierarchy,
        stats: Stats | None = None,
    ) -> None:
        registry = stats if stats is not None else Stats()
        self.stats = registry.group("fdip")
        self.config = config
        self.ftq = ftq
        self.hierarchy = hierarchy
        self.enabled = config.fdip.enabled
        self._fetch_width = max(config.core.fetch_width, 1)
        self._last_prefetched_block: int | None = None
        # The observe paths run once per predicted address (the simulator's
        # innermost loop); the line mask and the L1-I are immutable for the
        # hierarchy's lifetime, so both are hoisted out of them here.
        self._line_mask = ~(hierarchy.line_size() - 1)
        self._l1i = hierarchy.l1i
        # The FTQ's deque is stable for its lifetime (flush clears in place),
        # so the block-run path can append through it directly -- the spill
        # count ftq.extend reports is unused here and maxlen already trims.
        self._ftq_entries = ftq._entries

    # -- BPU side ---------------------------------------------------------------

    def observe_predicted_address(self, address: int) -> None:
        """Called for every address the BPU inserts into the FTQ.

        Issues an L1-I prefetch the first time a new cache block enters the
        queue (the prefetch engine deduplicates consecutive requests for the
        same block, as the real engine would).
        """
        self.ftq.push(address)
        if not self.enabled:
            return
        block = address & self._line_mask
        if block == self._last_prefetched_block:
            return
        self._last_prefetched_block = block
        if not self._l1i.contains(block):
            self.stats.inc("prefetches_issued")

    def observe_predicted_block_run(self, addresses) -> None:
        """Observe a run of predicted addresses that share one cache block.

        Bit-equivalent to calling :meth:`observe_predicted_address` for each
        address when all of them fall in the same block: every address enters
        the FTQ, and the block-dedup/prefetch check can fire at most once (on
        the first address).  The batched backend uses this for runs of
        sequential non-branch instructions, which never leave their block.
        """
        self._ftq_entries.extend(addresses)
        if not self.enabled or not addresses:
            return
        block = addresses[0] & self._line_mask
        if block == self._last_prefetched_block:
            return
        self._last_prefetched_block = block
        if not self._l1i.contains(block):
            self.stats.inc("prefetches_issued")

    def on_stream_break(self) -> None:
        """A resteer/flush empties the FTQ and restarts the run-ahead."""
        self.ftq.flush()
        self._last_prefetched_block = None

    # -- fetch side ----------------------------------------------------------------

    @property
    def lead_cycles(self) -> int:
        """Cycles of run-ahead currently available to hide a miss."""
        if not self.enabled:
            return 0
        return self.ftq.occupancy // self._fetch_width

    def cover_demand_miss(self, miss_latency: int) -> PrefetchCoverage:
        """Compute the residual stall of an L1-I demand miss under FDIP."""
        if not self.enabled or miss_latency <= 0:
            if miss_latency > 0:
                self.stats.inc("misses_uncovered")
            return PrefetchCoverage(
                residual_latency=max(miss_latency, 0), hidden_latency=0, coverage="none"
            )
        hidden = min(self.lead_cycles, miss_latency)
        residual = miss_latency - hidden
        if hidden == 0:
            self.stats.inc("misses_uncovered")
            coverage = "none"
        elif residual == 0:
            self.stats.inc("misses_fully_covered")
            coverage = "full"
        else:
            self.stats.inc("misses_partially_covered")
            coverage = "partial"
        self.stats.add("hidden_cycles", hidden)
        return PrefetchCoverage(residual_latency=residual, hidden_latency=hidden, coverage=coverage)

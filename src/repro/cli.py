"""Command-line interface: run any experiment driver and print its report.

Examples::

    btbx-repro list
    btbx-repro run fig09_mpki --scale quick
    btbx-repro run table4_capacity
    btbx-repro run fig11_sweep --scale full --json results/fig11.json
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from typing import Dict

from repro.experiments.config import FULL_SCALE, QUICK_SCALE, SMOKE_SCALE

#: Experiment name -> module path (relative to repro.experiments).
EXPERIMENTS: Dict[str, str] = {
    "table1_exynos": "repro.experiments.table1_exynos",
    "fig04_offsets": "repro.experiments.fig04_offsets",
    "table3_storage": "repro.experiments.table3_storage",
    "table4_capacity": "repro.experiments.table4_capacity",
    "fig09_mpki": "repro.experiments.fig09_mpki",
    "fig10_performance": "repro.experiments.fig10_performance",
    "table5_energy": "repro.experiments.table5_energy",
    "fig11_sweep": "repro.experiments.fig11_sweep",
    "fig12_cvp": "repro.experiments.fig12_cvp",
    "fig13_x86": "repro.experiments.fig13_x86",
    "ablation_ways": "repro.experiments.ablation_ways",
}

_SCALES = {"smoke": SMOKE_SCALE, "quick": QUICK_SCALE, "full": FULL_SCALE}


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="btbx-repro",
        description="Reproduction harness for 'A Storage-Effective BTB Organization for Servers'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment and print its report")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment to run")
    run_parser.add_argument(
        "--scale", choices=sorted(_SCALES), default="quick", help="simulation scale preset"
    )
    run_parser.add_argument("--json", dest="json_path", help="also dump the raw result as JSON")
    return parser


def run_experiment(name: str, scale_name: str = "quick") -> Dict[str, object]:
    """Run a named experiment at the requested scale and return its raw result."""
    module = importlib.import_module(EXPERIMENTS[name])
    return module.run(_SCALES[scale_name])


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            module = importlib.import_module(EXPERIMENTS[name])
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<18} {summary}")
        return 0

    module = importlib.import_module(EXPERIMENTS[args.experiment])
    result = module.run(_SCALES[args.scale])
    print(module.format_report(result))
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, default=str)
        print(f"\n(raw result written to {args.json_path})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

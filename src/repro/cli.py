"""Command-line interface: run any experiment driver and print its report.

Examples::

    btbx-repro list
    btbx-repro run fig09_mpki --scale quick
    btbx-repro run fig11_sweep --scale full --workers 8 --cache-dir results/cache
    btbx-repro run-all --scale smoke --workers 4 --timings BENCH_run_all.json
    btbx-repro scenario list
    btbx-repro scenario run consolidated_server --scale smoke --json scenario.json
    btbx-repro sweep scenarios --preset consolidated_server --json sweep.json --csv sweep.csv
    btbx-repro sweep shared --preset shared_services --json shared.json --csv shared.csv
    btbx-repro sweep scenarios --scale smoke --backend numpy
    btbx-repro bench smoke --repeats 2 --json BENCH_fresh.json
    btbx-repro bench compare --fresh BENCH_fresh.json --json BENCH_verdict.json
    btbx-repro cache stats --cache-dir results/cache
    btbx-repro cache prune --cache-dir results/cache --max-age-days 30
    btbx-repro run-all --scale smoke --workers 4 --trace-out run_all.trace.jsonl
    btbx-repro obs report run_all.trace.jsonl
    btbx-repro obs export run_all.trace.jsonl --out run_all.chrome.json

Scale resolution honors the ``REPRO_SCALE`` environment variable: when set
(to ``smoke``, ``quick`` or ``full``) it overrides the ``--scale`` flag, so
CI and batch jobs can redirect every invocation without editing commands.
Telemetry recording honors ``REPRO_OBS`` the same way: when set to a path it
acts like ``--trace-out`` for every command.
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import json
import os
import sys
import time
from typing import Dict, Iterator, List

from repro.common import log
from repro.common.config import BACKEND_ENV_VAR, BACKENDS, ASIDMode
from repro.experiments.config import (
    FULL_SCALE,
    QUICK_SCALE,
    SMOKE_SCALE,
    ExperimentScale,
    current_scale,
)
from repro.experiments.engine import ExperimentEngine, ResultCache, use_engine
from repro.obs import (
    OBS_ENV_VAR,
    OBS_FORMAT_ENV_VAR,
    JsonlRecorder,
    get_recorder,
    trace_path_from_env,
    use_recorder,
)

#: Experiment name -> module path (relative to repro.experiments).
EXPERIMENTS: Dict[str, str] = {
    "table1_exynos": "repro.experiments.table1_exynos",
    "fig04_offsets": "repro.experiments.fig04_offsets",
    "table3_storage": "repro.experiments.table3_storage",
    "table4_capacity": "repro.experiments.table4_capacity",
    "fig09_mpki": "repro.experiments.fig09_mpki",
    "fig10_performance": "repro.experiments.fig10_performance",
    "table5_energy": "repro.experiments.table5_energy",
    "fig11_sweep": "repro.experiments.fig11_sweep",
    "fig12_cvp": "repro.experiments.fig12_cvp",
    "fig13_x86": "repro.experiments.fig13_x86",
    "ablation_ways": "repro.experiments.ablation_ways",
    "scenario_study": "repro.experiments.scenario_study",
    "scenario_sweep": "repro.experiments.scenario_sweep",
    "shared_footprint": "repro.experiments.shared_footprint",
    "cache_interference": "repro.experiments.cache_interference",
    "tenant_scale": "repro.experiments.tenant_scale",
}

_SCALES = {"smoke": SMOKE_SCALE, "quick": QUICK_SCALE, "full": FULL_SCALE}


def _positive_int(value: str) -> int:
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value!r}")
    return count


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", choices=sorted(_SCALES), default="quick", help="simulation scale preset"
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="simulation worker processes (1 = serial, no pool)",
    )
    parser.add_argument(
        "--cache-dir",
        help="directory for the on-disk result cache (reruns skip finished jobs)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="simulation backend: 'python' = scalar oracle, 'numpy' = batched "
        f"SoA engine (default: the {BACKEND_ENV_VAR} environment variable, "
        "else python)",
    )
    parser.add_argument(
        "--trace-out",
        dest="trace_out",
        default=None,
        help="record structured telemetry (spans + metrics) of this run to the "
        f"given file (default: the {OBS_ENV_VAR} environment variable, else off)",
    )
    parser.add_argument(
        "--trace-format",
        dest="trace_format",
        choices=["jsonl", "chrome"],
        default=None,
        help="trace file format: 'jsonl' = one event per line (obs report "
        "input), 'chrome' = Chrome trace-event JSON loadable in "
        f"about://tracing or Perfetto (default: the {OBS_FORMAT_ENV_VAR} "
        "environment variable, else jsonl)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="btbx-repro",
        description="Reproduction harness for 'A Storage-Effective BTB Organization for Servers'",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress notes; keep reports, warnings and errors",
    )
    verbosity.add_argument(
        "--verbose",
        action="store_true",
        help="emit extra diagnostics (resolved scale, engine counters, ...)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment and print its report")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment to run")
    _add_engine_arguments(run_parser)
    run_parser.add_argument("--json", dest="json_path", help="also dump the raw result as JSON")

    all_parser = sub.add_parser(
        "run-all", help="run every experiment through one shared engine"
    )
    _add_engine_arguments(all_parser)
    all_parser.add_argument(
        "--timings",
        dest="timings_path",
        help="dump a JSON timing summary (per-experiment seconds, ok/failed status, "
        "engine counters)",
    )

    scenario_parser = sub.add_parser(
        "scenario", help="multi-tenant scenarios: list presets or run one"
    )
    scenario_sub = scenario_parser.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser("list", help="list registered scenario presets")
    scenario_run = scenario_sub.add_parser(
        "run", help="run one scenario across BTB styles and ASID modes"
    )
    scenario_run.add_argument("scenario", help="registered scenario preset name")
    _add_engine_arguments(scenario_run)
    scenario_run.add_argument(
        "--asid-mode",
        choices=["flush", "tagged", "partitioned", "both", "all"],
        default="all",
        help="context-switch policy to simulate ('both' = flush+tagged; "
        "default: all three)",
    )
    scenario_run.add_argument("--json", dest="json_path", help="also dump the raw result as JSON")

    sweep_parser = sub.add_parser(
        "sweep", help="grid sweeps over the scenario presets"
    )
    sweep_sub = sweep_parser.add_subparsers(dest="sweep_command", required=True)
    sweep_scenarios = sweep_sub.add_parser(
        "scenarios",
        help="MPKI vs quantum and vs tenant count across BTB styles and ASID modes",
    )
    sweep_scenarios.add_argument(
        "--preset",
        action="append",
        dest="presets",
        metavar="NAME",
        help="scenario preset to sweep (repeatable; default: every registered preset)",
    )
    _add_engine_arguments(sweep_scenarios)
    sweep_scenarios.add_argument(
        "--quanta",
        help="comma-separated quantum lengths in instructions (default: 1024..16384)",
    )
    sweep_scenarios.add_argument(
        "--tenant-counts",
        dest="tenant_counts",
        help="comma-separated tenant counts (default: 1..len(preset tenants))",
    )
    sweep_scenarios.add_argument(
        "--styles",
        help="comma-separated BTB styles (conventional,rbtb,pdede,btbx,ideal; "
        "default: conventional,btbx)",
    )
    sweep_scenarios.add_argument(
        "--asid-modes",
        dest="asid_modes",
        help="comma-separated ASID modes (flush,tagged,partitioned; default: all three)",
    )
    sweep_scenarios.add_argument(
        "--budget-kib",
        dest="budget_kib",
        type=float,
        default=None,
        help="BTB storage budget in KiB (default: the paper's 14.5)",
    )
    sweep_scenarios.add_argument("--json", dest="json_path", help="dump the raw result as JSON")
    sweep_scenarios.add_argument("--csv", dest="csv_path", help="dump flat per-point rows as CSV")

    sweep_shared = sweep_sub.add_parser(
        "shared",
        help="MPKI + duplication vs shared-code overlap fraction "
        "(ASID tagging's duplication cost)",
    )
    sweep_shared.add_argument(
        "--preset",
        default="shared_services",
        help="scenario preset to sweep (default: shared_services)",
    )
    _add_engine_arguments(sweep_shared)
    sweep_shared.add_argument(
        "--fractions",
        help="comma-separated overlap fractions in [0, 1] (default: 0,0.25,0.5,0.75,1)",
    )
    sweep_shared.add_argument(
        "--styles",
        help="comma-separated BTB styles (conventional,rbtb,pdede,btbx,ideal; "
        "default: conventional,pdede,rbtb)",
    )
    sweep_shared.add_argument(
        "--asid-modes",
        dest="asid_modes",
        help="comma-separated ASID modes (flush,tagged,partitioned; default: all three)",
    )
    sweep_shared.add_argument(
        "--budget-kib",
        dest="budget_kib",
        type=float,
        default=None,
        help="BTB storage budget in KiB (default: the paper's 14.5)",
    )
    sweep_shared.add_argument("--json", dest="json_path", help="dump the raw result as JSON")
    sweep_shared.add_argument("--csv", dest="csv_path", help="dump flat per-point rows as CSV")

    sweep_caches = sweep_sub.add_parser(
        "caches",
        help="per-tenant L1-I/L2 MPKI vs quantum and tenant count across cache "
        "ASID modes (flush/tagged/partitioned hierarchy)",
    )
    sweep_caches.add_argument(
        "--preset",
        action="append",
        dest="presets",
        metavar="NAME",
        help="scenario preset to sweep (repeatable; default: every registered preset)",
    )
    _add_engine_arguments(sweep_caches)
    sweep_caches.add_argument(
        "--quanta",
        help="comma-separated quantum lengths in instructions (default: 1024..16384)",
    )
    sweep_caches.add_argument(
        "--tenant-counts",
        dest="tenant_counts",
        help="comma-separated tenant counts (default: 1..len(preset tenants))",
    )
    sweep_caches.add_argument(
        "--style",
        help="BTB style the sweep runs on (conventional,rbtb,pdede,btbx,ideal; "
        "default: btbx)",
    )
    sweep_caches.add_argument(
        "--cache-modes",
        dest="cache_modes",
        help="comma-separated cache ASID modes (flush,tagged,partitioned; "
        "default: all three)",
    )
    sweep_caches.add_argument(
        "--budget-kib",
        dest="budget_kib",
        type=float,
        default=None,
        help="BTB storage budget in KiB (default: the paper's 14.5)",
    )
    sweep_caches.add_argument("--json", dest="json_path", help="dump the raw result as JSON")
    sweep_caches.add_argument("--csv", dest="csv_path", help="dump flat per-point rows as CSV")

    sweep_tenants = sweep_sub.add_parser(
        "tenants",
        help="tenant-count scaling (4..1024+) on seeded generated scenarios: "
        "aggregate/percentile MPKI and partition-fallback occupancy per "
        "(tenant count x ASID mode x cache mode)",
    )
    _add_engine_arguments(sweep_tenants)
    sweep_tenants.add_argument(
        "--tenant-counts",
        dest="tenant_counts",
        help="comma-separated tenant counts (default: 4,16,64,256,1024)",
    )
    sweep_tenants.add_argument(
        "--asid-modes",
        dest="asid_modes",
        help="comma-separated BTB ASID modes (flush,tagged,partitioned; default: all three)",
    )
    sweep_tenants.add_argument(
        "--cache-modes",
        dest="cache_modes",
        help="comma-separated cache hierarchy modes; 'shared' is the legacy "
        "untagged hierarchy (shared,flush,tagged,partitioned; default: "
        "shared,partitioned)",
    )
    sweep_tenants.add_argument(
        "--style",
        help="BTB style the sweep runs on (conventional,rbtb,pdede,btbx,ideal; "
        "default: btbx)",
    )
    sweep_tenants.add_argument(
        "--seed",
        type=int,
        default=None,
        help="recipe seed; one seed draws one workload population for the whole axis",
    )
    sweep_tenants.add_argument(
        "--isa",
        choices=["arm64", "x86"],
        default=None,
        help="ISA flavour of the generated tenant population (default: arm64)",
    )
    sweep_tenants.add_argument(
        "--quantum",
        type=_positive_int,
        default=None,
        help="scheduling quantum in instructions (default: 256)",
    )
    sweep_tenants.add_argument(
        "--shared-fraction",
        dest="shared_fraction",
        type=float,
        default=None,
        help="fraction of each tenant's code pages remapped onto the shared "
        "region (default: 0, no remap)",
    )
    sweep_tenants.add_argument(
        "--budget-kib",
        dest="budget_kib",
        type=float,
        default=None,
        help="BTB storage budget in KiB (default: the paper's 14.5)",
    )
    sweep_tenants.add_argument("--json", dest="json_path", help="dump the raw result as JSON")
    sweep_tenants.add_argument("--csv", dest="csv_path", help="dump flat per-point rows as CSV")

    plot_parser = sub.add_parser(
        "plot", help="render sweep CSV output (scenario/shared/cache sweeps) as figures"
    )
    plot_parser.add_argument("csv_path", help="sweep CSV produced by a --csv flag")
    plot_parser.add_argument(
        "--out-dir",
        dest="out_dir",
        help="directory for the emitted figures (default: next to the CSV)",
    )
    plot_parser.add_argument(
        "--backend",
        choices=["auto", "svg", "mpl"],
        default="auto",
        help="'svg' = built-in deterministic SVG renderer, 'mpl' = matplotlib "
        "(if installed); 'auto' prefers matplotlib when available",
    )

    bench_parser = sub.add_parser(
        "bench", help="perf-trajectory benchmark: measure or gate sweep throughput"
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)
    bench_smoke = bench_sub.add_parser(
        "smoke",
        help="time the smoke-scale `sweep scenarios` grid per backend "
        "(instructions/sec, best of --repeats)",
    )
    bench_smoke.add_argument(
        "--backends",
        help="comma-separated backends to time (default: every importable backend)",
    )
    bench_smoke.add_argument(
        "--repeats",
        type=_positive_int,
        default=2,
        help="repetitions per backend; the fastest wall time is kept (default: 2)",
    )
    bench_smoke.add_argument("--json", dest="json_path", help="dump the record as JSON")
    bench_smoke.add_argument(
        "--append-history",
        dest="append_history",
        action="store_true",
        help="append the record to the committed perf trajectory "
        "(results/bench_history.jsonl)",
    )
    bench_smoke.add_argument(
        "--history-path",
        dest="history_path",
        default=None,
        help="override the history file used by --append-history",
    )
    bench_compare = bench_sub.add_parser(
        "compare",
        help="diff a fresh bench record against the committed baseline; exit 1 on "
        "a >threshold throughput regression",
    )
    bench_compare.add_argument(
        "--fresh",
        required=True,
        help="fresh record JSON file (written by `bench smoke --json`)",
    )
    bench_compare.add_argument(
        "--baseline",
        default=None,
        help="baseline history JSONL; its last record is the baseline "
        "(default: results/bench_history.jsonl)",
    )
    bench_compare.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="fractional throughput drop that fails the gate (default: 0.20)",
    )
    bench_compare.add_argument(
        "--json",
        dest="json_path",
        help="dump the per-field verdict (per-backend baseline/fresh/ratio/"
        "regressed) as JSON for the CI gate",
    )

    obs_parser = sub.add_parser(
        "obs", help="inspect recorded telemetry traces (--trace-out output)"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="aggregate a JSONL trace into a phase table (p50/p95 per phase, "
        "pool utilization, cache hit rates, instructions/sec per driver)",
    )
    obs_report.add_argument("trace_path", help="JSONL trace file written by --trace-out")
    obs_report.add_argument(
        "--json", dest="json_path", help="also dump the aggregated report as JSON"
    )
    obs_export = obs_sub.add_parser(
        "export",
        help="convert a JSONL trace to Chrome trace-event JSON "
        "(about://tracing / Perfetto)",
    )
    obs_export.add_argument("trace_path", help="JSONL trace file written by --trace-out")
    obs_export.add_argument(
        "--out",
        dest="out_path",
        default=None,
        help="output file (default: <trace>.chrome.json)",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="run the long-lived sweep service: many clients, one engine, "
        "one cache, exactly-once cells (NDJSON over unix socket or TCP)",
    )
    listen = serve_parser.add_mutually_exclusive_group()
    listen.add_argument(
        "--socket", dest="socket_path", help="listen on this unix socket path"
    )
    listen.add_argument(
        "--port",
        type=int,
        default=None,
        help="listen on TCP (0 picks a free port); default transport when "
        "--socket is not given",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="TCP bind host (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="simulation worker processes shared by all clients",
    )
    serve_parser.add_argument(
        "--cache-dir", help="sharded on-disk result cache shared by all clients"
    )
    serve_parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="simulation backend threaded explicitly to every worker",
    )
    serve_parser.add_argument(
        "--trace-out",
        dest="trace_out",
        default=None,
        help="record service + worker telemetry to the given file",
    )
    serve_parser.add_argument(
        "--trace-format",
        dest="trace_format",
        choices=["jsonl", "chrome"],
        default=None,
        help="trace file format (default: jsonl)",
    )
    serve_parser.add_argument(
        "--budget-instructions",
        type=_positive_int,
        default=None,
        help="per-client instruction budget per window (admission control)",
    )
    serve_parser.add_argument(
        "--budget-window-s",
        type=float,
        default=None,
        help="budget window length in seconds (default: 3600)",
    )
    serve_parser.add_argument(
        "--janitor-interval-s",
        type=float,
        default=300.0,
        help="seconds between background cache-prune sweeps",
    )
    serve_parser.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="janitor prunes cache entries older than this (default: janitor off)",
    )

    cache_parser = sub.add_parser("cache", help="inspect or prune the on-disk result cache")
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser("stats", help="entry count, total bytes, age range")
    cache_stats.add_argument("--cache-dir", required=True, help="result cache directory")
    cache_prune = cache_sub.add_parser("prune", help="delete cached entries by age")
    cache_prune.add_argument("--cache-dir", required=True, help="result cache directory")
    cache_prune.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="delete entries older than this many days (default: delete everything)",
    )
    return parser


def resolve_scale(scale_name: str = "quick") -> ExperimentScale:
    """Scale implied by ``scale_name``, unless ``REPRO_SCALE`` overrides it."""
    return current_scale(default=_SCALES[scale_name])


def make_engine(workers: int = 1, cache_dir: str | None = None) -> ExperimentEngine:
    """Build an engine from CLI-level knobs."""
    return ExperimentEngine(workers=workers, cache_dir=cache_dir)


def run_experiment(
    name: str,
    scale_name: str = "quick",
    engine: ExperimentEngine | None = None,
) -> Dict[str, object]:
    """Run a named experiment at the requested scale and return its raw result."""
    module = importlib.import_module(EXPERIMENTS[name])
    scale = resolve_scale(scale_name)
    if engine is None:
        return module.run(scale)
    with use_engine(engine):
        return module.run(scale)


def run_all(
    scale_name: str = "quick",
    engine: ExperimentEngine | None = None,
) -> Dict[str, object]:
    """Run every experiment in one pooled pass over a shared engine.

    The engine's memo and cache are shared across drivers, so overlapping
    grids (fig09/fig10/fig11/table5 reuse most cells) simulate only once.
    A failing experiment does not abort the batch: its status is recorded as
    ``failed`` (with the error message) and the remaining experiments still
    run.  Returns ``{"results": ..., "timings_s": ..., "status": ...,
    "errors": ..., "engine": ...}``.
    """
    engine = engine or ExperimentEngine(workers=1)
    recorder = get_recorder()
    results: Dict[str, Dict[str, object]] = {}
    timings: Dict[str, float] = {}
    status: Dict[str, str] = {}
    errors: Dict[str, str] = {}
    instructions: Dict[str, int] = {}
    ips: Dict[str, float] = {}
    per_driver: Dict[str, Dict[str, int]] = {}
    with use_engine(engine):
        for name in EXPERIMENTS:
            counters_before = engine.stats()
            started = time.perf_counter()
            with recorder.span(f"driver.{name}") as driver_span:
                try:
                    results[name] = run_experiment(name, scale_name, engine=engine)
                    status[name] = "ok"
                except Exception as exc:  # noqa: BLE001 - batch resilience is the point
                    status[name] = "failed"
                    errors[name] = f"{type(exc).__name__}: {exc}"
                timings[name] = time.perf_counter() - started
                # Executed jobs only: a driver whose cells all memo/cache-hit
                # simulated nothing, so its throughput is reported as 0 rather
                # than an absurd cells/lookup-time figure.
                counters_after = engine.stats()
                per_driver[name] = {
                    key: counters_after[key] - counters_before[key]
                    for key in ("submitted", "executed", "memo_hits", "disk_hits")
                }
                instructions[name] = (
                    counters_after["instructions_simulated"]
                    - counters_before["instructions_simulated"]
                )
                ips[name] = instructions[name] / timings[name] if timings[name] > 0 else 0.0
                driver_span.set(
                    status=status[name],
                    instructions=instructions[name],
                    executed=per_driver[name]["executed"],
                )
    return {
        "scale": resolve_scale(scale_name).name,
        "results": results,
        "timings_s": timings,
        "instructions": instructions,
        "instructions_per_second": ips,
        "total_s": sum(timings.values()),
        "status": status,
        "errors": errors,
        "failed": sorted(name for name, state in status.items() if state == "failed"),
        "engine": engine.stats(),
        "engine_per_driver": per_driver,
    }


def _write_timings(path: str, summary: Dict[str, object], workers: int) -> None:
    record = {
        "benchmark": "run_all",
        "scale": summary["scale"],
        "workers": workers,
        "timings_s": summary["timings_s"],
        "instructions": summary["instructions"],
        "instructions_per_second": summary["instructions_per_second"],
        "total_s": summary["total_s"],
        "status": summary["status"],
        "errors": summary["errors"],
        "engine": summary["engine"],
        "engine_per_driver": summary["engine_per_driver"],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)


def _write_result_outputs(
    result: Dict[str, object],
    json_path: str | None,
    csv_path: str | None = None,
    write_csv=None,
) -> None:
    """Dump a driver result to the requested ``--json``/``--csv`` side files."""
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, default=str)
        log.info(f"\n(raw result written to {json_path})")
    if csv_path and write_csv is not None:
        write_csv(result, csv_path)
        log.info(f"(per-point CSV written to {csv_path})")


def run_scenario_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Handle ``scenario list`` and ``scenario run``."""
    from repro.common.errors import ConfigurationError
    from repro.experiments import scenario_study
    from repro.scenarios.presets import get_scenario, scenario_names

    if args.scenario_command == "list":
        for name in scenario_names():
            spec = get_scenario(name)
            tenants = ", ".join(
                f"{t.name}:{t.workload}" + (f" x{t.weight}" if t.weight != 1 else "")
                for t in spec.tenants
            )
            log.result(f"{name:<22} {spec.policy}/{spec.switch_semantics}, "
                       f"quantum {spec.quantum_instructions}: {tenants}")
            if spec.description:
                log.result(f"{'':<22} {spec.description}")
        return 0

    try:
        get_scenario(args.scenario)
    except ConfigurationError as exc:
        parser.error(str(exc))
    try:
        engine = make_engine(workers=args.workers, cache_dir=args.cache_dir)
    except OSError as exc:
        parser.error(f"cannot use cache directory {args.cache_dir!r}: {exc}")
    if args.asid_mode == "all":
        asid_modes: List[ASIDMode] = list(scenario_study.STUDY_ASID_MODES)
    elif args.asid_mode == "both":
        asid_modes = [ASIDMode.FLUSH, ASIDMode.TAGGED]
    else:
        asid_modes = [ASIDMode(args.asid_mode)]
    scale = resolve_scale(args.scale)
    result = scenario_study.run(
        scale, scenarios=[args.scenario], asid_modes=asid_modes, engine=engine
    )
    log.result(scenario_study.format_report(result))
    _write_result_outputs(result, args.json_path)
    return 0


def _parse_int_list(text: str, flag: str, parser: argparse.ArgumentParser) -> List[int]:
    """Parse a comma-separated list of positive integers or parser.error out."""
    values: List[int] = []
    for token in text.split(","):
        token = token.strip()
        try:
            value = int(token)
        except ValueError:
            parser.error(f"{flag} expects comma-separated integers, got {token!r}")
        if value < 1:
            parser.error(f"{flag} values must be positive, got {value}")
        values.append(value)
    return values


def _parse_float_list(text: str, flag: str, parser: argparse.ArgumentParser) -> List[float]:
    """Parse a comma-separated list of floats in [0, 1] or parser.error out."""
    values: List[float] = []
    for token in text.split(","):
        token = token.strip()
        try:
            value = float(token)
        except ValueError:
            parser.error(f"{flag} expects comma-separated numbers, got {token!r}")
        if not 0.0 <= value <= 1.0:
            parser.error(f"{flag} values must be within [0, 1], got {value}")
        values.append(value)
    return values


def _parse_styles(text: str, parser: argparse.ArgumentParser) -> list:
    from repro.common.config import BTBStyle

    try:
        return [BTBStyle(token.strip()) for token in text.split(",")]
    except ValueError as exc:
        parser.error(f"--styles: {exc}")


def _parse_asid_modes(
    text: str, parser: argparse.ArgumentParser, flag: str = "--asid-modes"
) -> List[ASIDMode]:
    try:
        return [ASIDMode(token.strip()) for token in text.split(",")]
    except ValueError as exc:
        parser.error(f"{flag}: {exc}")


def run_shared_sweep_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Handle ``sweep shared``."""
    from repro.common.errors import ConfigurationError
    from repro.experiments import shared_footprint
    from repro.experiments.config import DEFAULT_BUDGET_KIB
    from repro.scenarios.presets import get_scenario

    try:
        get_scenario(args.preset)
    except ConfigurationError as exc:
        parser.error(str(exc))
    fractions = (
        _parse_float_list(args.fractions, "--fractions", parser)
        if args.fractions
        else shared_footprint.DEFAULT_FRACTIONS
    )
    styles = (
        _parse_styles(args.styles, parser)
        if args.styles
        else list(shared_footprint.SWEEP_STYLES)
    )
    asid_modes = (
        _parse_asid_modes(args.asid_modes, parser)
        if args.asid_modes
        else list(shared_footprint.SWEEP_ASID_MODES)
    )
    if args.budget_kib is not None and args.budget_kib <= 0:
        parser.error(f"--budget-kib must be positive, got {args.budget_kib}")
    try:
        engine = make_engine(workers=args.workers, cache_dir=args.cache_dir)
    except OSError as exc:
        parser.error(f"cannot use cache directory {args.cache_dir!r}: {exc}")
    result = shared_footprint.run(
        resolve_scale(args.scale),
        budget_kib=args.budget_kib if args.budget_kib is not None else DEFAULT_BUDGET_KIB,
        preset=args.preset,
        fractions=fractions,
        styles=styles,
        asid_modes=asid_modes,
        engine=engine,
    )
    log.result(shared_footprint.format_report(result))
    _write_result_outputs(
        result, args.json_path, args.csv_path, shared_footprint.write_csv
    )
    return 0


def run_cache_sweep_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Handle ``sweep caches``."""
    from repro.common.errors import ConfigurationError
    from repro.experiments import cache_interference
    from repro.experiments.config import DEFAULT_BUDGET_KIB
    from repro.scenarios.presets import get_scenario

    presets = args.presets
    if presets:
        for name in presets:
            try:
                get_scenario(name)
            except ConfigurationError as exc:
                parser.error(str(exc))
    quanta = (
        _parse_int_list(args.quanta, "--quanta", parser)
        if args.quanta
        else cache_interference.DEFAULT_QUANTA
    )
    tenant_counts = (
        _parse_int_list(args.tenant_counts, "--tenant-counts", parser)
        if args.tenant_counts
        else None
    )
    if args.style:
        styles = _parse_styles(args.style, parser)
        if len(styles) != 1:
            parser.error(
                f"--style expects exactly one BTB style, got {len(styles)}: {args.style!r}"
            )
        style = styles[0]
    else:
        style = cache_interference.DEFAULT_STYLE
    cache_modes = (
        _parse_asid_modes(args.cache_modes, parser, flag="--cache-modes")
        if args.cache_modes
        else list(cache_interference.SWEEP_CACHE_MODES)
    )
    if args.budget_kib is not None and args.budget_kib <= 0:
        parser.error(f"--budget-kib must be positive, got {args.budget_kib}")
    try:
        engine = make_engine(workers=args.workers, cache_dir=args.cache_dir)
    except OSError as exc:
        parser.error(f"cannot use cache directory {args.cache_dir!r}: {exc}")
    result = cache_interference.run(
        resolve_scale(args.scale),
        budget_kib=args.budget_kib if args.budget_kib is not None else DEFAULT_BUDGET_KIB,
        presets=presets,
        style=style,
        cache_modes=cache_modes,
        quanta=quanta,
        tenant_counts=tenant_counts,
        engine=engine,
    )
    log.result(cache_interference.format_report(result))
    _write_result_outputs(result, args.json_path, args.csv_path, cache_interference.write_csv)
    return 0


def run_tenant_sweep_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Handle ``sweep tenants``."""
    from repro.common.config import BTBStyle, ISAStyle
    from repro.experiments import tenant_scale
    from repro.experiments.config import DEFAULT_BUDGET_KIB

    tenant_counts = (
        _parse_int_list(args.tenant_counts, "--tenant-counts", parser)
        if args.tenant_counts
        else list(tenant_scale.DEFAULT_TENANT_COUNTS)
    )
    asid_modes = (
        _parse_asid_modes(args.asid_modes, parser)
        if args.asid_modes
        else list(tenant_scale.SWEEP_ASID_MODES)
    )
    if args.cache_modes:
        cache_modes: List[ASIDMode | None] = []
        for token in args.cache_modes.split(","):
            token = token.strip()
            if token == "shared":
                cache_modes.append(None)
            else:
                cache_modes.extend(_parse_asid_modes(token, parser, flag="--cache-modes"))
    else:
        cache_modes = list(tenant_scale.SWEEP_CACHE_MODES)
    if args.style:
        styles = _parse_styles(args.style, parser)
        if len(styles) != 1:
            parser.error(
                f"--style expects exactly one BTB style, got {len(styles)}: {args.style!r}"
            )
        style = styles[0]
    else:
        style = BTBStyle.BTBX
    if args.seed is not None and args.seed < 0:
        parser.error(f"--seed must be non-negative, got {args.seed}")
    if args.shared_fraction is not None and not 0.0 <= args.shared_fraction <= 1.0:
        parser.error(f"--shared-fraction must be within [0, 1], got {args.shared_fraction}")
    if args.budget_kib is not None and args.budget_kib <= 0:
        parser.error(f"--budget-kib must be positive, got {args.budget_kib}")
    try:
        engine = make_engine(workers=args.workers, cache_dir=args.cache_dir)
    except OSError as exc:
        parser.error(f"cannot use cache directory {args.cache_dir!r}: {exc}")
    result = tenant_scale.run(
        resolve_scale(args.scale),
        budget_kib=args.budget_kib if args.budget_kib is not None else DEFAULT_BUDGET_KIB,
        tenant_counts=tenant_counts,
        asid_modes=asid_modes,
        cache_modes=cache_modes,
        style=style,
        seed=args.seed if args.seed is not None else tenant_scale.DEFAULT_SEED,
        isa=ISAStyle.X86 if args.isa == "x86" else ISAStyle.ARM64,
        quantum_instructions=(
            args.quantum if args.quantum is not None else tenant_scale.DEFAULT_QUANTUM
        ),
        shared_fraction=args.shared_fraction if args.shared_fraction is not None else 0.0,
        engine=engine,
    )
    log.result(tenant_scale.format_report(result))
    _write_result_outputs(result, args.json_path, args.csv_path, tenant_scale.write_csv)
    return 0


def run_sweep_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Handle ``sweep scenarios``, ``sweep shared``, ``sweep caches`` and
    ``sweep tenants``."""
    from repro.common.errors import ConfigurationError
    from repro.experiments import scenario_sweep
    from repro.experiments.config import DEFAULT_BUDGET_KIB
    from repro.scenarios.presets import get_scenario

    if args.sweep_command == "shared":
        return run_shared_sweep_command(args, parser)
    if args.sweep_command == "caches":
        return run_cache_sweep_command(args, parser)
    if args.sweep_command == "tenants":
        return run_tenant_sweep_command(args, parser)

    presets = args.presets
    if presets:
        for name in presets:
            try:
                get_scenario(name)
            except ConfigurationError as exc:
                parser.error(str(exc))

    quanta = (
        _parse_int_list(args.quanta, "--quanta", parser)
        if args.quanta
        else scenario_sweep.DEFAULT_QUANTA
    )
    tenant_counts = (
        _parse_int_list(args.tenant_counts, "--tenant-counts", parser)
        if args.tenant_counts
        else None
    )
    styles = (
        _parse_styles(args.styles, parser)
        if args.styles
        else list(scenario_sweep.SWEEP_STYLES)
    )
    asid_modes = (
        _parse_asid_modes(args.asid_modes, parser)
        if args.asid_modes
        else list(scenario_sweep.SWEEP_ASID_MODES)
    )

    if args.budget_kib is not None and args.budget_kib <= 0:
        parser.error(f"--budget-kib must be positive, got {args.budget_kib}")

    try:
        engine = make_engine(workers=args.workers, cache_dir=args.cache_dir)
    except OSError as exc:
        parser.error(f"cannot use cache directory {args.cache_dir!r}: {exc}")
    result = scenario_sweep.run(
        resolve_scale(args.scale),
        budget_kib=args.budget_kib if args.budget_kib is not None else DEFAULT_BUDGET_KIB,
        presets=presets,
        styles=styles,
        asid_modes=asid_modes,
        quanta=quanta,
        tenant_counts=tenant_counts,
        engine=engine,
    )
    log.result(scenario_sweep.format_report(result))
    _write_result_outputs(result, args.json_path, args.csv_path, scenario_sweep.write_csv)
    return 0


def run_plot_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Handle ``plot``: render a sweep CSV into one figure per metric."""
    import os

    from repro.analysis import plotting

    if not os.path.isfile(args.csv_path):
        parser.error(f"no such CSV file: {args.csv_path}")
    try:
        figures = plotting.plot_csv(
            args.csv_path, out_dir=args.out_dir, backend=args.backend
        )
    except plotting.PlotSchemaError as exc:
        parser.error(str(exc))
    for path in figures:
        log.result(f"wrote {path}")
    if not figures:
        log.result("nothing to plot (no rows in the CSV)")
    return 0


def run_cache_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Handle ``cache stats`` and ``cache prune``.

    A cache directory that does not exist is an empty cache, not an error:
    report that and exit 0 without creating the directory as a side effect
    (``ResultCache`` would, which surprises ``stats`` users probing a path).
    """
    import os

    if not os.path.isdir(args.cache_dir):
        if args.cache_command == "prune":
            log.result(f"pruned 0 entries (cache directory {args.cache_dir} does not exist)")
        else:
            log.result(f"cache directory : {args.cache_dir}")
            log.result("entries         : 0  (directory does not exist; nothing cached yet)")
        return 0
    try:
        cache = ResultCache(args.cache_dir)
    except OSError as exc:
        parser.error(f"cannot use cache directory {args.cache_dir!r}: {exc}")

    from repro.experiments.engine import CACHE_FORMAT_VERSION

    if args.cache_command == "stats":
        stats = cache.stats()
        versions = cache.format_versions()
        log.result(f"cache directory : {stats['directory']}")
        log.result(f"entries         : {stats['entries']}")
        log.result(f"total bytes     : {stats['total_bytes']}")
        if versions:
            rendered = ", ".join(f"v{version}" for version in versions)
            log.result(f"format versions : {rendered} (this tool writes v{CACHE_FORMAT_VERSION})")
        if stats["entries"]:
            age_s = time.time() - stats["oldest_mtime"]
            log.result(f"oldest entry    : {age_s / 86400.0:.2f} days old")
        return 0

    newer = cache.newer_format_than(CACHE_FORMAT_VERSION)
    if newer is not None:
        print(
            f"not pruning {args.cache_dir}: it holds entries written by cache "
            f"format v{newer}, newer than the v{CACHE_FORMAT_VERSION} this "
            "tool understands.  A newer btbx-repro is actively using this "
            "directory; prune with that version instead."
        )
        return 0
    max_age_s = None if args.max_age_days is None else args.max_age_days * 86400.0
    removed = cache.prune(max_age_seconds=max_age_s)
    what = "entries" if removed != 1 else "entry"
    if args.max_age_days is None:
        log.result(f"pruned {removed} {what} (no age limit given: cache emptied)")
    else:
        log.result(f"pruned {removed} {what} older than {args.max_age_days} days")
    return 0


def run_bench_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Handle ``bench smoke`` and ``bench compare``."""
    from repro.common.errors import ConfigurationError
    from repro.experiments import bench

    if args.bench_command == "smoke":
        backends = (
            [token.strip() for token in args.backends.split(",") if token.strip()]
            if args.backends
            else None
        )
        try:
            record = bench.run_smoke(backends=backends, repeats=args.repeats)
        except (ConfigurationError, ValueError) as exc:
            parser.error(str(exc))
        log.result(bench.format_record(record))
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
            log.info(f"(record written to {args.json_path})")
        if args.append_history:
            history_path = args.history_path or bench.DEFAULT_HISTORY_PATH
            bench.append_history(record, history_path)
            log.info(f"(record appended to {history_path})")
        return 0

    try:
        with open(args.fresh, "r", encoding="utf-8") as handle:
            fresh = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        parser.error(f"cannot read fresh record {args.fresh!r}: {exc}")
    baseline_path = args.baseline or bench.DEFAULT_HISTORY_PATH
    try:
        history = bench.load_history(baseline_path)
    except (OSError, ValueError) as exc:
        parser.error(str(exc))
    if not history:
        parser.error(
            f"no baseline records in {baseline_path!r}; run "
            "`btbx-repro bench smoke --append-history` and commit the result"
        )
    threshold = (
        args.threshold if args.threshold is not None else bench.DEFAULT_REGRESSION_THRESHOLD
    )
    if not 0.0 < threshold < 1.0:
        parser.error(f"--threshold must be within (0, 1), got {threshold}")
    verdict = bench.compare(fresh, history[-1], threshold=threshold)
    log.result(bench.format_comparison(verdict))
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(verdict, handle, indent=2, sort_keys=True)
        log.info(f"(verdict written to {args.json_path})")
    return 1 if verdict["regressed"] else 0


def run_obs_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Handle ``obs report`` and ``obs export``."""
    from repro.obs import read_trace
    from repro.obs.chrome import export_chrome
    from repro.obs.report import aggregate, format_report

    try:
        events = read_trace(args.trace_path)
    except (OSError, json.JSONDecodeError) as exc:
        parser.error(f"cannot read trace {args.trace_path!r}: {exc}")

    if args.obs_command == "report":
        report = aggregate(events)
        log.result(format_report(report))
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
            log.info(f"\n(report written to {args.json_path})")
        return 0

    out_path = args.out_path or f"{args.trace_path.removesuffix('.jsonl')}.chrome.json"
    export_chrome(events, out_path)
    log.result(f"wrote {out_path}")
    return 0


def run_serve_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Run the sweep service until a client sends ``shutdown`` (or Ctrl-C)."""
    import asyncio

    from repro.service.budget import (
        DEFAULT_BUDGET_INSTRUCTIONS,
        DEFAULT_WINDOW_SECONDS,
    )
    from repro.service.server import ServiceConfig, SweepService

    config = ServiceConfig(
        socket_path=args.socket_path,
        host=args.host,
        port=args.port or 0,
        workers=args.workers,
        cache_dir=args.cache_dir,
        backend=args.backend,
        budget_instructions=args.budget_instructions or DEFAULT_BUDGET_INSTRUCTIONS,
        budget_window_seconds=(
            DEFAULT_WINDOW_SECONDS if args.budget_window_s is None else args.budget_window_s
        ),
        janitor_interval_seconds=args.janitor_interval_s,
        max_age_seconds=(
            None if args.max_age_days is None else args.max_age_days * 86_400.0
        ),
    )
    service = SweepService(config)

    async def _serve() -> None:
        runner = asyncio.ensure_future(service.run())
        while not service.started.is_set() and not runner.done():
            await asyncio.sleep(0.01)
        if service.started.is_set():
            address = service.address
            shown = address if isinstance(address, str) else f"{address[0]}:{address[1]}"
            log.result(f"sweep service listening on {shown}")
        await runner

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        log.info("(service interrupted)")
    except OSError as exc:
        parser.error(f"cannot listen: {exc}")
    return 0


def _write_trace(recorder: JsonlRecorder, path: str, trace_format: str) -> str:
    """Serialize a finished recording in the requested format."""
    if trace_format == "chrome":
        from repro.obs.chrome import export_chrome

        export_chrome(recorder.drain(), path)
        return path
    recorder.write(path)
    return path


@contextlib.contextmanager
def _scoped_environ(updates: Dict[str, str]) -> Iterator[None]:
    """Apply environment ``updates`` for one command, then restore.

    The CLI exports its --backend / --trace-out choices through the
    environment so pooled worker processes inherit them; scoping the mutation
    keeps ``main()`` reentrant (library callers and tests invoking it must
    not find the previous run's knobs left behind in ``os.environ``).
    """
    previous = {key: os.environ.get(key) for key in updates}
    os.environ.update(updates)
    try:
        yield
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    log.configure(-1 if args.quiet else (1 if args.verbose else 0))

    # One central knob for the simulation backend: subcommands that build an
    # engine expose --backend, which routes through the environment so pooled
    # worker processes inherit it (the ``plot`` subcommand's --backend is its
    # unrelated rendering knob).  The export is scoped to this command; the
    # service additionally threads the backend to its workers explicitly, so
    # it never depends on ambient environment state.
    env_updates: Dict[str, str] = {}
    if args.command != "plot" and getattr(args, "backend", None):
        from repro.common.config import resolve_backend
        from repro.common.errors import ConfigurationError

        try:
            resolve_backend(args.backend)
        except ConfigurationError as exc:
            parser.error(str(exc))
        env_updates[BACKEND_ENV_VAR] = args.backend

    # Telemetry follows the same pattern: --trace-out (or REPRO_OBS) turns on
    # a JsonlRecorder around the whole command; the env export lets nested
    # invocations and subprocesses see that recording is on.  The `obs`
    # subcommand only *reads* traces, so it never records itself.
    trace_out = getattr(args, "trace_out", None) or trace_path_from_env()
    if trace_out and args.command != "obs":
        trace_format = (
            getattr(args, "trace_format", None)
            or os.environ.get(OBS_FORMAT_ENV_VAR, "").strip()
            or "jsonl"
        )
        if trace_format not in ("jsonl", "chrome"):
            parser.error(f"{OBS_FORMAT_ENV_VAR} must be 'jsonl' or 'chrome', got {trace_format!r}")
        env_updates[OBS_ENV_VAR] = trace_out
        recorder = JsonlRecorder()
        with _scoped_environ(env_updates):
            with use_recorder(recorder):
                exit_code = _dispatch(args, parser)
        _write_trace(recorder, trace_out, trace_format)
        log.info(f"(telemetry trace written to {trace_out})")
        return exit_code
    with _scoped_environ(env_updates):
        return _dispatch(args, parser)


def _dispatch(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Route a parsed command line to its handler."""
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            module = importlib.import_module(EXPERIMENTS[name])
            summary = (module.__doc__ or "").strip().splitlines()[0]
            log.result(f"{name:<18} {summary}")
        return 0

    if args.command == "scenario":
        return run_scenario_command(args, parser)

    if args.command == "sweep":
        return run_sweep_command(args, parser)

    if args.command == "plot":
        return run_plot_command(args, parser)

    if args.command == "cache":
        return run_cache_command(args, parser)

    if args.command == "bench":
        return run_bench_command(args, parser)

    if args.command == "obs":
        return run_obs_command(args, parser)

    if args.command == "serve":
        return run_serve_command(args, parser)

    try:
        engine = make_engine(workers=args.workers, cache_dir=args.cache_dir)
    except OSError as exc:
        parser.error(f"cannot use cache directory {args.cache_dir!r}: {exc}")
    log.debug(
        f"engine: workers={args.workers}, cache_dir={args.cache_dir}, "
        f"scale={resolve_scale(args.scale).name}"
    )

    if args.command == "run-all":
        summary = run_all(args.scale, engine=engine)
        for name in EXPERIMENTS:
            if summary["status"][name] == "failed":
                log.result(f"[{name}: FAILED after {summary['timings_s'][name]:.2f}s: "
                           f"{summary['errors'][name]}]\n")
                continue
            module = importlib.import_module(EXPERIMENTS[name])
            log.result(module.format_report(summary["results"][name]))
            driver = summary["engine_per_driver"][name]
            reuse = f"{driver['memo_hits']} memo + {driver['disk_hits']} disk hits"
            if summary["instructions"][name]:
                log.info(
                    f"[{name}: {summary['timings_s'][name]:.2f}s, "
                    f"{summary['instructions_per_second'][name]:,.0f} instructions/s, "
                    f"{driver['executed']} executed, {reuse}]\n"
                )
            else:
                log.info(
                    f"[{name}: {summary['timings_s'][name]:.2f}s "
                    f"(all cells reused: {reuse})]\n"
                )
        counters = summary["engine"]
        log.result(
            f"run-all: {summary['total_s']:.2f}s at scale {summary['scale']} "
            f"({counters['executed']} simulations, {counters['memo_hits']} memo hits, "
            f"{counters['disk_hits']} cache hits)"
        )
        if summary["failed"]:
            log.result(f"run-all: {len(summary['failed'])} experiment(s) FAILED: "
                       f"{', '.join(summary['failed'])}")
        if args.timings_path:
            _write_timings(args.timings_path, summary, args.workers)
            log.info(f"(timing summary written to {args.timings_path})")
        return 1 if summary["failed"] else 0

    result = run_experiment(args.experiment, args.scale, engine=engine)
    module = importlib.import_module(EXPERIMENTS[args.experiment])
    log.result(module.format_report(result))
    _write_result_outputs(result, args.json_path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

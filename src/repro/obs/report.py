"""Aggregate a JSONL trace into a human-readable phase report.

Backs ``btbx-repro obs report <trace.jsonl>``: spans are grouped by name
into *phases* (count / total / p50 / p95), counter events with the same name
are summed across processes, and a few derived figures are computed when the
required spans are present:

* **pool utilization** -- total worker ``engine.execute`` time divided by
  (workers x wall time of the enclosing ``engine.run_jobs`` spans);
* **cache hit rates** -- memo/disk hit fractions from the engine counters
  and hit/miss/eviction fractions from the trace store counters;
* **instructions/sec per driver** -- from ``driver.*`` spans carrying an
  ``instructions`` attribute (emitted by ``run-all``).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.recorder import read_trace

__all__ = ["read_trace", "percentile", "aggregate", "format_report"]


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation surprises)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = int(round(q * (len(ordered) - 1)))
    return ordered[min(index, len(ordered) - 1)]


def aggregate(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Reduce recorder events to the report structure rendered by the CLI."""
    spans = [e for e in events if e.get("type") == "span"]
    durations: Dict[str, List[float]] = {}
    for span in spans:
        durations.setdefault(span["name"], []).append(float(span.get("dur", 0.0)))

    phases = {}
    for name in sorted(durations):
        values = durations[name]
        phases[name] = {
            "count": len(values),
            "total_s": round(sum(values), 6),
            "p50_s": round(percentile(values, 0.50), 6),
            "p95_s": round(percentile(values, 0.95), 6),
        }

    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    for event in events:
        if event.get("type") == "counter":
            counters[event["name"]] = counters.get(event["name"], 0) + event.get("value", 0)
        elif event.get("type") == "gauge":
            gauges[event["name"]] = max(gauges.get(event["name"], 0.0), event.get("value", 0.0))

    report: Dict[str, Any] = {
        "events": len(events),
        "spans": len(spans),
        "phases": phases,
        "counters": dict(sorted(counters.items())),
    }

    # Pool utilization: worker execute time over workers x run_jobs wall time.
    run_jobs_wall = sum(durations.get("engine.run_jobs", []))
    execute_busy = sum(durations.get("engine.execute", []))
    workers = gauges.get("engine.workers", 0.0)
    if run_jobs_wall > 0 and workers > 0:
        report["pool"] = {
            "workers": int(workers),
            "run_jobs_wall_s": round(run_jobs_wall, 6),
            "execute_busy_s": round(execute_busy, 6),
            "utilization": round(execute_busy / (workers * run_jobs_wall), 4),
        }

    # Cache hit rates from the engine and trace-store counters.
    caches: Dict[str, Any] = {}
    submitted = counters.get("engine.submitted", 0)
    if submitted:
        memo = counters.get("engine.memo_hits", 0)
        disk = counters.get("engine.disk_hits", 0)
        caches["engine"] = {
            "submitted": submitted,
            "memo_hits": memo,
            "disk_hits": disk,
            "executed": counters.get("engine.executed", 0),
            "hit_rate": round((memo + disk) / submitted, 4),
        }
    store_hits = counters.get("trace.store.hits", 0)
    store_misses = counters.get("trace.store.misses", 0)
    if store_hits + store_misses:
        caches["trace_store"] = {
            "hits": store_hits,
            "misses": store_misses,
            "evictions": counters.get("trace.store.evictions", 0),
            "hit_rate": round(store_hits / (store_hits + store_misses), 4),
        }
    if caches:
        report["caches"] = caches

    # Sweep-service traffic: request/dedup/admission counters plus the wait
    # picture (how long clients blocked on in-flight cells).
    requests = counters.get("service.requests", 0)
    if requests:
        waits = durations.get("service.wait", [])
        service: Dict[str, Any] = {
            "requests": requests,
            "submitted": counters.get("service.submitted", 0),
            "dedup_hits": counters.get("service.dedup_hits", 0),
            "rejected": counters.get("service.rejected", 0),
            "connections": len(durations.get("service.accept", [])),
            "cells_executed": len(durations.get("service.execute", [])),
        }
        if waits:
            service["wait_p95_s"] = round(percentile(waits, 0.95), 6)
        report["service"] = service

    # Batched-backend split: how much of the stream ran on the vectorized
    # paths (bulk-compensated fast runs, planned commits) versus the scalar
    # fallbacks.  Emitted once per batched run by _BatchEngine.emit_metrics.
    commits_vectorized = counters.get("batch.commits_vectorized", 0)
    commits_scalar = counters.get("batch.commits_scalar", 0)
    fast = counters.get("batch.instructions_fast", 0)
    slow = counters.get("batch.instructions_slow", 0)
    if commits_vectorized + commits_scalar or fast + slow:
        batch: Dict[str, Any] = {
            "commits_vectorized": commits_vectorized,
            "commits_scalar": commits_scalar,
            "instructions_fast": fast,
            "instructions_slow": slow,
            "chunks_planned": counters.get("batch.chunks_planned", 0),
            "chunks_scalar": counters.get("batch.chunks_scalar", 0),
        }
        if commits_vectorized + commits_scalar:
            batch["commit_vectorized_fraction"] = round(
                commits_vectorized / (commits_vectorized + commits_scalar), 4
            )
        if fast + slow:
            batch["instructions_fast_fraction"] = round(fast / (fast + slow), 4)
        report["batch"] = batch

    # Pipelined-compose overlap: SoA decode spans emitted by the producer
    # thread while the consumer sat inside a scenario.simulate window.  A
    # nonzero overlap is the observable proof that compose work ran
    # concurrently with simulation.
    decode_spans = [s for s in spans if s["name"] == "scenario.compose.decode"]
    simulate_windows = [
        (float(s.get("ts", 0.0)), float(s.get("ts", 0.0)) + float(s.get("dur", 0.0)))
        for s in spans
        if s["name"] == "scenario.simulate"
    ]
    if decode_spans:
        overlap = 0.0
        for span in decode_spans:
            t0 = float(span.get("ts", 0.0))
            t1 = t0 + float(span.get("dur", 0.0))
            for w0, w1 in simulate_windows:
                lo, hi = max(t0, w0), min(t1, w1)
                if hi > lo:
                    overlap += hi - lo
        report["pipeline"] = {
            "decode_spans": len(decode_spans),
            "decode_total_s": round(
                sum(float(s.get("dur", 0.0)) for s in decode_spans), 6
            ),
            "overlap_s": round(overlap, 6),
        }

    # Instructions/sec per driver from run-all's driver.* spans.
    drivers: Dict[str, Any] = {}
    for span in spans:
        name = span["name"]
        if not name.startswith("driver."):
            continue
        attrs = span.get("attrs") or {}
        instructions = attrs.get("instructions")
        dur = float(span.get("dur", 0.0))
        entry = drivers.setdefault(
            name[len("driver."):], {"wall_s": 0.0, "instructions": 0}
        )
        entry["wall_s"] += dur
        if instructions:
            entry["instructions"] += int(instructions)
    for entry in drivers.values():
        entry["wall_s"] = round(entry["wall_s"], 6)
        if entry["wall_s"] > 0 and entry["instructions"]:
            entry["ips"] = round(entry["instructions"] / entry["wall_s"], 1)
    if drivers:
        report["drivers"] = dict(sorted(drivers.items()))

    return report


def format_report(report: Dict[str, Any]) -> str:
    """Render the aggregate as the fixed-width tables the CLI prints."""
    lines = [f"trace: {report['events']} events, {report['spans']} spans", ""]

    lines.append(f"{'phase':<28} {'count':>7} {'total_s':>10} {'p50_s':>10} {'p95_s':>10}")
    lines.append("-" * 68)
    for name, row in report["phases"].items():
        lines.append(
            f"{name:<28} {row['count']:>7} {row['total_s']:>10.4f}"
            f" {row['p50_s']:>10.6f} {row['p95_s']:>10.6f}"
        )

    pool = report.get("pool")
    if pool:
        lines.append("")
        lines.append(
            f"pool: {pool['workers']} workers, busy {pool['execute_busy_s']:.3f}s"
            f" / wall {pool['run_jobs_wall_s']:.3f}s -> utilization {pool['utilization']:.1%}"
        )

    caches = report.get("caches", {})
    engine = caches.get("engine")
    if engine:
        lines.append("")
        lines.append(
            f"engine cache: {engine['submitted']} submitted,"
            f" {engine['memo_hits']} memo + {engine['disk_hits']} disk hits,"
            f" {engine['executed']} executed (hit rate {engine['hit_rate']:.1%})"
        )
    store = caches.get("trace_store")
    if store:
        lines.append(
            f"trace store : {store['hits']} hits, {store['misses']} misses,"
            f" {store['evictions']} evictions (hit rate {store['hit_rate']:.1%})"
        )

    service = report.get("service")
    if service:
        lines.append("")
        wait = (
            f", result-wait p95 {service['wait_p95_s']:.3f}s"
            if "wait_p95_s" in service
            else ""
        )
        lines.append(
            f"service     : {service['requests']} requests over"
            f" {service['connections']} connections,"
            f" {service['submitted']} jobs submitted,"
            f" {service['cells_executed']} cells executed,"
            f" {service['dedup_hits']} dedup hits,"
            f" {service['rejected']} rejected{wait}"
        )

    batch = report.get("batch")
    if batch:
        lines.append("")
        commit_total = batch["commits_vectorized"] + batch["commits_scalar"]
        commit_part = (
            f" ({batch['commit_vectorized_fraction']:.1%} vectorized)"
            if commit_total
            else ""
        )
        lines.append(
            f"batch commits: {batch['commits_vectorized']} vectorized,"
            f" {batch['commits_scalar']} scalar{commit_part}"
        )
        stream_total = batch["instructions_fast"] + batch["instructions_slow"]
        if stream_total:
            lines.append(
                f"batch stream : {batch['instructions_fast']} fast,"
                f" {batch['instructions_slow']} slow"
                f" ({batch['instructions_fast_fraction']:.1%} fast),"
                f" chunks {batch['chunks_planned']} planned"
                f" / {batch['chunks_scalar']} scalar"
            )

    pipeline = report.get("pipeline")
    if pipeline:
        lines.append("")
        lines.append(
            f"pipeline    : {pipeline['decode_spans']} decode spans,"
            f" {pipeline['decode_total_s']:.3f}s decoded,"
            f" {pipeline['overlap_s']:.3f}s overlapping simulate"
        )

    drivers = report.get("drivers")
    if drivers:
        lines.append("")
        lines.append(f"{'driver':<24} {'wall_s':>10} {'instructions':>14} {'ips':>12}")
        lines.append("-" * 62)
        for name, row in drivers.items():
            ips = f"{row['ips']:.1f}" if "ips" in row else "-"
            lines.append(
                f"{name:<24} {row['wall_s']:>10.3f} {row['instructions']:>14} {ips:>12}"
            )

    counters = report.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name:<32} {value}")

    return "\n".join(lines)

"""Zero-dependency structured telemetry: spans, counters, gauges, histograms.

The subsystem is built around a tiny :class:`Recorder` protocol with exactly
two implementations:

* :class:`NullRecorder` -- the default.  Every operation is a no-op on a
  shared singleton; ``span()`` returns one preallocated context manager, so
  an instrumented call site costs a method call and nothing else.  Hot loops
  (the per-instruction simulator core) are *never* instrumented -- spans wrap
  work at job/scenario/chunk granularity only.
* :class:`JsonlRecorder` -- buffers events in memory and serializes them as
  JSON Lines.  Spans are hierarchical (a thread-local stack supplies parent
  ids), carry wall-clock start timestamps (``time.time``, comparable across
  processes) and monotonic durations (``time.perf_counter``), and may attach
  arbitrary JSON-serializable attributes.

Cross-process story: pool workers build their own ``JsonlRecorder`` with a
pid-derived ``origin`` (span ids are ``"<origin>-<n>"``, so ids never collide
across processes), buffer events during ``execute_job``, and ship them back
pickled with the result.  The parent calls :meth:`JsonlRecorder.merge` to
re-parent the worker's root spans under the submitting job span, producing a
single trace file that covers the whole pool.

The active recorder is process-global (``get_recorder`` /
``use_recorder``); ``REPRO_OBS`` (:data:`OBS_ENV_VAR`) names a trace output
path so forked pool workers -- and nested CLI invocations -- inherit the
"recording is on" decision the same way ``REPRO_BACKEND`` selects a backend.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Protocol, runtime_checkable

#: Environment variable naming a trace output path (the CLI exports it so
#: pool workers and child processes know recording is enabled).
OBS_ENV_VAR = "REPRO_OBS"

#: Environment variable selecting the trace output format (``jsonl``/``chrome``).
OBS_FORMAT_ENV_VAR = "REPRO_OBS_FORMAT"


class _NullSpan:
    """Reusable no-op span; one instance serves every disabled call site."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    @property
    def span_id(self) -> None:
        return None


_NULL_SPAN = _NullSpan()


@runtime_checkable
class Recorder(Protocol):
    """What instrumented code may assume about a recorder."""

    enabled: bool

    def span(self, name: str, **attrs: Any) -> Any: ...

    def count(self, name: str, value: int = 1) -> None: ...

    def gauge(self, name: str, value: float) -> None: ...

    def observe(self, name: str, value: float) -> None: ...


class NullRecorder:
    """The disabled recorder: every operation is a cheap no-op."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None


NULL_RECORDER = NullRecorder()


class Span:
    """A live span handle produced by :meth:`JsonlRecorder.span`."""

    __slots__ = ("_recorder", "name", "span_id", "parent_id", "attrs", "_t0", "_ts")

    def __init__(self, recorder: "JsonlRecorder", name: str, attrs: Dict[str, Any]):
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self._t0 = 0.0
        self._ts = 0.0

    def __enter__(self) -> "Span":
        self.span_id, self.parent_id = self._recorder._enter_span()
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        dur = time.perf_counter() - self._t0
        self._recorder._exit_span(self, self._ts, dur)
        return False

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)
        return self


#: Per-process recorder sequence: a pool worker builds one recorder per job,
#: so the pid alone is not enough to keep span ids distinct within a worker.
_ORIGIN_SEQ = itertools.count()


def _default_origin() -> str:
    return f"p{os.getpid()}.{next(_ORIGIN_SEQ)}"


class JsonlRecorder:
    """Buffering recorder that serializes spans and metrics as JSON Lines.

    ``origin`` prefixes every span id; the default is pid-derived (plus a
    per-process sequence number) so worker processes produce globally-unique
    ids without coordination.  Tests pass a fixed origin for determinism.
    """

    enabled = True

    def __init__(self, origin: Optional[str] = None):
        self.origin = origin if origin is not None else _default_origin()
        self.events: List[Dict[str, Any]] = []
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}
        self._next_id = 0
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # -- span plumbing ----------------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _enter_span(self) -> tuple:
        with self._lock:
            span_id = f"{self.origin}-{self._next_id}"
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        stack.append(span_id)
        return span_id, parent_id

    def _exit_span(self, span: Span, ts: float, dur: float) -> None:
        stack = self._stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        event = {
            "type": "span",
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "ts": ts,
            "dur": dur,
            "pid": os.getpid(),
        }
        if span.attrs:
            event["attrs"] = span.attrs
        with self._lock:
            self.events.append(event)

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a hierarchical span; use as a context manager."""
        return Span(self, name, attrs)

    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def emit_span(
        self,
        name: str,
        ts: float,
        dur: float,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> str:
        """Record a span with explicit timing (e.g. reconstructed queue-wait)."""
        with self._lock:
            span_id = f"{self.origin}-{self._next_id}"
            self._next_id += 1
            event: Dict[str, Any] = {
                "type": "span",
                "name": name,
                "span_id": span_id,
                "parent_id": parent_id,
                "ts": ts,
                "dur": dur,
                "pid": os.getpid(),
            }
            if attrs:
                event["attrs"] = attrs
            self.events.append(event)
        return span_id

    # -- metrics registry -------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the named monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of the named gauge."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Append one observation to the named histogram."""
        with self._lock:
            self._histograms.setdefault(name, []).append(value)

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Current registry contents (counters/gauges/histograms by name)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: list(v) for k, v in self._histograms.items()},
            }

    def _flush_metrics(self) -> None:
        """Convert registry contents into metric events and clear them."""
        pid = os.getpid()
        with self._lock:
            for name in sorted(self._counters):
                self.events.append(
                    {"type": "counter", "name": name, "value": self._counters[name], "pid": pid}
                )
            for name in sorted(self._gauges):
                self.events.append(
                    {"type": "gauge", "name": name, "value": self._gauges[name], "pid": pid}
                )
            for name in sorted(self._histograms):
                self.events.append(
                    {"type": "histogram", "name": name, "values": self._histograms[name], "pid": pid}
                )
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- shipping / merging / serialization -------------------------------

    def drain(self) -> List[Dict[str, Any]]:
        """Flush metrics and return (clearing) the buffered events.

        Workers call this to ship their telemetry back with the job result.
        """
        self._flush_metrics()
        with self._lock:
            events, self.events = self.events, []
        return events

    def merge(self, events: List[Dict[str, Any]], parent_id: Optional[str] = None) -> None:
        """Absorb events from another recorder (typically a pool worker).

        Root spans (``parent_id is None``) are re-parented under
        ``parent_id`` so the combined trace keeps a consistent hierarchy.
        Span ids are origin-prefixed, so no rewriting is needed for
        uniqueness.
        """
        merged = []
        for event in events:
            if parent_id is not None and event.get("type") == "span" and event.get("parent_id") is None:
                event = dict(event)
                event["parent_id"] = parent_id
            merged.append(event)
        with self._lock:
            self.events.extend(merged)

    def write(self, path: str | Path) -> Path:
        """Flush metrics and write all buffered events as JSON Lines."""
        self._flush_metrics()
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            with open(path, "w", encoding="utf-8") as handle:
                for event in self.events:
                    handle.write(json.dumps(event, sort_keys=True) + "\n")
        return path


def read_trace(path: str | Path) -> List[Dict[str, Any]]:
    """Load a JSONL trace file back into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# -- active-recorder plumbing ---------------------------------------------

_ACTIVE: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """The process-global active recorder (the NullRecorder by default)."""
    return _ACTIVE


def set_recorder(recorder: Optional[Recorder]) -> None:
    """Install ``recorder`` as the active recorder (``None`` -> disabled)."""
    global _ACTIVE
    _ACTIVE = recorder if recorder is not None else NULL_RECORDER


@contextmanager
def use_recorder(recorder: Optional[Recorder]) -> Iterator[Recorder]:
    """Scoped :func:`set_recorder`; restores the previous recorder on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder if recorder is not None else NULL_RECORDER
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def trace_path_from_env() -> Optional[str]:
    """The trace output path named by ``REPRO_OBS``, if any."""
    value = os.environ.get(OBS_ENV_VAR, "").strip()
    return value or None

"""Chrome trace-event export for JSONL traces.

Converts the event stream produced by
:class:`repro.obs.recorder.JsonlRecorder` into the Chrome trace-event JSON
format (the ``{"traceEvents": [...]}`` object form) so a recording can be
loaded directly into ``about://tracing`` or https://ui.perfetto.dev.

Mapping:

* spans -> complete events (``"ph": "X"``) with microsecond ``ts``/``dur``
  relative to the earliest span in the trace, ``pid`` preserved, the span's
  origin used as ``tid`` so each worker gets its own track, and the span's
  attributes (plus ids) under ``args``;
* counters -> counter events (``"ph": "C"``) pinned after the last span so
  final totals show as a bar per counter name;
* gauges/histograms -> metadata is folded into the counter track where a
  scalar exists; raw histogram observations are omitted (Perfetto has no
  native histogram track), but remain available in the JSONL file.

The export is deterministic: given the same event list, the output is
byte-identical (events keep input order, keys are sorted on serialization).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List


def _origin(span_id: Any) -> str:
    if isinstance(span_id, str) and "-" in span_id:
        return span_id.rsplit("-", 1)[0]
    return "main"


def to_chrome_events(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Convert recorder events to a Chrome ``traceEvents`` list."""
    span_events = [e for e in events if e.get("type") == "span"]
    t0 = min((e["ts"] for e in span_events), default=0.0)
    t_end = max((e["ts"] + e.get("dur", 0.0) for e in span_events), default=0.0)
    out: List[Dict[str, Any]] = []
    for event in span_events:
        args = dict(event.get("attrs") or {})
        args["span_id"] = event.get("span_id")
        if event.get("parent_id") is not None:
            args["parent_id"] = event["parent_id"]
        name = event["name"]
        out.append(
            {
                "ph": "X",
                "name": name,
                "cat": name.split(".", 1)[0],
                "ts": round((event["ts"] - t0) * 1e6, 3),
                "dur": round(event.get("dur", 0.0) * 1e6, 3),
                "pid": event.get("pid", 0),
                "tid": _origin(event.get("span_id")),
                "args": args,
            }
        )
    counter_ts = round((t_end - t0) * 1e6, 3)
    for event in events:
        if event.get("type") == "counter":
            out.append(
                {
                    "ph": "C",
                    "name": event["name"],
                    "cat": "metric",
                    "ts": counter_ts,
                    "pid": event.get("pid", 0),
                    "tid": "metrics",
                    "args": {"value": event.get("value", 0)},
                }
            )
    return out


def export_chrome(events: List[Dict[str, Any]], path: str | Path) -> Path:
    """Write ``events`` to ``path`` as a Chrome trace-event JSON object."""
    path = Path(path)
    document = {
        "displayTimeUnit": "ms",
        "traceEvents": to_chrome_events(events),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, indent=None, separators=(",", ":"))
        handle.write("\n")
    return path

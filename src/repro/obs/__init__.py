"""Dependency-free structured telemetry (spans, metrics, trace tooling).

See :mod:`repro.obs.recorder` for the core API, :mod:`repro.obs.chrome` for
the Chrome trace-event exporter and :mod:`repro.obs.report` for the phase
aggregation behind ``btbx-repro obs report``.
"""

from repro.obs.recorder import (
    NULL_RECORDER,
    OBS_ENV_VAR,
    OBS_FORMAT_ENV_VAR,
    JsonlRecorder,
    NullRecorder,
    Recorder,
    Span,
    get_recorder,
    read_trace,
    set_recorder,
    trace_path_from_env,
    use_recorder,
)

__all__ = [
    "NULL_RECORDER",
    "OBS_ENV_VAR",
    "OBS_FORMAT_ENV_VAR",
    "JsonlRecorder",
    "NullRecorder",
    "Recorder",
    "Span",
    "get_recorder",
    "read_trace",
    "set_recorder",
    "trace_path_from_env",
    "use_recorder",
]

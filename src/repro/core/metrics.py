"""Result container and derived metrics for one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.stats import Stats


@dataclass
class SimulationResult:
    """Outcome of simulating one trace on one machine configuration."""

    workload: str
    btb_style: str
    btb_storage_kib: float
    fdip_enabled: bool
    instructions: int
    cycles: float
    base_cycles: float
    flush_cycles: float
    resteer_cycles: float
    icache_stall_cycles: float
    btb_extra_cycles: float
    btb_misses_taken: int
    decode_resteers: int
    execute_flushes: int
    direction_mispredictions: int
    target_mispredictions: int
    taken_branches: int
    branches: int
    l1i_accesses: int
    l1i_misses: int
    l1i_misses_covered: int
    #: Demand L2 traffic of the instruction stream: every L1-I demand miss
    #: probes the L2 (``l2_accesses``); ``l2_misses`` counts the ones the L2
    #: could not supply (filled from the LLC or memory).
    l2_accesses: int = 0
    l2_misses: int = 0
    stats: Stats = field(repr=False, default_factory=Stats)

    # -- derived metrics -----------------------------------------------------

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def btb_mpki(self) -> float:
        """BTB misses (taken branches only) per kilo-instruction (Figure 9)."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.btb_misses_taken / self.instructions

    @property
    def l1i_mpki(self) -> float:
        """L1-I demand misses per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l1i_misses / self.instructions

    @property
    def l2_mpki(self) -> float:
        """Instruction-side L2 demand misses per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l2_misses / self.instructions

    @property
    def flush_rate_pki(self) -> float:
        """Execute-stage flushes per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.execute_flushes / self.instructions

    @property
    def direction_mpki(self) -> float:
        """Direction mispredictions per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.direction_mispredictions / self.instructions

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """IPC ratio of this run over ``baseline`` (same workload expected)."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def to_dict(self) -> Dict[str, float]:
        """Flatten the headline metrics for reporting."""
        return {
            "workload": self.workload,
            "btb_style": self.btb_style,
            "btb_storage_kib": self.btb_storage_kib,
            "fdip": self.fdip_enabled,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "btb_mpki": self.btb_mpki,
            "l1i_mpki": self.l1i_mpki,
            "l2_mpki": self.l2_mpki,
            "flush_pki": self.flush_rate_pki,
            "direction_mpki": self.direction_mpki,
        }


@dataclass
class ScenarioResult:
    """Outcome of simulating a multi-tenant scenario.

    ``aggregate`` covers the whole interleaved stream; ``per_tenant`` breaks
    the same counters down by tenant so consolidation effects (who pays for
    the context switches?) are visible.  Tenant cycle counts attribute each
    penalty to the tenant whose instruction incurred it, so the per-tenant
    cycles sum exactly to the aggregate.
    """

    scenario: str
    asid_mode: str
    context_switches: int
    aggregate: SimulationResult
    per_tenant: Dict[str, SimulationResult] = field(default_factory=dict)
    #: Sets each tenant received under ``ASIDMode.PARTITIONED`` (tenant name ->
    #: set count, in scheduling order); ``None`` when capacity was shared.
    partition_sets: Dict[str, int] | None = None
    #: Per-tenant capacity of each partitioned *secondary* structure (PDede's
    #: Page-/Region-BTB, R-BTB's Page-BTB, BTB-X's companion): structure name
    #: -> tenant name -> sets/entries.  ``None`` when nothing secondary was
    #: partitioned (shared modes, or every structure fell back to sharing).
    secondary_partition_sets: Dict[str, Dict[str, int]] | None = None
    #: Duplication accounting per BTB structure: structure name ->
    #: ``{"distinct", "tag_distinct", "duplicated"}`` allocations (see
    #: :meth:`repro.btb.base.BTBBase.duplication_counts`).  The ``duplicated``
    #: gap is the storage ASID tagging spends on branches/pages that tenants
    #: share.  ``None`` for results that predate the counters (old caches).
    duplication: Dict[str, Dict[str, int]] | None = None
    #: Context-switch policy of the cache hierarchy for this run: one of
    #: ``"flush"``/``"tagged"``/``"partitioned"``, or ``None`` for the legacy
    #: ASID-oblivious shared hierarchy (and for results predating the field).
    cache_mode: str | None = None
    #: Per-tenant set counts of every partitioned cache level (level name ->
    #: tenant name -> sets); ``None`` unless the hierarchy ran partitioned.
    cache_partition_sets: Dict[str, Dict[str, int]] | None = None
    #: The BTB's raw access counters over the whole run (reads/writes/searches
    #: per structure plus event counters), the input of the Table V energy
    #: model; ``None`` for results that predate the field.
    btb_access_counts: Dict[str, float] | None = None
    #: Per-scenario Table V counterpart: the BTB energy model evaluated on
    #: this run's access counters -- ``{"design", "total_energy_uj",
    #: "lookup_latency_ns", "structures": {name: {...}}}``.  ``None`` when no
    #: energy model exists for the organization (ideal) or the result
    #: predates the field.
    energy: Dict[str, object] | None = None

    @property
    def tenant_names(self) -> list[str]:
        """Tenants in scheduling order."""
        return list(self.per_tenant)

    def to_dict(self) -> Dict[str, object]:
        """Flatten for reporting/serialization (headline metrics only).

        Every scenario-level field of this class must appear here: the JSON
        and CSV emitters (and the engine's cache payload) all feed off this
        dict, so an omitted field silently vanishes from every report.  A
        schema regression test (``test_to_dict_covers_every_field``) enforces
        the invariant.
        """
        return {
            "scenario": self.scenario,
            "asid_mode": self.asid_mode,
            "cache_mode": self.cache_mode,
            "context_switches": self.context_switches,
            "partition_sets": self.partition_sets,
            "secondary_partition_sets": self.secondary_partition_sets,
            "cache_partition_sets": self.cache_partition_sets,
            "duplication": self.duplication,
            "btb_access_counts": self.btb_access_counts,
            "energy": self.energy,
            "aggregate": self.aggregate.to_dict(),
            "per_tenant": {name: result.to_dict() for name, result in self.per_tenant.items()},
        }

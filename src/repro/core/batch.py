"""Batched (numpy) execution engine: the fast twin of the scalar simulator.

The scalar loops in :mod:`repro.core.simulator` process one instruction at a
time and spend most of their cycles recomputing per-PC quantities -- cache
block boundaries, BTB set indices and partial tags -- that are pure functions
of the instruction stream.  This engine processes one *scheduling chunk*
(a contiguous trace slice with a constant ASID/tenant, see
:meth:`repro.scenarios.compose.TraceComposer.stream_batches`) per step and
vectorizes everything stream-pure over the chunk's structure-of-arrays view:

* cache-block boundaries (``new_block``) via one shifted comparison;
* BTB set indices/partial tags via :func:`repro.btb.base.batch_locate`,
  hoisted per chunk because ASID color and partition slice are constant
  within a scheduling turn;
* a static *guaranteed-miss* filter (:meth:`repro.btb.base.BTBBase.batch_plan`)
  marking PCs that provably miss the BTB for the whole chunk.

Instructions that are non-branches and guaranteed BTB misses have **no**
observable effect beyond bumping read/miss counters, enqueueing their PC in
the FTQ, demand-fetching where they cross a cache-block boundary and retiring
-- so runs of them are compensated in bulk (``note_skipped_miss_lookups``,
FTQ ``extend`` one block segment at a time, ``retire_instructions(count)``)
without touching the BPU at all.  Everything
else goes through the exact scalar machinery (``process_resolved`` with the
chunk-vectorized set index/tag, or plain ``process`` when the organization
has no batch plan), so the engine is bit-exact against the oracle loops --
enforced cell-for-cell by the differential backend suite.

The one tolerated divergence: demand fetches of a chunk are pre-executed
front-to-back (:meth:`repro.memory.hierarchy.MemoryHierarchy.fetch_batch`),
which can make FDIP's redundant-prefetch *statistic* (``prefetches_issued``)
observe slightly warmer L1-I state.  No serialized result reads it; every
reported metric is unaffected because the hierarchy is mutated only by those
same fetches, in the same order.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.errors import SimulationError
from repro.common.stats import Stats
from repro.core.metrics import ScenarioResult, SimulationResult
from repro.core.timing import TimingModel
from repro.frontend.bpu import PredictionOutcome
from repro.scenarios.compose import ScheduledChunk
from repro.traces.batch import np, trace_arrays
from repro.traces.trace import Trace

_U64_MASK = 0xFFFFFFFFFFFFFFFF


def run_batched(
    simulator,
    trace: Trace,
    warmup_instructions: int = 0,
    max_instructions: int | None = None,
) -> SimulationResult:
    """Batched twin of :meth:`~repro.core.simulator.FrontEndSimulator.run`.

    Bit-exact against the scalar loop on every reported metric; the
    measurement cap is applied up front (the scalar loop stops at exactly
    ``warmup + max_instructions`` stream positions).
    """
    from repro.core.simulator import _TenantAccount

    engine = _BatchEngine(simulator, warmup_instructions, scenario=False)
    engine.current_account = account = _TenantAccount(TimingModel(simulator.machine.core))
    total = len(trace)
    if max_instructions is not None:
        total = min(total, warmup_instructions + max_instructions)
    engine.process_chunk(
        ScheduledChunk(asid=0, tenant=trace.name, trace=trace, start=0, stop=total)
    )
    engine.drain_mispredictions()
    engine.emit_metrics()
    return simulator._account_result(trace.name, account, simulator.stats)


def run_scenario_batched(
    simulator,
    chunks: Iterable[ScheduledChunk],
    warmup_instructions: int = 0,
    scenario_name: str = "scenario",
) -> ScenarioResult:
    """Batched twin of :meth:`~repro.core.simulator.FrontEndSimulator.run_scenario`.

    Consumes the chunked schedule of
    :meth:`~repro.scenarios.compose.TraceComposer.stream_batches`, which
    covers the identical ``(asid, tenant, instruction)`` sequence the scalar
    loop consumes via :meth:`~repro.scenarios.compose.TraceComposer.stream`.
    """
    engine = _BatchEngine(simulator, warmup_instructions, scenario=True)
    for chunk in chunks:
        engine.process_chunk(chunk)
    engine.drain_mispredictions()
    engine.emit_metrics()
    per_tenant = {
        name: simulator._account_result(name, engine.accounts[name], Stats())
        for name in engine.tenant_order
    }
    aggregate = simulator._aggregate_result(scenario_name, per_tenant)
    cache_asid_mode = simulator.machine.cache_asid_mode
    return ScenarioResult(
        scenario=scenario_name,
        asid_mode=simulator.machine.asid_mode.value,
        context_switches=engine.context_switches,
        aggregate=aggregate,
        per_tenant=per_tenant,
        cache_mode=None if cache_asid_mode is None else cache_asid_mode.value,
    )


class _BatchEngine:
    """Mutable state of one batched simulation run.

    Mirrors the scalar loops of :class:`~repro.core.simulator.FrontEndSimulator`
    step for step: the warmup flip, ASID switch handling, per-instruction
    prediction/fetch/FDIP/timing order and every measured counter follow the
    oracle exactly -- only the *schedule* of equivalent work differs (bulk
    compensation of guaranteed-miss runs, chunk-ahead demand fetches).
    """

    def __init__(self, simulator, warmup_instructions: int, scenario: bool) -> None:
        if warmup_instructions < 0:
            raise SimulationError("warmup length cannot be negative")
        self.sim = simulator
        self.bpu = simulator.bpu
        self.btb = simulator.btb
        self.ftq = simulator.ftq
        self.fdip = simulator.fdip
        self.hierarchy = simulator.hierarchy
        self.core = simulator.machine.core
        line_size = self.hierarchy.line_size()
        self.line_mask = ~(line_size - 1)
        self._line_mask_u64 = np.uint64(~(line_size - 1) & _U64_MASK)
        self.warmup = warmup_instructions
        self.scenario = scenario
        self.position = 0
        self.measuring = warmup_instructions == 0
        self.previous_block: int | None = None
        self.dir_before = self.bpu.stats.get("direction_mispredictions")
        self.tgt_before = self.bpu.stats.get("target_mispredictions")
        # Scenario bookkeeping (unused on the single-trace path).
        self.current_asid: int | None = None
        self.current_tenant: str | None = None
        self.current_account = None
        self.context_switches = 0
        self.accounts: dict[str, object] = {}
        self.tenant_order: list[str] = []
        # Vectorized-vs-scalar-fallback telemetry: plain int adds in the hot
        # path, emitted once per run via emit_metrics() so recording is free.
        self.chunks_planned = 0
        self.chunks_scalar = 0
        self.instructions_fast = 0
        self.instructions_slow = 0

    def emit_metrics(self) -> None:
        """Publish the per-chunk fast/slow split to the active recorder."""
        from repro.obs import get_recorder

        recorder = get_recorder()
        if not recorder.enabled:
            return
        recorder.count("batch.chunks_planned", self.chunks_planned)
        recorder.count("batch.chunks_scalar", self.chunks_scalar)
        recorder.count("batch.instructions_fast", self.instructions_fast)
        recorder.count("batch.instructions_slow", self.instructions_slow)

    # -- boundaries --------------------------------------------------------

    def _flip_to_measuring(self) -> None:
        """The warmup/measurement boundary, identical to the scalar loops."""
        self.measuring = True
        self.previous_block = None
        self.btb.reset_stats()
        self.dir_before = self.bpu.stats.get("direction_mispredictions")
        self.tgt_before = self.bpu.stats.get("target_mispredictions")

    def drain_mispredictions(self) -> None:
        """Attribute BPU misprediction deltas to the current account."""
        now_dir = self.bpu.stats.get("direction_mispredictions")
        now_tgt = self.bpu.stats.get("target_mispredictions")
        account = self.current_account
        if account is not None:
            account.direction_mispredictions += int(now_dir - self.dir_before)
            account.target_mispredictions += int(now_tgt - self.tgt_before)
        self.dir_before, self.tgt_before = now_dir, now_tgt

    # -- chunk processing --------------------------------------------------

    def process_chunk(self, chunk: ScheduledChunk) -> None:
        """Run one scheduling chunk, splitting at the warmup boundary.

        ``measuring`` must be constant over a processed piece (the vectorized
        walk accounts a whole piece under one flag), so a chunk straddling the
        boundary is cut in two; the scalar loops flip at exactly the same
        stream position.
        """
        n = len(chunk)
        if n <= 0:
            return
        if not self.measuring and self.position < self.warmup < self.position + n:
            head = self.warmup - self.position
            self._process_piece(chunk, chunk.start, chunk.start + head)
            self._process_piece(chunk, chunk.start + head, chunk.stop)
        else:
            self._process_piece(chunk, chunk.start, chunk.stop)

    def _process_piece(self, chunk: ScheduledChunk, start: int, stop: int) -> None:
        n = stop - start
        if n <= 0:
            return
        if not self.measuring and self.position >= self.warmup:
            self._flip_to_measuring()
        if self.scenario:
            self._enter_chunk_context(chunk)

        arrays = trace_arrays(chunk.trace)
        pcs = arrays.pc[start:stop]
        is_branch = arrays.is_branch[start:stop]
        blocks = pcs & self._line_mask_u64
        new_block = np.empty(n, dtype=bool)
        if n > 1:
            new_block[1:] = blocks[1:] != blocks[:-1]
        new_block[0] = self.previous_block is None or int(blocks[0]) != self.previous_block

        taken_branch_pcs = np.unique(pcs[is_branch & arrays.taken[start:stop]])
        plan = self.btb.batch_plan(pcs, taken_branch_pcs)
        if plan is None:
            self.chunks_scalar += 1
            self.instructions_slow += n
            self._run_scalar(chunk.trace, start, stop, new_block)
        else:
            self.chunks_planned += 1
            self._run_planned(plan, chunk.trace, start, stop, pcs, new_block, is_branch)
        self.previous_block = int(blocks[n - 1])
        self.position += n

    def _enter_chunk_context(self, chunk: ScheduledChunk) -> None:
        """ASID/tenant switch handling, mirroring the run_scenario loop."""
        asid = chunk.asid
        if asid != self.current_asid:
            if self.current_asid is None:
                # Boot: the machine starts owned by the first ASID -- no
                # switch penalty, but tagged structures adopt its color.
                self.bpu.context_switch(asid)
                self.hierarchy.context_switch(asid)
            else:
                if self.measuring:
                    self.context_switches += 1
                    if self.current_account is not None:
                        self.drain_mispredictions()
                self.bpu.context_switch(asid)
                self.hierarchy.context_switch(asid)
                self.fdip.on_stream_break()
                self.previous_block = None
            self.current_asid = asid
            self.current_tenant = None
        if chunk.tenant != self.current_tenant:
            self.current_tenant = chunk.tenant
            account = self.accounts.get(chunk.tenant)
            if account is None:
                from repro.core.simulator import _TenantAccount

                account = self.accounts[chunk.tenant] = _TenantAccount(TimingModel(self.core))
                self.tenant_order.append(chunk.tenant)
            self.current_account = account

    # -- instruction walks -------------------------------------------------

    def _run_scalar(self, trace: Trace, start: int, stop: int, new_block) -> None:
        """Exact scalar fallback for organizations without a batch plan."""
        instructions = trace.instructions
        bpu = self.bpu
        fdip = self.fdip
        fetch = self.hierarchy.fetch
        observe = fdip.observe_predicted_address
        measuring = self.measuring
        account = self.current_account
        new_block_list = new_block.tolist()
        for i in range(stop - start):
            instruction = instructions[start + i]
            prediction = bpu.process(instruction)
            is_new_block = new_block_list[i]
            stall_cycles = 0.0
            miss = False
            covered = False
            beyond_l2 = False
            if is_new_block:
                result = fetch(instruction.pc)
                miss = not result.l1i_hit
                if miss:
                    beyond_l2 = result.level != "L2"
                    coverage = fdip.cover_demand_miss(result.latency)
                    stall_cycles = coverage.residual_latency
                    covered = coverage.coverage == "full"
            observe(instruction.pc)
            if prediction.stream_break:
                fdip.on_stream_break()
            if measuring:
                self._account_instruction(
                    account, instruction, prediction,
                    is_new_block, miss, covered, beyond_l2, stall_cycles,
                )

    def _run_planned(self, plan, trace: Trace, start: int, stop: int, pcs, new_block, is_branch) -> None:
        """The planned walk: bulk-compensated fast runs, pre-located slow path."""
        n = stop - start
        fast = plan.guaranteed_miss & ~is_branch
        pcs_list = pcs.tolist()
        new_block_list = new_block.tolist()
        nb_positions = np.flatnonzero(new_block).tolist()
        fetch_results = self.hierarchy.fetch_batch([pcs_list[i] for i in nb_positions])
        nb_ptr = 0
        instructions = trace.instructions
        bpu = self.bpu
        fdip = self.fdip
        observe = fdip.observe_predicted_address
        measuring = self.measuring
        account = self.current_account
        plan_lookup = plan.lookup
        process_resolved = bpu.process_resolved
        slow_positions = np.flatnonzero(~fast).tolist()

        # Bulk compensation for every fast instruction of the piece, hoisted
        # out of the per-run walk: the skipped-probe counters and the retired
        # base throughput are plain commutative sums, only read (or reset) at
        # piece boundaries, so one call each covers all runs.
        fast_total = n - len(slow_positions)
        self.instructions_fast += fast_total
        self.instructions_slow += len(slow_positions)
        if fast_total:
            self.btb.note_skipped_miss_lookups(fast_total)
            if measuring:
                account.timing.retire_instructions(fast_total)

        cursor = 0
        for i in slow_positions:
            if i > cursor:
                nb_ptr = self._fast_run(
                    pcs_list, cursor, i, nb_positions, nb_ptr, fetch_results, measuring, account
                )
            instruction = instructions[start + i]
            prediction = process_resolved(instruction, plan_lookup(i, instruction.pc))
            is_new_block = new_block_list[i]
            stall_cycles = 0.0
            miss = False
            covered = False
            beyond_l2 = False
            if is_new_block:
                result = fetch_results[nb_ptr]
                nb_ptr += 1
                miss = not result.l1i_hit
                if miss:
                    beyond_l2 = result.level != "L2"
                    coverage = fdip.cover_demand_miss(result.latency)
                    stall_cycles = coverage.residual_latency
                    covered = coverage.coverage == "full"
            observe(instruction.pc)
            if prediction.stream_break:
                fdip.on_stream_break()
            if measuring:
                self._account_instruction(
                    account, instruction, prediction,
                    is_new_block, miss, covered, beyond_l2, stall_cycles,
                )
            cursor = i + 1
        if cursor < n:
            self._fast_run(
                pcs_list, cursor, n, nb_positions, nb_ptr, fetch_results, measuring, account
            )

    def _fast_run(
        self, pcs_list, i0: int, i1: int, nb_positions, nb_ptr: int,
        fetch_results, measuring: bool, account,
    ) -> int:
        """Bulk-compensate a run of guaranteed-miss non-branch instructions.

        Each such instruction's full scalar footprint is: one proven-miss BTB
        probe (read + miss counters, no LRU movement), its PC entering the
        FTQ, the FDIP block-dedup check (at most once per cache block -- runs
        are walked one block segment at a time), a demand fetch where the run
        enters a new block and, when measuring, one retired instruction of
        base throughput plus the fetch's L1-I accounting.  Nothing else: no
        predictor/RAS/BTB training (non-branch), no branch penalties (a BTB
        miss on a non-branch is the correct prediction).

        ``nb_positions``/``fetch_results`` are the chunk's new-block positions
        and their pre-executed fetches; returns the advanced ``nb_ptr``.  Each
        block head's miss coverage is computed *before* its PC enters the FTQ,
        exactly like the scalar loops.  (The skipped-probe counters and the
        run's retired instructions are compensated once per piece by
        :meth:`_run_planned`, not here.)
        """
        timing = account.timing if measuring else None
        fdip = self.fdip
        observe_run = fdip.observe_predicted_block_run
        total_blocks = len(nb_positions)
        segment = i0
        while nb_ptr < total_blocks:
            head = nb_positions[nb_ptr]
            if head >= i1:
                break
            if head > segment:
                observe_run(pcs_list[segment:head])
            result = fetch_results[nb_ptr]
            nb_ptr += 1
            miss = not result.l1i_hit
            stall_cycles = 0.0
            covered = False
            if miss:
                coverage = fdip.cover_demand_miss(result.latency)
                stall_cycles = coverage.residual_latency
                covered = coverage.coverage == "full"
            if timing is not None:
                timing.icache_stall(stall_cycles)
                account.l1i_accesses += 1
                if miss:
                    account.l1i_misses += 1
                    account.l2_accesses += 1
                    if result.level != "L2":
                        account.l2_misses += 1
                    if covered:
                        account.l1i_misses_covered += 1
            segment = head
        observe_run(pcs_list[segment:i1])
        return nb_ptr

    def _account_instruction(
        self, account, instruction, prediction,
        new_block: bool, miss: bool, covered: bool, beyond_l2: bool, stall_cycles: float,
    ) -> None:
        """Measured-phase accounting, identical to the scalar loops' blocks."""
        timing = account.timing
        timing.retire_instructions(1)
        timing.icache_stall(stall_cycles)
        if prediction.extra_btb_cycles and self.ftq.occupancy < 2 * self.core.fetch_width:
            timing.btb_extra_cycle(prediction.extra_btb_cycles)
        if prediction.outcome is PredictionOutcome.EXECUTE_FLUSH:
            timing.execute_flush()
            account.execute_flushes += 1
        elif prediction.outcome is PredictionOutcome.DECODE_RESTEER:
            timing.decode_resteer()
            account.decode_resteers += 1
        if prediction.btb_miss_taken_branch:
            account.btb_misses_taken += 1
        if instruction.is_branch:
            account.branches += 1
            if instruction.taken:
                account.taken_branches += 1
        if new_block:
            account.l1i_accesses += 1
            if miss:
                account.l1i_misses += 1
                account.l2_accesses += 1
                if beyond_l2:
                    account.l2_misses += 1
                if covered:
                    account.l1i_misses_covered += 1

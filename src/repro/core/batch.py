"""Batched (numpy) execution engine: the fast twin of the scalar simulator.

The scalar loops in :mod:`repro.core.simulator` process one instruction at a
time and spend most of their cycles recomputing per-PC quantities -- cache
block boundaries, BTB set indices and partial tags -- that are pure functions
of the instruction stream.  This engine processes one *scheduling chunk*
(a contiguous trace slice with a constant ASID/tenant, see
:meth:`repro.scenarios.compose.TraceComposer.stream_batches`) per step and
vectorizes everything stream-pure over the chunk's structure-of-arrays view:

* cache-block boundaries (``new_block``) via one shifted comparison;
* BTB set indices/partial tags via :func:`repro.btb.base.batch_locate`,
  hoisted per chunk because ASID color and partition slice are constant
  within a scheduling turn;
* a static *guaranteed-miss* filter (:meth:`repro.btb.base.BTBBase.batch_plan`)
  marking PCs that provably miss the BTB for the whole chunk.

Instructions that are non-branches and guaranteed BTB misses have **no**
observable effect beyond bumping read/miss counters, enqueueing their PC in
the FTQ, demand-fetching where they cross a cache-block boundary and retiring
-- so runs of them are compensated in bulk (``note_skipped_miss_lookups``,
FTQ ``extend`` one block segment at a time, ``retire_instructions(count)``)
without touching the BPU at all.  Everything
else goes through the exact scalar machinery (``process_resolved`` with the
chunk-vectorized set index/tag, or plain ``process`` when the organization
has no batch plan), so the engine is bit-exact against the oracle loops --
enforced cell-for-cell by the differential backend suite.

The one tolerated divergence: demand fetches of a chunk are pre-executed
front-to-back (:meth:`repro.memory.hierarchy.MemoryHierarchy.fetch_batch`),
which can make FDIP's redundant-prefetch *statistic* (``prefetches_issued``)
observe slightly warmer L1-I state.  No serialized result reads it; every
reported metric is unaffected because the hierarchy is mutated only by those
same fetches, in the same order.
"""

from __future__ import annotations

from itertools import repeat
from typing import Iterable

from repro.common.errors import SimulationError
from repro.common.stats import Stats
from repro.core.metrics import ScenarioResult, SimulationResult
from repro.core.timing import TimingModel
from repro.frontend.bpu import PredictionOutcome
from repro.isa.branch import BranchType
from repro.predictor.batch import plan_commits
from repro.scenarios.compose import ScheduledChunk
from repro.traces.batch import np, trace_arrays
from repro.traces.trace import Trace

_U64_MASK = 0xFFFFFFFFFFFFFFFF

#: ``TraceArrays.branch_type`` code for conditional branches (enum order).
_CONDITIONAL_CODE = tuple(BranchType).index(BranchType.CONDITIONAL)


def run_batched(
    simulator,
    trace: Trace,
    warmup_instructions: int = 0,
    max_instructions: int | None = None,
) -> SimulationResult:
    """Batched twin of :meth:`~repro.core.simulator.FrontEndSimulator.run`.

    Bit-exact against the scalar loop on every reported metric; the
    measurement cap is applied up front (the scalar loop stops at exactly
    ``warmup + max_instructions`` stream positions).
    """
    from repro.core.simulator import _TenantAccount

    engine = _BatchEngine(simulator, warmup_instructions, scenario=False)
    engine.current_account = account = _TenantAccount(TimingModel(simulator.machine.core))
    total = len(trace)
    if max_instructions is not None:
        total = min(total, warmup_instructions + max_instructions)
    engine.process_chunk(
        ScheduledChunk(asid=0, tenant=trace.name, trace=trace, start=0, stop=total)
    )
    engine.drain_mispredictions()
    engine.emit_metrics()
    return simulator._account_result(trace.name, account, simulator.stats)


def run_scenario_batched(
    simulator,
    chunks: Iterable[ScheduledChunk],
    warmup_instructions: int = 0,
    scenario_name: str = "scenario",
) -> ScenarioResult:
    """Batched twin of :meth:`~repro.core.simulator.FrontEndSimulator.run_scenario`.

    Consumes the chunked schedule of
    :meth:`~repro.scenarios.compose.TraceComposer.stream_batches`, which
    covers the identical ``(asid, tenant, instruction)`` sequence the scalar
    loop consumes via :meth:`~repro.scenarios.compose.TraceComposer.stream`.
    """
    engine = _BatchEngine(simulator, warmup_instructions, scenario=True)
    for chunk in chunks:
        engine.process_chunk(chunk)
    engine.drain_mispredictions()
    engine.emit_metrics()
    per_tenant = {
        name: simulator._account_result(name, engine.accounts[name], Stats())
        for name in engine.tenant_order
    }
    aggregate = simulator._aggregate_result(scenario_name, per_tenant)
    cache_asid_mode = simulator.machine.cache_asid_mode
    return ScenarioResult(
        scenario=scenario_name,
        asid_mode=simulator.machine.asid_mode.value,
        context_switches=engine.context_switches,
        aggregate=aggregate,
        per_tenant=per_tenant,
        cache_mode=None if cache_asid_mode is None else cache_asid_mode.value,
    )


class _BatchEngine:
    """Mutable state of one batched simulation run.

    Mirrors the scalar loops of :class:`~repro.core.simulator.FrontEndSimulator`
    step for step: the warmup flip, ASID switch handling, per-instruction
    prediction/fetch/FDIP/timing order and every measured counter follow the
    oracle exactly -- only the *schedule* of equivalent work differs (bulk
    compensation of guaranteed-miss runs, chunk-ahead demand fetches).
    """

    def __init__(self, simulator, warmup_instructions: int, scenario: bool) -> None:
        if warmup_instructions < 0:
            raise SimulationError("warmup length cannot be negative")
        self.sim = simulator
        self.bpu = simulator.bpu
        self.btb = simulator.btb
        self.ftq = simulator.ftq
        self.fdip = simulator.fdip
        self.hierarchy = simulator.hierarchy
        self.core = simulator.machine.core
        line_size = self.hierarchy.line_size()
        self.line_mask = ~(line_size - 1)
        self._line_mask_u64 = np.uint64(~(line_size - 1) & _U64_MASK)
        self.warmup = warmup_instructions
        self.scenario = scenario
        self.position = 0
        self.measuring = warmup_instructions == 0
        self.previous_block: int | None = None
        self.dir_before = self.bpu.stats.get("direction_mispredictions")
        self.tgt_before = self.bpu.stats.get("target_mispredictions")
        # Scenario bookkeeping (unused on the single-trace path).
        self.current_asid: int | None = None
        self.current_tenant: str | None = None
        self.current_account = None
        self.context_switches = 0
        self.accounts: dict[str, object] = {}
        self.tenant_order: list[str] = []
        # Vectorized-vs-scalar-fallback telemetry: plain int adds in the hot
        # path, emitted once per run via emit_metrics() so recording is free.
        self.chunks_planned = 0
        self.chunks_scalar = 0
        self.instructions_fast = 0
        self.instructions_slow = 0
        self.commits_vectorized = 0
        self.commits_scalar = 0

    def emit_metrics(self) -> None:
        """Publish the per-chunk fast/slow split to the active recorder."""
        from repro.obs import get_recorder

        recorder = get_recorder()
        if not recorder.enabled:
            return
        recorder.count("batch.chunks_planned", self.chunks_planned)
        recorder.count("batch.chunks_scalar", self.chunks_scalar)
        recorder.count("batch.instructions_fast", self.instructions_fast)
        recorder.count("batch.instructions_slow", self.instructions_slow)
        recorder.count("batch.commits_vectorized", self.commits_vectorized)
        recorder.count("batch.commits_scalar", self.commits_scalar)

    # -- boundaries --------------------------------------------------------

    def _flip_to_measuring(self) -> None:
        """The warmup/measurement boundary, identical to the scalar loops."""
        self.measuring = True
        self.previous_block = None
        self.btb.reset_stats()
        self.dir_before = self.bpu.stats.get("direction_mispredictions")
        self.tgt_before = self.bpu.stats.get("target_mispredictions")

    def drain_mispredictions(self) -> None:
        """Attribute BPU misprediction deltas to the current account."""
        now_dir = self.bpu.stats.get("direction_mispredictions")
        now_tgt = self.bpu.stats.get("target_mispredictions")
        account = self.current_account
        if account is not None:
            account.direction_mispredictions += int(now_dir - self.dir_before)
            account.target_mispredictions += int(now_tgt - self.tgt_before)
        self.dir_before, self.tgt_before = now_dir, now_tgt

    # -- chunk processing --------------------------------------------------

    def process_chunk(self, chunk: ScheduledChunk) -> None:
        """Run one scheduling chunk, splitting at the warmup boundary.

        ``measuring`` must be constant over a processed piece (the vectorized
        walk accounts a whole piece under one flag), so a chunk straddling the
        boundary is cut in two; the scalar loops flip at exactly the same
        stream position.
        """
        n = len(chunk)
        if n <= 0:
            return
        if not self.measuring and self.position < self.warmup < self.position + n:
            head = self.warmup - self.position
            self._process_piece(chunk, chunk.start, chunk.start + head)
            self._process_piece(chunk, chunk.start + head, chunk.stop)
        else:
            self._process_piece(chunk, chunk.start, chunk.stop)

    def _process_piece(self, chunk: ScheduledChunk, start: int, stop: int) -> None:
        n = stop - start
        if n <= 0:
            return
        if not self.measuring and self.position >= self.warmup:
            self._flip_to_measuring()
        if self.scenario:
            self._enter_chunk_context(chunk)

        arrays = trace_arrays(chunk.trace)
        pcs = arrays.pc[start:stop]
        is_branch = arrays.is_branch[start:stop]
        taken = arrays.taken[start:stop]
        blocks = pcs & self._line_mask_u64
        new_block = np.empty(n, dtype=bool)
        if n > 1:
            new_block[1:] = blocks[1:] != blocks[:-1]
        new_block[0] = self.previous_block is None or int(blocks[0]) != self.previous_block

        # The direction predictor's state evolves only at conditional-branch
        # commits with architectural outcomes, so the whole piece's histories
        # and table indices are precomputable: build the commit plan (after
        # the chunk context -- a FLUSH-mode switch resets the predictor).
        cond_mask = arrays.branch_type[start:stop] == _CONDITIONAL_CODE
        cond_count = int(np.count_nonzero(cond_mask))
        dplan = None
        if cond_count:
            cond_positions = np.flatnonzero(cond_mask)
            dplan = plan_commits(
                self.bpu.direction_predictor, pcs[cond_positions], taken[cond_positions]
            )
        if dplan is None:
            self.commits_scalar += cond_count
        else:
            self.commits_vectorized += cond_count

        taken_branch_pcs = np.unique(pcs[is_branch & taken])
        plan = self.btb.batch_plan(pcs, taken_branch_pcs)
        if plan is None:
            self.chunks_scalar += 1
            self.instructions_slow += n
            self._run_scalar(chunk.trace, start, stop, new_block, is_branch, taken, cond_mask, dplan)
        else:
            self.chunks_planned += 1
            self._run_planned(
                plan, chunk.trace, start, stop, pcs, new_block, is_branch, taken, cond_mask, dplan
            )
        if dplan is not None:
            dplan.finish()
        self.previous_block = int(blocks[n - 1])
        self.position += n

    def _enter_chunk_context(self, chunk: ScheduledChunk) -> None:
        """ASID/tenant switch handling, mirroring the run_scenario loop."""
        asid = chunk.asid
        if asid != self.current_asid:
            if self.current_asid is None:
                # Boot: the machine starts owned by the first ASID -- no
                # switch penalty, but tagged structures adopt its color.
                self.bpu.context_switch(asid)
                self.hierarchy.context_switch(asid)
            else:
                if self.measuring:
                    self.context_switches += 1
                    if self.current_account is not None:
                        self.drain_mispredictions()
                self.bpu.context_switch(asid)
                self.hierarchy.context_switch(asid)
                self.fdip.on_stream_break()
                self.previous_block = None
            self.current_asid = asid
            self.current_tenant = None
        if chunk.tenant != self.current_tenant:
            self.current_tenant = chunk.tenant
            account = self.accounts.get(chunk.tenant)
            if account is None:
                from repro.core.simulator import _TenantAccount

                account = self.accounts[chunk.tenant] = _TenantAccount(TimingModel(self.core))
                self.tenant_order.append(chunk.tenant)
            self.current_account = account

    # -- instruction walks -------------------------------------------------

    def _run_scalar(
        self, trace: Trace, start: int, stop: int, new_block, is_branch, taken, cond_mask, dplan
    ) -> None:
        """Exact scalar fallback for organizations without a batch plan.

        Even here the direction predictor runs on the commit plan when one
        exists: conditional commits are a pure function of the trace, not of
        the BTB organization, so chunks that replay scalarly for BTB reasons
        still take the vectorized commit path.
        """
        instructions = trace.instructions
        bpu = self.bpu
        fdip = self.fdip
        fetch = self.hierarchy.fetch
        observe = fdip.observe_predicted_address
        measuring = self.measuring
        account = self.current_account
        new_block_list = new_block.tolist()
        is_branch_list = is_branch.tolist()
        taken_list = taken.tolist()
        cond_list = cond_mask.tolist() if dplan is not None else None
        dk = -1
        for i in range(stop - start):
            instruction = instructions[start + i]
            if cond_list is not None and cond_list[i]:
                dk += 1
                prediction = bpu.process(instruction, dplan, dk)
            else:
                prediction = bpu.process(instruction)
            is_new_block = new_block_list[i]
            stall_cycles = 0.0
            miss = False
            covered = False
            beyond_l2 = False
            if is_new_block:
                result = fetch(instruction.pc)
                miss = not result.l1i_hit
                if miss:
                    beyond_l2 = result.level != "L2"
                    coverage = fdip.cover_demand_miss(result.latency)
                    stall_cycles = coverage.residual_latency
                    covered = coverage.coverage == "full"
            observe(instruction.pc)
            if prediction.stream_break:
                fdip.on_stream_break()
            if measuring:
                self._account_instruction(
                    account, prediction, is_new_block, miss, covered, beyond_l2,
                    stall_cycles, is_branch_list[i], taken_list[i],
                )

    def _run_planned(
        self, plan, trace: Trace, start: int, stop: int, pcs, new_block,
        is_branch, taken, cond_mask, dplan,
    ) -> None:
        """The planned walk: bulk-compensated fast runs, pre-located slow path."""
        n = stop - start
        guaranteed_miss = plan.guaranteed_miss
        fast = guaranteed_miss & ~is_branch
        pcs_list = pcs.tolist()
        nb_positions = np.flatnonzero(new_block).tolist()
        fetch_results = self.hierarchy.fetch_batch([pcs_list[i] for i in nb_positions])
        nb_ptr = 0
        instructions = trace.instructions
        bpu = self.bpu
        classify = bpu._classify
        commit = bpu._commit
        predictor = bpu.direction_predictor
        fdip = self.fdip
        observe = fdip.observe_predicted_address
        cover = fdip.cover_demand_miss
        measuring = self.measuring
        account = self.current_account
        plan_lookup = plan.lookup
        slow = np.flatnonzero(~fast)
        slow_positions = slow.tolist()
        # Per-slow-position columns, gathered once so the walk below reads
        # one zipped tuple per instruction instead of indexing six
        # piece-wide lists.
        slow_pc = pcs[slow].tolist()
        slow_nb = new_block[slow].tolist()
        slow_br = is_branch[slow].tolist()
        slow_tk = taken[slow].tolist()
        # A guaranteed-miss *not-taken* branch is provably conditional (the
        # ISA validates always-taken classes as taken) and resolves CORRECT
        # with no stream break, no RAS movement and no BTB training -- its
        # whole scalar footprint is the direction-predictor commit plus the
        # proven-miss probe counters, so it skips classify/commit entirely.
        # Taken guaranteed misses keep the full path (decode-resteer logic,
        # miss stats, RAS and BTB allocation all fire there).
        slow_bf = (guaranteed_miss & is_branch & ~taken)[slow].tolist()
        use_plan = dplan is not None
        slow_cond = cond_mask[slow].tolist() if use_plan else repeat(False)
        dk = -1

        fast_total = n - len(slow_positions)
        self.instructions_fast += fast_total
        self.instructions_slow += len(slow_positions)
        # Skipped proven-miss probes (fast runs + fast branches) are replayed
        # in one bulk call at the end of the piece: the probe counters are
        # plain commutative sums, only read (or reset) at piece boundaries.
        skipped_probes = fast_total

        # Measured-phase accumulators, applied once at the end of the piece.
        # Every timing hook is a commutative sum of integer-valued terms, so
        # batching is bit-exact; only the PDede extra-cycle gate reads live
        # FTQ occupancy and stays inline.
        retired = 0
        stall_sum = 0.0
        flushes = 0
        resteers = 0
        btb_extra = 0
        btb_miss_taken = 0
        branches = 0
        taken_branches = 0
        l1i_acc = 0
        l1i_miss = 0
        l2_acc = 0
        l2_miss = 0
        covered_cnt = 0
        ftq = self.ftq
        width2 = 2 * self.core.fetch_width
        FLUSH = PredictionOutcome.EXECUTE_FLUSH
        RESTEER = PredictionOutcome.DECODE_RESTEER

        observe_run = fdip.observe_predicted_block_run
        total_blocks = len(nb_positions)

        cursor = 0
        for i, pc, is_bf, is_new_block, is_br, is_tk, is_cond in zip(
            slow_positions, slow_pc, slow_bf, slow_nb, slow_br, slow_tk, slow_cond
        ):
            if i > cursor:
                # A gap with no new-block head inside it has exactly one
                # effect: the run's PCs enter the FTQ (one dedup'd block
                # observation).  Skipping the _fast_run frame for this
                # dominant case is pure overhead removal.
                if nb_ptr < total_blocks and nb_positions[nb_ptr] < i:
                    nb_ptr = self._fast_run(
                        pcs_list, cursor, i, nb_positions, nb_ptr, fetch_results,
                        measuring, account,
                    )
                else:
                    observe_run(pcs_list[cursor:i])
            cursor = i + 1
            if is_bf:
                skipped_probes += 1
                if use_plan:
                    dk += 1
                    dplan.record_outcome(False, False)
                    dplan.update(dk)
                else:
                    predictor.record_outcome(False, False)
                    predictor.update(pc, False)
                if is_new_block:
                    result = fetch_results[nb_ptr]
                    nb_ptr += 1
                    if result.l1i_hit:
                        l1i_acc += 1
                    else:
                        coverage = cover(result.latency)
                        stall_sum += coverage.residual_latency
                        l1i_acc += 1
                        l1i_miss += 1
                        l2_acc += 1
                        if result.level != "L2":
                            l2_miss += 1
                        if coverage.coverage == "full":
                            covered_cnt += 1
                observe(pc)
                retired += 1
                branches += 1
                continue
            instruction = instructions[start + i]
            if is_cond:
                dk += 1
                lookup = plan_lookup(i, pc)
                prediction = classify(instruction, lookup, dplan, dk, is_br)
                commit(instruction, prediction, dplan, dk, is_br)
            else:
                lookup = plan_lookup(i, pc)
                prediction = classify(instruction, lookup, None, -1, is_br)
                commit(instruction, prediction, None, -1, is_br)
            miss = False
            covered = False
            beyond_l2 = False
            stall_cycles = 0.0
            if is_new_block:
                result = fetch_results[nb_ptr]
                nb_ptr += 1
                miss = not result.l1i_hit
                if miss:
                    beyond_l2 = result.level != "L2"
                    coverage = cover(result.latency)
                    stall_cycles = coverage.residual_latency
                    covered = coverage.coverage == "full"
            observe(pc)
            if prediction.stream_break:
                fdip.on_stream_break()
            if measuring:
                retired += 1
                stall_sum += stall_cycles
                extra = prediction.extra_btb_cycles
                if extra and ftq.occupancy < width2:
                    btb_extra += extra
                outcome = prediction.outcome
                if outcome is FLUSH:
                    flushes += 1
                elif outcome is RESTEER:
                    resteers += 1
                if prediction.btb_miss_taken_branch:
                    btb_miss_taken += 1
                if is_br:
                    branches += 1
                    if is_tk:
                        taken_branches += 1
                if is_new_block:
                    l1i_acc += 1
                    if miss:
                        l1i_miss += 1
                        l2_acc += 1
                        if beyond_l2:
                            l2_miss += 1
                        if covered:
                            covered_cnt += 1
        if cursor < n:
            if nb_ptr < total_blocks:
                self._fast_run(
                    pcs_list, cursor, n, nb_positions, nb_ptr, fetch_results, measuring, account
                )
            else:
                observe_run(pcs_list[cursor:n])
        if skipped_probes:
            self.btb.note_skipped_miss_lookups(skipped_probes)
        if measuring:
            timing = account.timing
            timing.retire_instructions(fast_total + retired)
            timing.icache_stall(stall_sum)
            if flushes:
                timing.execute_flush(flushes)
                account.execute_flushes += flushes
            if resteers:
                timing.decode_resteer(resteers)
                account.decode_resteers += resteers
            timing.btb_extra_cycle(btb_extra)
            account.btb_misses_taken += btb_miss_taken
            account.branches += branches
            account.taken_branches += taken_branches
            account.l1i_accesses += l1i_acc
            account.l1i_misses += l1i_miss
            account.l2_accesses += l2_acc
            account.l2_misses += l2_miss
            account.l1i_misses_covered += covered_cnt

    def _fast_run(
        self, pcs_list, i0: int, i1: int, nb_positions, nb_ptr: int,
        fetch_results, measuring: bool, account,
    ) -> int:
        """Bulk-compensate a run of guaranteed-miss non-branch instructions.

        Each such instruction's full scalar footprint is: one proven-miss BTB
        probe (read + miss counters, no LRU movement), its PC entering the
        FTQ, the FDIP block-dedup check (at most once per cache block -- runs
        are walked one block segment at a time), a demand fetch where the run
        enters a new block and, when measuring, one retired instruction of
        base throughput plus the fetch's L1-I accounting.  Nothing else: no
        predictor/RAS/BTB training (non-branch), no branch penalties (a BTB
        miss on a non-branch is the correct prediction).

        ``nb_positions``/``fetch_results`` are the chunk's new-block positions
        and their pre-executed fetches; returns the advanced ``nb_ptr``.  Each
        block head's miss coverage is computed *before* its PC enters the FTQ,
        exactly like the scalar loops.  (The skipped-probe counters and the
        run's retired instructions are compensated once per piece by
        :meth:`_run_planned`, not here.)
        """
        fdip = self.fdip
        observe_run = fdip.observe_predicted_block_run
        cover = fdip.cover_demand_miss
        total_blocks = len(nb_positions)
        segment = i0
        blocks = 0
        misses = 0
        beyond_l2 = 0
        covered_cnt = 0
        stall_sum = 0.0
        while nb_ptr < total_blocks:
            head = nb_positions[nb_ptr]
            if head >= i1:
                break
            if head > segment:
                observe_run(pcs_list[segment:head])
            result = fetch_results[nb_ptr]
            nb_ptr += 1
            if not result.l1i_hit:
                coverage = cover(result.latency)
                stall_sum += coverage.residual_latency
                misses += 1
                if result.level != "L2":
                    beyond_l2 += 1
                if coverage.coverage == "full":
                    covered_cnt += 1
            blocks += 1
            segment = head
        observe_run(pcs_list[segment:i1])
        # One accounting flush per run: every term is a commutative sum, so
        # batching the per-block adds is bit-exact.
        if measuring and blocks:
            account.timing.icache_stall(stall_sum)
            account.l1i_accesses += blocks
            if misses:
                account.l1i_misses += misses
                account.l2_accesses += misses
                account.l2_misses += beyond_l2
                account.l1i_misses_covered += covered_cnt
        return nb_ptr

    def _account_instruction(
        self, account, prediction,
        new_block: bool, miss: bool, covered: bool, beyond_l2: bool, stall_cycles: float,
        is_branch: bool, taken: bool,
    ) -> None:
        """Measured-phase accounting, identical to the scalar loops' blocks.

        ``is_branch``/``taken`` come from the piece's SoA view (identical to
        the instruction's attributes, and far cheaper than the per-object
        property walk this method used to pay twice per instruction).
        """
        timing = account.timing
        timing.retire_instructions(1)
        timing.icache_stall(stall_cycles)
        if prediction.extra_btb_cycles and self.ftq.occupancy < 2 * self.core.fetch_width:
            timing.btb_extra_cycle(prediction.extra_btb_cycles)
        if prediction.outcome is PredictionOutcome.EXECUTE_FLUSH:
            timing.execute_flush()
            account.execute_flushes += 1
        elif prediction.outcome is PredictionOutcome.DECODE_RESTEER:
            timing.decode_resteer()
            account.decode_resteers += 1
        if prediction.btb_miss_taken_branch:
            account.btb_misses_taken += 1
        if is_branch:
            account.branches += 1
            if taken:
                account.taken_branches += 1
        if new_block:
            account.l1i_accesses += 1
            if miss:
                account.l1i_misses += 1
                account.l2_accesses += 1
                if beyond_l2:
                    account.l2_misses += 1
                if covered:
                    account.l1i_misses_covered += 1

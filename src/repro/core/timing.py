"""Interval-based timing model.

Full cycle-accurate simulation of an out-of-order core is neither feasible in
pure Python at trace scale nor necessary for the paper's experiments, which
are dominated by front-end events.  The timing model therefore follows the
classic interval-analysis decomposition: a core with fetch width ``W`` retires
``N`` instructions in ``N / W`` cycles in the absence of disruptions, and each
disruptive event adds a penalty on top:

* an **execute-stage flush** (direction misprediction, wrong target, or a BTB
  miss that decode could not fix) costs the pipeline refill depth;
* a **decode-stage resteer** (taken branch that missed in the BTB but whose
  target was recovered at decode, Section VI-A) costs the shorter
  fetch-to-decode depth;
* an **uncovered L1-I miss** stalls fetch for the residual latency FDIP could
  not hide;
* a **PDede different-page lookup** adds one bubble cycle per taken branch
  that needed the second BTB access cycle (Section VI-E).

The defaults (17-cycle flush, 5-cycle resteer) approximate the Sunny-Cove-like
pipeline of Table II and can be overridden through :class:`CoreConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import CoreConfig


@dataclass
class CycleBreakdown:
    """Accumulated cycles, split by cause."""

    base_cycles: float = 0.0
    flush_cycles: float = 0.0
    resteer_cycles: float = 0.0
    icache_stall_cycles: float = 0.0
    btb_extra_cycles: float = 0.0

    @property
    def total(self) -> float:
        """Total cycle count."""
        return (
            self.base_cycles
            + self.flush_cycles
            + self.resteer_cycles
            + self.icache_stall_cycles
            + self.btb_extra_cycles
        )


class TimingModel:
    """Accumulates penalties and converts them into a cycle count."""

    def __init__(self, core: CoreConfig) -> None:
        self.core = core
        self.breakdown = CycleBreakdown()
        self._instructions = 0

    # -- event hooks -----------------------------------------------------------

    def retire_instructions(self, count: int = 1) -> None:
        """Account for ``count`` retired instructions of base throughput."""
        self._instructions += count

    def execute_flush(self, count: int = 1) -> None:
        """Charge ``count`` full pipeline flushes detected at the execute stage."""
        self.breakdown.flush_cycles += self.core.execute_flush_penalty * count

    def decode_resteer(self, count: int = 1) -> None:
        """Charge ``count`` decode-stage resteers (Section VI-A's cheap recovery)."""
        self.breakdown.resteer_cycles += self.core.decode_resteer_penalty * count

    def icache_stall(self, cycles: float) -> None:
        """Charge fetch-stall cycles for an uncovered (part of an) L1-I miss."""
        if cycles > 0:
            self.breakdown.icache_stall_cycles += cycles

    def btb_extra_cycle(self, cycles: int = 1) -> None:
        """Charge extra BTB lookup cycles (PDede's two-cycle accesses)."""
        if cycles > 0:
            self.breakdown.btb_extra_cycles += cycles

    # -- results -----------------------------------------------------------------

    @property
    def instructions(self) -> int:
        """Number of retired instructions accounted so far."""
        return self._instructions

    def finalize(self) -> CycleBreakdown:
        """Compute the base cycles and return the final breakdown."""
        self.breakdown.base_cycles = self._instructions / max(self.core.fetch_width, 1)
        return self.breakdown

    def total_cycles(self) -> float:
        """Convenience: finalize and return the total cycle count."""
        return self.finalize().total

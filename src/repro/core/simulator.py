"""The trace-driven front-end simulator.

:class:`FrontEndSimulator` ties every substrate together: for each retired
instruction of a trace it

1. lets the :class:`~repro.frontend.bpu.BranchPredictionUnit` predict and
   resolve the instruction (BTB lookup, direction prediction, RAS);
2. models instruction fetch through the L1-I (one demand access per new cache
   block on the correct path) with FDIP hiding part of the miss latency based
   on the FTQ's run-ahead distance;
3. charges the timing model with the appropriate penalty (execute flush,
   decode resteer, residual L1-I stall, PDede extra lookup cycle);
4. applies commit-time updates (direction predictor, RAS, BTB insertion for
   taken branches) -- these happen inside the BPU.

Warmup instructions exercise all structures but do not contribute to the
reported event counts or cycles, mirroring the paper's 50 M warmup / 50 M
measurement protocol (at a smaller scale).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.common.config import BTBStyle, MachineConfig, default_machine_config
from repro.common.errors import SimulationError
from repro.common.stats import Stats
from repro.core.metrics import ScenarioResult, SimulationResult
from repro.core.timing import TimingModel
from repro.frontend.bpu import BranchPredictionUnit, PredictionOutcome
from repro.frontend.fdip import FDIPPrefetcher
from repro.frontend.ftq import FetchTargetQueue
from repro.isa.instruction import Instruction
from repro.memory.hierarchy import MemoryHierarchy
from repro.btb.base import BTBBase
from repro.btb.storage import make_btb
from repro.traces.trace import Trace


class _TenantAccount:
    """Measured-phase counters of one tenant in a scenario run."""

    __slots__ = (
        "timing",
        "btb_misses_taken",
        "decode_resteers",
        "execute_flushes",
        "direction_mispredictions",
        "target_mispredictions",
        "taken_branches",
        "branches",
        "l1i_accesses",
        "l1i_misses",
        "l1i_misses_covered",
        "l2_accesses",
        "l2_misses",
    )

    def __init__(self, timing: TimingModel) -> None:
        self.timing = timing
        self.btb_misses_taken = 0
        self.decode_resteers = 0
        self.execute_flushes = 0
        self.direction_mispredictions = 0
        self.target_mispredictions = 0
        self.taken_branches = 0
        self.branches = 0
        self.l1i_accesses = 0
        self.l1i_misses = 0
        self.l1i_misses_covered = 0
        self.l2_accesses = 0
        self.l2_misses = 0


class FrontEndSimulator:
    """Simulates the front end of the Table II core over a retired-instruction trace."""

    def __init__(
        self,
        machine: MachineConfig | None = None,
        btb: BTBBase | None = None,
        stats: Stats | None = None,
    ) -> None:
        self.machine = machine if machine is not None else default_machine_config()
        self.stats = stats if stats is not None else Stats()
        self.btb = btb if btb is not None else make_btb(self.machine.btb, self.stats)
        self.bpu = BranchPredictionUnit(self.btb, self.machine, self.stats)
        self.hierarchy = MemoryHierarchy(self.machine, self.stats)
        self.ftq = FetchTargetQueue(self.machine.fdip.ftq_instructions, self.stats)
        self.fdip = FDIPPrefetcher(self.machine, self.ftq, self.hierarchy, self.stats)

    # -- simulation --------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        warmup_instructions: int = 0,
        max_instructions: int | None = None,
    ) -> SimulationResult:
        """Simulate ``trace`` and return the measured-phase results.

        ``warmup_instructions`` are simulated first with full structural state
        updates but excluded from every reported metric;
        ``max_instructions`` caps the measured phase (defaults to the rest of
        the trace).

        NOTE: the per-instruction body of this loop is intentionally mirrored
        in :meth:`run_scenario` (locals instead of shared helpers keep this
        inner loop fast in pure Python).  Any change here must be applied
        there too; the solo-equivalence test
        (``test_solo_baseline_reproduces_single_trace_simulation``) fails if
        the two copies drift apart.
        """
        if warmup_instructions < 0:
            raise SimulationError("warmup length cannot be negative")
        if self.machine.backend == "numpy":
            from repro.core.batch import run_batched

            return run_batched(self, trace, warmup_instructions, max_instructions)
        timing = TimingModel(self.machine.core)
        line_mask = ~(self.hierarchy.line_size() - 1)

        measured = 0
        btb_misses_taken = 0
        decode_resteers = 0
        execute_flushes = 0
        direction_mispredictions = 0
        target_mispredictions = 0
        taken_branches = 0
        branches = 0
        l1i_accesses = 0
        l1i_misses = 0
        l1i_misses_covered = 0
        l2_accesses = 0
        l2_misses = 0

        previous_block = None
        measuring = warmup_instructions == 0
        measurement_limit = max_instructions

        direction_mispred_before = self.bpu.stats.get("direction_mispredictions")
        target_mispred_before = self.bpu.stats.get("target_mispredictions")

        for position, instruction in enumerate(trace):
            if not measuring and position >= warmup_instructions:
                measuring = True
                previous_block = None
                self.btb.reset_stats()
                direction_mispred_before = self.bpu.stats.get("direction_mispredictions")
                target_mispred_before = self.bpu.stats.get("target_mispredictions")
            if measuring and measurement_limit is not None and measured >= measurement_limit:
                break

            prediction = self.bpu.process(instruction)

            # --- instruction fetch through the L1-I -----------------------------
            block = instruction.pc & line_mask
            new_block = block != previous_block
            previous_block = block
            stall_cycles = 0.0
            miss = False
            covered = False
            beyond_l2 = False
            if new_block:
                fetch = self.hierarchy.fetch(instruction.pc)
                miss = not fetch.l1i_hit
                if miss:
                    beyond_l2 = fetch.level != "L2"
                    coverage = self.fdip.cover_demand_miss(fetch.latency)
                    stall_cycles = coverage.residual_latency
                    covered = coverage.coverage == "full"

            # --- FTQ / FDIP run-ahead maintenance -------------------------------
            self.fdip.observe_predicted_address(instruction.pc)
            if prediction.stream_break:
                self.fdip.on_stream_break()

            # --- timing ----------------------------------------------------------
            if measuring:
                measured += 1
                timing.retire_instructions(1)
                timing.icache_stall(stall_cycles)
                if prediction.extra_btb_cycles and self.ftq.occupancy < 2 * self.machine.core.fetch_width:
                    # A multi-cycle BTB lookup (PDede different-page access)
                    # only lengthens the critical path while the decoupled
                    # front end has no run-ahead slack, i.e. just after a
                    # flush or resteer.
                    timing.btb_extra_cycle(prediction.extra_btb_cycles)
                if prediction.outcome is PredictionOutcome.EXECUTE_FLUSH:
                    timing.execute_flush()
                    execute_flushes += 1
                elif prediction.outcome is PredictionOutcome.DECODE_RESTEER:
                    timing.decode_resteer()
                    decode_resteers += 1
                if prediction.btb_miss_taken_branch:
                    btb_misses_taken += 1
                if instruction.is_branch:
                    branches += 1
                    if instruction.taken:
                        taken_branches += 1
                if new_block:
                    l1i_accesses += 1
                    if miss:
                        l1i_misses += 1
                        l2_accesses += 1
                        if beyond_l2:
                            l2_misses += 1
                        if covered:
                            l1i_misses_covered += 1

        breakdown = timing.finalize()
        direction_mispredictions = int(
            self.bpu.stats.get("direction_mispredictions") - direction_mispred_before
        )
        target_mispredictions = int(
            self.bpu.stats.get("target_mispredictions") - target_mispred_before
        )

        return SimulationResult(
            workload=trace.name,
            btb_style=self.btb.name,
            btb_storage_kib=self.btb.storage_kib(),
            fdip_enabled=self.machine.fdip.enabled,
            instructions=measured,
            cycles=breakdown.total,
            base_cycles=breakdown.base_cycles,
            flush_cycles=breakdown.flush_cycles,
            resteer_cycles=breakdown.resteer_cycles,
            icache_stall_cycles=breakdown.icache_stall_cycles,
            btb_extra_cycles=breakdown.btb_extra_cycles,
            btb_misses_taken=btb_misses_taken,
            decode_resteers=decode_resteers,
            execute_flushes=execute_flushes,
            direction_mispredictions=direction_mispredictions,
            target_mispredictions=target_mispredictions,
            taken_branches=taken_branches,
            branches=branches,
            l1i_accesses=l1i_accesses,
            l1i_misses=l1i_misses,
            l1i_misses_covered=l1i_misses_covered,
            l2_accesses=l2_accesses,
            l2_misses=l2_misses,
            stats=self.stats,
        )

    # -- scenario simulation ------------------------------------------------------

    def run_scenario(
        self,
        schedule: Iterable[Tuple[int, str, Instruction]],
        warmup_instructions: int = 0,
        scenario_name: str = "scenario",
    ) -> ScenarioResult:
        """Simulate a scheduled multi-tenant stream of ``(asid, tenant, instruction)``.

        The stream is consumed exactly once (it is typically a
        :meth:`~repro.scenarios.compose.TraceComposer.stream` generator, never a
        materialized list).  Whenever the ASID changes the simulator performs a
        context switch: the FTQ drains (the front end starts fetching the
        incoming tenant's stream, so FDIP run-ahead restarts from zero) and the
        BPU applies the machine's :class:`~repro.common.config.ASIDMode` --
        flushing BTB/predictor/RAS or retagging/checkpointing them.  Kernel
        scheduling overhead itself is deliberately not charged: the model
        isolates the *microarchitectural* cost of consolidation, which is what
        the BTB study is about.

        With a single-ASID stream this loop performs exactly the same work as
        :meth:`run`, so a one-tenant scenario reproduces the solo result
        bit-for-bit.  The per-instruction body deliberately mirrors
        :meth:`run`'s (see the note there) -- keep the two in lockstep.
        Events are attributed to the tenant whose instruction incurred them;
        direction/target mispredictions are drained from the BPU's counters at
        switch boundaries (they are cheap to read there and switches are rare
        relative to instructions).
        """
        if warmup_instructions < 0:
            raise SimulationError("warmup length cannot be negative")
        core = self.machine.core
        line_mask = ~(self.hierarchy.line_size() - 1)

        accounts: dict[str, _TenantAccount] = {}
        tenant_order: list[str] = []
        current_account: _TenantAccount | None = None
        current_asid: int | None = None
        current_tenant: str | None = None
        context_switches = 0

        previous_block = None
        measuring = warmup_instructions == 0
        dir_before = self.bpu.stats.get("direction_mispredictions")
        tgt_before = self.bpu.stats.get("target_mispredictions")

        for position, (asid, tenant, instruction) in enumerate(schedule):
            if not measuring and position >= warmup_instructions:
                measuring = True
                previous_block = None
                self.btb.reset_stats()
                dir_before = self.bpu.stats.get("direction_mispredictions")
                tgt_before = self.bpu.stats.get("target_mispredictions")

            if asid != current_asid:
                if current_asid is None:
                    # The machine boots already owned by the first ASID: no
                    # switch penalty, but tagged BTBs and caches must adopt
                    # its color.
                    self.bpu.context_switch(asid)
                    self.hierarchy.context_switch(asid)
                else:
                    if measuring:
                        context_switches += 1
                        if current_account is not None:
                            now_dir = self.bpu.stats.get("direction_mispredictions")
                            now_tgt = self.bpu.stats.get("target_mispredictions")
                            current_account.direction_mispredictions += int(now_dir - dir_before)
                            current_account.target_mispredictions += int(now_tgt - tgt_before)
                            dir_before, tgt_before = now_dir, now_tgt
                    self.bpu.context_switch(asid)
                    self.hierarchy.context_switch(asid)
                    self.fdip.on_stream_break()
                    previous_block = None
                current_asid = asid
                current_tenant = None
            if tenant != current_tenant:
                current_tenant = tenant
                current_account = accounts.get(tenant)
                if current_account is None:
                    current_account = accounts[tenant] = _TenantAccount(TimingModel(core))
                    tenant_order.append(tenant)

            prediction = self.bpu.process(instruction)

            block = instruction.pc & line_mask
            new_block = block != previous_block
            previous_block = block
            stall_cycles = 0.0
            miss = False
            covered = False
            beyond_l2 = False
            if new_block:
                fetch = self.hierarchy.fetch(instruction.pc)
                miss = not fetch.l1i_hit
                if miss:
                    beyond_l2 = fetch.level != "L2"
                    coverage = self.fdip.cover_demand_miss(fetch.latency)
                    stall_cycles = coverage.residual_latency
                    covered = coverage.coverage == "full"

            self.fdip.observe_predicted_address(instruction.pc)
            if prediction.stream_break:
                self.fdip.on_stream_break()

            if measuring:
                account = current_account
                timing = account.timing
                timing.retire_instructions(1)
                timing.icache_stall(stall_cycles)
                if prediction.extra_btb_cycles and self.ftq.occupancy < 2 * core.fetch_width:
                    timing.btb_extra_cycle(prediction.extra_btb_cycles)
                if prediction.outcome is PredictionOutcome.EXECUTE_FLUSH:
                    timing.execute_flush()
                    account.execute_flushes += 1
                elif prediction.outcome is PredictionOutcome.DECODE_RESTEER:
                    timing.decode_resteer()
                    account.decode_resteers += 1
                if prediction.btb_miss_taken_branch:
                    account.btb_misses_taken += 1
                if instruction.is_branch:
                    account.branches += 1
                    if instruction.taken:
                        account.taken_branches += 1
                if new_block:
                    account.l1i_accesses += 1
                    if miss:
                        account.l1i_misses += 1
                        account.l2_accesses += 1
                        if beyond_l2:
                            account.l2_misses += 1
                        if covered:
                            account.l1i_misses_covered += 1

        if current_account is not None:
            now_dir = self.bpu.stats.get("direction_mispredictions")
            now_tgt = self.bpu.stats.get("target_mispredictions")
            current_account.direction_mispredictions += int(now_dir - dir_before)
            current_account.target_mispredictions += int(now_tgt - tgt_before)

        per_tenant = {
            name: self._account_result(name, accounts[name], Stats()) for name in tenant_order
        }
        aggregate = self._aggregate_result(scenario_name, per_tenant)
        cache_asid_mode = self.machine.cache_asid_mode
        return ScenarioResult(
            scenario=scenario_name,
            asid_mode=self.machine.asid_mode.value,
            context_switches=context_switches,
            aggregate=aggregate,
            per_tenant=per_tenant,
            cache_mode=None if cache_asid_mode is None else cache_asid_mode.value,
        )

    def run_scenario_batches(
        self,
        chunks,
        warmup_instructions: int = 0,
        scenario_name: str = "scenario",
    ) -> ScenarioResult:
        """Batched twin of :meth:`run_scenario` consuming scheduled chunks.

        ``chunks`` is a :meth:`~repro.scenarios.compose.TraceComposer.stream_batches`
        iterator covering the identical scheduled stream; the numpy engine
        (:mod:`repro.core.batch`) processes a chunk per step and is bit-exact
        against :meth:`run_scenario` on every reported metric.
        """
        from repro.core.batch import run_scenario_batched

        return run_scenario_batched(self, chunks, warmup_instructions, scenario_name)

    def _account_result(
        self, workload: str, account: _TenantAccount, stats: Stats
    ) -> SimulationResult:
        """Package one tenant's measured counters as a :class:`SimulationResult`."""
        breakdown = account.timing.finalize()
        return SimulationResult(
            workload=workload,
            btb_style=self.btb.name,
            btb_storage_kib=self.btb.storage_kib(),
            fdip_enabled=self.machine.fdip.enabled,
            instructions=account.timing.instructions,
            cycles=breakdown.total,
            base_cycles=breakdown.base_cycles,
            flush_cycles=breakdown.flush_cycles,
            resteer_cycles=breakdown.resteer_cycles,
            icache_stall_cycles=breakdown.icache_stall_cycles,
            btb_extra_cycles=breakdown.btb_extra_cycles,
            btb_misses_taken=account.btb_misses_taken,
            decode_resteers=account.decode_resteers,
            execute_flushes=account.execute_flushes,
            direction_mispredictions=account.direction_mispredictions,
            target_mispredictions=account.target_mispredictions,
            taken_branches=account.taken_branches,
            branches=account.branches,
            l1i_accesses=account.l1i_accesses,
            l1i_misses=account.l1i_misses,
            l1i_misses_covered=account.l1i_misses_covered,
            l2_accesses=account.l2_accesses,
            l2_misses=account.l2_misses,
            stats=stats,
        )

    def _aggregate_result(
        self, scenario_name: str, per_tenant: dict[str, SimulationResult]
    ) -> SimulationResult:
        """Sum per-tenant results into the whole-stream result."""
        def total(field: str) -> float:
            return sum(getattr(result, field) for result in per_tenant.values())

        return SimulationResult(
            workload=scenario_name,
            btb_style=self.btb.name,
            btb_storage_kib=self.btb.storage_kib(),
            fdip_enabled=self.machine.fdip.enabled,
            instructions=int(total("instructions")),
            cycles=total("cycles"),
            base_cycles=total("base_cycles"),
            flush_cycles=total("flush_cycles"),
            resteer_cycles=total("resteer_cycles"),
            icache_stall_cycles=total("icache_stall_cycles"),
            btb_extra_cycles=total("btb_extra_cycles"),
            btb_misses_taken=int(total("btb_misses_taken")),
            decode_resteers=int(total("decode_resteers")),
            execute_flushes=int(total("execute_flushes")),
            direction_mispredictions=int(total("direction_mispredictions")),
            target_mispredictions=int(total("target_mispredictions")),
            taken_branches=int(total("taken_branches")),
            branches=int(total("branches")),
            l1i_accesses=int(total("l1i_accesses")),
            l1i_misses=int(total("l1i_misses")),
            l1i_misses_covered=int(total("l1i_misses_covered")),
            l2_accesses=int(total("l2_accesses")),
            l2_misses=int(total("l2_misses")),
            stats=self.stats,
        )


def simulate_trace(
    trace: Trace,
    btb_style: BTBStyle = BTBStyle.BTBX,
    btb_entries: int = 4096,
    fdip_enabled: bool = True,
    warmup_fraction: float = 0.2,
    machine: MachineConfig | None = None,
) -> SimulationResult:
    """One-call convenience wrapper used by examples and quick experiments.

    Builds the Table II machine with the requested BTB organization and FDIP
    setting, warms up on the first ``warmup_fraction`` of the trace and
    measures the rest.
    """
    if machine is None:
        machine = default_machine_config(
            btb_style=btb_style,
            btb_entries=btb_entries,
            fdip_enabled=fdip_enabled,
            isa=trace.isa,
        )
    simulator = FrontEndSimulator(machine)
    warmup = int(len(trace) * warmup_fraction)
    return simulator.run(trace, warmup_instructions=warmup)

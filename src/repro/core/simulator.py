"""The trace-driven front-end simulator.

:class:`FrontEndSimulator` ties every substrate together: for each retired
instruction of a trace it

1. lets the :class:`~repro.frontend.bpu.BranchPredictionUnit` predict and
   resolve the instruction (BTB lookup, direction prediction, RAS);
2. models instruction fetch through the L1-I (one demand access per new cache
   block on the correct path) with FDIP hiding part of the miss latency based
   on the FTQ's run-ahead distance;
3. charges the timing model with the appropriate penalty (execute flush,
   decode resteer, residual L1-I stall, PDede extra lookup cycle);
4. applies commit-time updates (direction predictor, RAS, BTB insertion for
   taken branches) -- these happen inside the BPU.

Warmup instructions exercise all structures but do not contribute to the
reported event counts or cycles, mirroring the paper's 50 M warmup / 50 M
measurement protocol (at a smaller scale).
"""

from __future__ import annotations

from repro.common.config import BTBStyle, MachineConfig, default_machine_config
from repro.common.errors import SimulationError
from repro.common.stats import Stats
from repro.core.metrics import SimulationResult
from repro.core.timing import TimingModel
from repro.frontend.bpu import BranchPredictionUnit, PredictionOutcome
from repro.frontend.fdip import FDIPPrefetcher
from repro.frontend.ftq import FetchTargetQueue
from repro.memory.hierarchy import MemoryHierarchy
from repro.btb.base import BTBBase
from repro.btb.storage import make_btb
from repro.traces.trace import Trace


class FrontEndSimulator:
    """Simulates the front end of the Table II core over a retired-instruction trace."""

    def __init__(
        self,
        machine: MachineConfig | None = None,
        btb: BTBBase | None = None,
        stats: Stats | None = None,
    ) -> None:
        self.machine = machine if machine is not None else default_machine_config()
        self.stats = stats if stats is not None else Stats()
        self.btb = btb if btb is not None else make_btb(self.machine.btb, self.stats)
        self.bpu = BranchPredictionUnit(self.btb, self.machine, self.stats)
        self.hierarchy = MemoryHierarchy(self.machine, self.stats)
        self.ftq = FetchTargetQueue(self.machine.fdip.ftq_instructions, self.stats)
        self.fdip = FDIPPrefetcher(self.machine, self.ftq, self.hierarchy, self.stats)

    # -- simulation --------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        warmup_instructions: int = 0,
        max_instructions: int | None = None,
    ) -> SimulationResult:
        """Simulate ``trace`` and return the measured-phase results.

        ``warmup_instructions`` are simulated first with full structural state
        updates but excluded from every reported metric;
        ``max_instructions`` caps the measured phase (defaults to the rest of
        the trace).
        """
        if warmup_instructions < 0:
            raise SimulationError("warmup length cannot be negative")
        timing = TimingModel(self.machine.core)
        line_mask = ~(self.hierarchy.line_size() - 1)

        measured = 0
        btb_misses_taken = 0
        decode_resteers = 0
        execute_flushes = 0
        direction_mispredictions = 0
        target_mispredictions = 0
        taken_branches = 0
        branches = 0
        l1i_accesses = 0
        l1i_misses = 0
        l1i_misses_covered = 0

        previous_block = None
        measuring = warmup_instructions == 0
        measurement_limit = max_instructions

        direction_mispred_before = self.bpu.stats.get("direction_mispredictions")
        target_mispred_before = self.bpu.stats.get("target_mispredictions")

        for position, instruction in enumerate(trace):
            if not measuring and position >= warmup_instructions:
                measuring = True
                previous_block = None
                self.btb.reset_stats()
                direction_mispred_before = self.bpu.stats.get("direction_mispredictions")
                target_mispred_before = self.bpu.stats.get("target_mispredictions")
            if measuring and measurement_limit is not None and measured >= measurement_limit:
                break

            prediction = self.bpu.process(instruction)

            # --- instruction fetch through the L1-I -----------------------------
            block = instruction.pc & line_mask
            new_block = block != previous_block
            previous_block = block
            stall_cycles = 0.0
            miss = False
            covered = False
            if new_block:
                fetch = self.hierarchy.fetch(instruction.pc)
                miss = not fetch.l1i_hit
                if miss:
                    coverage = self.fdip.cover_demand_miss(fetch.latency)
                    stall_cycles = coverage.residual_latency
                    covered = coverage.coverage == "full"

            # --- FTQ / FDIP run-ahead maintenance -------------------------------
            self.fdip.observe_predicted_address(instruction.pc)
            if prediction.stream_break:
                self.fdip.on_stream_break()

            # --- timing ----------------------------------------------------------
            if measuring:
                measured += 1
                timing.retire_instructions(1)
                timing.icache_stall(stall_cycles)
                if prediction.extra_btb_cycles and self.ftq.occupancy < 2 * self.machine.core.fetch_width:
                    # A multi-cycle BTB lookup (PDede different-page access)
                    # only lengthens the critical path while the decoupled
                    # front end has no run-ahead slack, i.e. just after a
                    # flush or resteer.
                    timing.btb_extra_cycle(prediction.extra_btb_cycles)
                if prediction.outcome is PredictionOutcome.EXECUTE_FLUSH:
                    timing.execute_flush()
                    execute_flushes += 1
                elif prediction.outcome is PredictionOutcome.DECODE_RESTEER:
                    timing.decode_resteer()
                    decode_resteers += 1
                if prediction.btb_miss_taken_branch:
                    btb_misses_taken += 1
                if instruction.is_branch:
                    branches += 1
                    if instruction.taken:
                        taken_branches += 1
                if new_block:
                    l1i_accesses += 1
                    if miss:
                        l1i_misses += 1
                        if covered:
                            l1i_misses_covered += 1

        breakdown = timing.finalize()
        direction_mispredictions = int(
            self.bpu.stats.get("direction_mispredictions") - direction_mispred_before
        )
        target_mispredictions = int(
            self.bpu.stats.get("target_mispredictions") - target_mispred_before
        )

        return SimulationResult(
            workload=trace.name,
            btb_style=self.btb.name,
            btb_storage_kib=self.btb.storage_kib(),
            fdip_enabled=self.machine.fdip.enabled,
            instructions=measured,
            cycles=breakdown.total,
            base_cycles=breakdown.base_cycles,
            flush_cycles=breakdown.flush_cycles,
            resteer_cycles=breakdown.resteer_cycles,
            icache_stall_cycles=breakdown.icache_stall_cycles,
            btb_extra_cycles=breakdown.btb_extra_cycles,
            btb_misses_taken=btb_misses_taken,
            decode_resteers=decode_resteers,
            execute_flushes=execute_flushes,
            direction_mispredictions=direction_mispredictions,
            target_mispredictions=target_mispredictions,
            taken_branches=taken_branches,
            branches=branches,
            l1i_accesses=l1i_accesses,
            l1i_misses=l1i_misses,
            l1i_misses_covered=l1i_misses_covered,
            stats=self.stats,
        )


def simulate_trace(
    trace: Trace,
    btb_style: BTBStyle = BTBStyle.BTBX,
    btb_entries: int = 4096,
    fdip_enabled: bool = True,
    warmup_fraction: float = 0.2,
    machine: MachineConfig | None = None,
) -> SimulationResult:
    """One-call convenience wrapper used by examples and quick experiments.

    Builds the Table II machine with the requested BTB organization and FDIP
    setting, warms up on the first ``warmup_fraction`` of the trace and
    measures the rest.
    """
    if machine is None:
        machine = default_machine_config(
            btb_style=btb_style,
            btb_entries=btb_entries,
            fdip_enabled=fdip_enabled,
            isa=trace.isa,
        )
    simulator = FrontEndSimulator(machine)
    warmup = int(len(trace) * warmup_fraction)
    return simulator.run(trace, warmup_instructions=warmup)

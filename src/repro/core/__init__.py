"""The trace-driven front-end simulator and its timing model.

* :class:`repro.core.simulator.FrontEndSimulator` walks a retired-instruction
  trace and drives the BTB, direction predictor, RAS, FTQ/FDIP and L1-I,
  producing the event counts behind every figure of the evaluation.
* :class:`repro.core.timing.TimingModel` converts those events into cycles
  using an interval model: base cycles from the fetch width plus additive
  penalties for execute-stage flushes, decode-stage resteers, uncovered L1-I
  miss latency and PDede's extra lookup cycles.
* :class:`repro.core.metrics.SimulationResult` packages the outcome (IPC,
  BTB MPKI, penalty breakdown) for the experiment drivers.
"""

from repro.core.metrics import SimulationResult
from repro.core.simulator import FrontEndSimulator, simulate_trace
from repro.core.timing import TimingModel

__all__ = ["FrontEndSimulator", "simulate_trace", "SimulationResult", "TimingModel"]

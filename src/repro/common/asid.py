"""Cross-layer address-space (ASID) policy shared by every taggable structure.

Context switches touch three different kinds of predictive/cached state in
this model -- BTB organizations (main arrays plus their Page-/Region-/
companion secondaries), the branch-prediction unit's RAS, and the memory
hierarchy's set-associative caches.  All of them need the *same* mechanics:

* **tag coloring** -- fold the active ASID into whatever value the structure
  tag-matches on, so entries installed by one address space never hit for
  another while everyone shares storage.  ASID 0 colors to the identity, so a
  single-address-space run is bit-identical whether or not tagging is in
  effect;
* **flush-on-switch** -- the conservative hardware baseline: discard the
  structure whenever a different address space is scheduled in
  (:func:`retains_across_switch` is the one place that spells out which
  :class:`~repro.common.config.ASIDMode` retains);
* **capacity partitioning** -- split a structure's sets (or a fully
  associative structure's entries) among tenants proportionally to their
  scheduling weights, with a deterministic apportionment and, for small
  secondary structures, a fall-back to (still tagged) sharing when there are
  fewer sets/entries than tenants;
* **partition reporting** -- per-tenant slice sizes for results;
* **duplication accounting** -- distinct contents versus distinct
  ``(asid, content)`` pairs, the storage tagging spends on shared code.

:class:`AddressSpacePolicy` bundles those mechanics for one structure family:
a primary array plus any number of named secondary *domains* that share its
active ASID (PDede registers ``"page"`` and ``"region"`` domains next to its
``"main"`` one; a cache registers just ``"sets"``).  The structures keep their
own arrays, LRU state and replacement logic -- the policy owns everything
ASID-shaped, so the mode semantics live in exactly one module instead of once
per structure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.config import ASIDMode, partition_set_counts

#: Multiplier spreading an ASID over the bits folded into partial tags.
#: ASID 0 colors to the identity, so single-address-space simulations are
#: bit-identical whether or not tagging is in effect.
ASID_SALT = 0x9E3779B97F4A7C15

#: ASID color bits sit above bit 16.  The colored value feeds ONLY tag
#: matching, never set indexing, so tagging changes which entries *match*,
#: not which set a key lives in -- exactly how hardware ASID tags behave
#: (this also holds for non-power-of-two set counts, whose modulo indexing
#: would otherwise be scrambled by high color bits).
ASID_SHIFT = 16


def retains_across_switch(mode: ASIDMode) -> bool:
    """Whether predictive/cached state survives a context switch under ``mode``.

    ``FLUSH`` discards; ``TAGGED`` and ``PARTITIONED`` retain (partitioning
    only changes *indexing*, not retention).  Every adopter -- the BPU, the
    memory hierarchy -- keys its switch behavior off this one predicate.
    """
    return mode is not ASIDMode.FLUSH


def partition_ranges(total: int, weights: Sequence[int]) -> List[Tuple[int, int]]:
    """Contiguous ``(base, count)`` slices apportioning ``total`` by ``weights``."""
    counts = partition_set_counts(total, weights)
    ranges: List[Tuple[int, int]] = []
    base = 0
    for count in counts:
        ranges.append((base, count))
        base += count
    return ranges


def partition_ranges_or_shared(
    total: int, weights: Sequence[int]
) -> List[Tuple[int, int]] | None:
    """Like :func:`partition_ranges`, but fall back to sharing when too small.

    A structure with fewer sets/entries than tenants cannot give everyone a
    slice; it stays shared instead (``None``), exactly like BTB-X's companion
    -- its entries are still ASID-colored/tagged, so sharing is false-hit
    free and the only cross-tenant effect is eviction pressure.
    """
    if total < len(weights):
        return None
    return partition_ranges(total, weights)


def set_index(key: int, num_sets: int, alignment_bits: int) -> int:
    """Set index for a key: low-order bits above the alignment bits.

    Non-power-of-two set counts (which arise when matching a storage budget
    exactly, e.g. a 1856-entry conventional BTB) use modulo indexing.
    """
    if num_sets <= 0:
        raise ValueError("a set-associative structure needs at least one set")
    shifted = key >> alignment_bits
    if num_sets & (num_sets - 1) == 0:
        return shifted & (num_sets - 1)
    return shifted % num_sets


class AddressSpacePolicy:
    """ASID mechanics for one structure family (primary + secondary domains).

    The policy tracks one *active* address space and, per named domain, an
    optional per-tenant partition map.  Structures delegate four things to it:

    * which tag value to match (:meth:`colored`),
    * which set/slot range a key may touch (:meth:`set_index`,
      :meth:`modulo_index`, :meth:`entry_slice`),
    * what to report (:meth:`domain_counts`, :meth:`partition_report`),
    * duplication bookkeeping (:meth:`record_allocation`,
      :meth:`duplication_counts`).

    The policy is deliberately mode-agnostic: *when* to flush or retag is the
    adopter's decision (driven by :func:`retains_across_switch`); the policy
    supplies the mechanism so the decision is one line.
    """

    __slots__ = ("active_asid", "_domains", "_alloc_distinct", "_alloc_tagged", "_alloc_hot")

    def __init__(self) -> None:
        #: Address-space identifier of the currently scheduled tenant.  Only
        #: relevant under ASID-tagged retention; stays 0 otherwise.
        self.active_asid: int = 0
        # Domain name -> list of (base, count) tenant slices, or None when the
        # domain is shared (including the too-small fallback).  Insertion
        # order is configuration order, which partition_report() preserves.
        self._domains: Dict[str, List[Tuple[int, int]] | None] = {}
        # Duplication accounting: per structure, the distinct raw keys ever
        # allocated and the distinct (asid, key) pairs.  The gap between the
        # two is the storage ASID tagging duplicates when tenants share code
        # (the same branch/page/line living once per address space).
        self._alloc_distinct: Dict[str, set] = {}
        # Per structure, the allocated key sets split by ASID (summed lengths
        # give the tag-distinct count without materializing (asid, key) pairs).
        self._alloc_tagged: Dict[str, Dict[int, set]] = {}
        # Hot-path cache: structure -> (distinct set, active ASID's tagged
        # set), so the per-update bookkeeping is one dict probe and two set
        # adds.  Invalidated by activate().
        self._alloc_hot: Dict[str, tuple] = {}

    # -- active address space ------------------------------------------------

    def activate(self, asid: int) -> None:
        """Switch the address space subsequent operations are attributed to."""
        self.active_asid = asid
        self._alloc_hot.clear()

    def is_trivial(self, domain: str) -> bool:
        """True when every policy operation over ``domain`` is the identity.

        Holds for ASID 0 (identity color) with ``domain`` unpartitioned --
        the single-tenant and legacy cases.  Hot structures cache this to
        skip the per-probe policy calls; they must re-query it after every
        :meth:`activate`, :meth:`configure` or :meth:`clear`.
        """
        return not self.active_asid and self._domains.get(domain) is None

    def colored(self, value: int) -> int:
        """``value`` with the active ASID mixed into the bits a tag hash folds.

        Used for tag *matching* only -- set indexing and target recovery
        (BTB-X offset concatenation, PDede same-page rebuild) must keep using
        the raw key.  The color constants sit far above any 48-bit virtual
        address, so structures that match full (unhashed) tags can never see
        a cross-ASID false hit; partial-tag structures alias exactly as they
        would between two unrelated PCs.
        """
        asid = self.active_asid
        if not asid:
            return value
        return value ^ ((asid * ASID_SALT) << ASID_SHIFT)

    # -- partitioning ---------------------------------------------------------

    def configure(
        self,
        domain: str,
        total: int,
        weights: Sequence[int],
        fallback_to_shared: bool = False,
    ) -> bool:
        """Partition ``domain``'s ``total`` sets/entries by tenant ``weights``.

        With ``fallback_to_shared`` the domain stays shared (still tagged)
        when it has fewer sets/entries than tenants -- the right semantics
        for small secondary structures; without it, a too-small structure is
        a configuration error (the right semantics for primary arrays).
        Returns True when the domain actually ended up partitioned.
        """
        if fallback_to_shared:
            ranges = partition_ranges_or_shared(total, weights)
        else:
            ranges = partition_ranges(total, weights)
        self._domains[domain] = ranges
        return ranges is not None

    def clear(self, domain: str) -> bool:
        """Return ``domain`` to sharing; True when it had been partitioned."""
        was_partitioned = self._domains.get(domain) is not None
        self._domains[domain] = None
        return was_partitioned

    def domain_counts(self, domain: str) -> List[int] | None:
        """Sets/entries per tenant in ``domain`` (``None`` when shared)."""
        ranges = self._domains.get(domain)
        if ranges is None:
            return None
        return [count for _, count in ranges]

    def partition_report(self, exclude: Sequence[str] = ()) -> Dict[str, List[int]]:
        """Per-tenant counts of every partitioned domain, configuration order.

        Shared domains (including too-small fallbacks) are omitted, so the
        report is exactly "what is actually partitioned right now".
        """
        report: Dict[str, List[int]] = {}
        for domain, ranges in self._domains.items():
            if ranges is None or domain in exclude:
                continue
            report[domain] = [count for _, count in ranges]
        return report

    def _slice(self, domain: str) -> Tuple[int, int] | None:
        ranges = self._domains.get(domain)
        if ranges is None:
            return None
        return ranges[self.active_asid % len(ranges)]

    def active_slice(self, domain: str) -> Tuple[int, int] | None:
        """``(base, count)`` slice of the *active* tenant, ``None`` when shared.

        The batched backend hoists this out of its per-chunk vectorized set
        indexing: within one scheduling turn the active ASID -- and therefore
        the slice -- is constant, so the whole chunk indexes against one
        ``(base, count)`` pair exactly as :meth:`set_index` would per key.
        """
        return self._slice(domain)

    def color_constant(self) -> int:
        """The XOR constant :meth:`colored` applies under the active ASID.

        Zero for ASID 0 (the identity color).  May exceed 64 bits for large
        (cold-semantics) ASIDs, so vectorized tag hashing folds this constant
        separately in arbitrary precision and XORs the folded pieces --
        :func:`repro.common.bitutils.fold_xor` is XOR-linear, which makes the
        split exact.
        """
        asid = self.active_asid
        if not asid:
            return 0
        return (asid * ASID_SALT) << ASID_SHIFT

    def set_index(self, domain: str, key: int, num_sets: int, alignment_bits: int) -> int:
        """Set index for ``key``, confined to the active tenant's partition.

        With ``domain`` shared this is exactly :func:`set_index` over the
        whole structure; with partitions, the key indexes *within* the active
        slice and is offset to the slice's base, so lookups and updates of
        different tenants can never touch the same set.
        """
        sliced = self._slice(domain)
        if sliced is None:
            return set_index(key, num_sets, alignment_bits)
        base, count = sliced
        return base + set_index(key, count, alignment_bits)

    def modulo_index(self, domain: str, value: int, num_sets: int) -> int:
        """Like :meth:`set_index` for an already-hashed value (plain modulo)."""
        sliced = self._slice(domain)
        if sliced is None:
            return value % num_sets
        base, count = sliced
        return base + value % count

    def entry_slice(self, domain: str, total: int) -> Tuple[int, int]:
        """``(base, count)`` entry range a fully-associative scan may touch."""
        sliced = self._slice(domain)
        if sliced is None:
            return 0, total
        return sliced

    # -- duplication accounting ----------------------------------------------

    def record_allocation(self, structure: str, key: object) -> None:
        """Note that ``structure`` was asked to track ``key`` (duplication stats).

        ``key`` identifies the allocated content (a branch PC for main
        structures, a full target page or region number for the deduplication
        structures); the active ASID is folded in automatically.  Called at
        *reference* time -- on every update that wants the content resident --
        not at install time, so the recorded sets are a pure function of the
        update stream: eviction dynamics, partial-tag aliasing and partition
        layouts cannot perturb them.  Pure bookkeeping: never affects
        lookup/update behaviour.
        """
        pair = self._alloc_hot.get(structure)
        if pair is None:
            distinct = self._alloc_distinct.setdefault(structure, set())
            by_asid = self._alloc_tagged.setdefault(structure, {})
            pair = (distinct, by_asid.setdefault(self.active_asid, set()))
            self._alloc_hot[structure] = pair
        pair[0].add(key)
        pair[1].add(key)

    def duplication_counts(self) -> Dict[str, Dict[str, int]]:
        """Distinct vs tag-distinct allocations per structure.

        Maps structure name to ``{"distinct", "tag_distinct", "duplicated"}``:
        ``distinct`` counts unique contents the structure was ever asked to
        track (branch PCs, target pages, regions), ``tag_distinct`` counts
        unique ``(asid, content)`` pairs -- the entries an ASID-tagged
        organization actually has to provide for -- and ``duplicated`` is
        their difference: the capacity spent on storing the *same* content
        once per address space.  Counted over the whole run (warmup
        included): duplication is a footprint property, not a rate, so it is
        deliberately not reset at the measurement boundary.
        """
        counts: Dict[str, Dict[str, int]] = {}
        for structure, distinct in self._alloc_distinct.items():
            tag_distinct = sum(
                len(keys) for keys in self._alloc_tagged[structure].values()
            )
            counts[structure] = {
                "distinct": len(distinct),
                "tag_distinct": tag_distinct,
                "duplicated": tag_distinct - len(distinct),
            }
        return counts


class ASIDCheckpointStore:
    """Bounded per-ASID snapshots of unsharable predictive state.

    Some front-end state cannot be tag-colored because it is positional
    rather than tag-matched -- the return address stack is the example: two
    tenants' call depths interleave, so retention means checkpointing the
    stack per address space and restoring it when the tenant is rescheduled.

    The store is LRU-bounded: cold switch semantics mint a fresh ASID every
    scheduling turn, so without a cap it would grow by one dead entry per
    turn.  An evicted ASID simply resumes with an empty snapshot, like
    hardware with a bounded ASID table.
    """

    __slots__ = ("_checkpoints", "_limit")

    def __init__(self, limit: int = 256) -> None:
        self._checkpoints: Dict[int, list] = {}
        self._limit = limit

    def swap(self, outgoing_asid: int, incoming_asid: int, snapshot: list) -> list:
        """Checkpoint ``outgoing_asid``'s ``snapshot``, restore the incoming one.

        Empty snapshots are not stored (an absent checkpoint already restores
        to empty), and the incoming checkpoint is consumed -- while an address
        space is scheduled its live state is the truth, not the store.
        """
        checkpoints = self._checkpoints
        checkpoints.pop(outgoing_asid, None)
        if snapshot:
            checkpoints[outgoing_asid] = snapshot
            while len(checkpoints) > self._limit:
                checkpoints.pop(next(iter(checkpoints)))
        return checkpoints.pop(incoming_asid, [])

    def __len__(self) -> int:
        return len(self._checkpoints)

"""Configuration dataclasses for the modelled machine.

The default values mirror Table II of the paper (a core resembling Intel Sunny
Cove): 6-wide fetch with a 128-instruction FTQ, a hashed-perceptron direction
predictor, a 64-entry return address stack, a 32 KB/8-way L1-I, a 48 KB/12-way
L1-D, a 512 KB/8-way L2 and a 2 MB/16-way LLC.

All configuration classes are frozen dataclasses: once a simulation is
constructed its parameters cannot drift, which keeps experiment records
trustworthy.
"""

from __future__ import annotations

import enum
import importlib.util
import os
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.common.bitutils import is_power_of_two
from repro.common.errors import ConfigurationError

#: Simulation backends a :class:`MachineConfig` may select.  ``"python"`` is
#: the scalar per-instruction oracle; ``"numpy"`` is the batched
#: structure-of-arrays engine, bit-exact against the oracle (enforced by the
#: differential suite) but only available when numpy is installed.
BACKENDS: tuple[str, ...] = ("python", "numpy")

#: Environment variable consulted when no backend is requested explicitly.
#: Set by ``--backend`` on the CLI so forked worker processes inherit it.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def resolve_backend(backend: str | None) -> str:
    """Resolve and validate a simulation backend name.

    ``None`` consults :data:`BACKEND_ENV_VAR` and falls back to ``"python"``.
    Names are normalized with ``.strip().lower()`` like ``REPRO_SCALE``
    (:func:`repro.experiments.config.current_scale`), so ``"NUMPY"`` or a
    trailing-space ``"numpy "`` from CI YAML selects the backend instead of
    dying as unknown.  Requesting ``"numpy"`` without numpy installed is a
    configuration error rather than a silent fallback: a benchmark silently
    running the scalar oracle would report a fake regression.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "")
    backend = backend.strip().lower() or "python"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown simulation backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "numpy" and importlib.util.find_spec("numpy") is None:
        raise ConfigurationError(
            "backend 'numpy' requested but numpy is not installed; "
            "install the 'numpy' extra or use backend='python'"
        )
    return backend


class BTBStyle(enum.Enum):
    """Which BTB organization a simulation instantiates."""

    CONVENTIONAL = "conventional"
    REDUCED = "rbtb"
    PDEDE = "pdede"
    BTBX = "btbx"
    IDEAL = "ideal"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ASIDMode(enum.Enum):
    """How front-end predictive state survives a context switch.

    ``FLUSH`` discards BTB, direction predictor and RAS contents whenever a
    different address space is scheduled in (the conservative hardware
    baseline).  ``TAGGED`` retains everything: BTB entries are tagged with the
    address-space identifier so tenants share capacity without false cross-ASID
    hits, and the RAS is checkpointed per ASID.  ``PARTITIONED`` retains like
    ``TAGGED`` but additionally set-partitions every BTB's capacity among the
    tenants (weight-proportionally), so tenants can neither hit on nor evict
    each other's entries -- isolating cross-tenant *pollution* from the
    *cold-start* misses that ``FLUSH`` vs ``TAGGED`` exposes.  With no context
    switches and a single tenant all three modes are indistinguishable.
    """

    FLUSH = "flush"
    TAGGED = "tagged"
    PARTITIONED = "partitioned"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def require_positive_int(value: object, what: str) -> int:
    """Return ``value`` if it is a positive ``int``, else raise naming ``what``.

    Rejects ``bool`` (a subclass of ``int``) and floats rather than silently
    truncating them: scheduling quanta, tenant weights and partition maps all
    feed exact integer arithmetic.
    """
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ConfigurationError(f"{what} must be a positive integer, got {value!r}")
    return value


def validate_partition_weights(weights: "Sequence[int]") -> tuple[int, ...]:
    """Validate a per-tenant capacity-partition map (a tuple of weights).

    Weights must be positive integers; they are the scheduling weights of the
    scenario's tenants and determine each tenant's share of every partitioned
    BTB's sets.  Raises :class:`ConfigurationError` naming the offending
    entry.
    """
    if weights is None or len(weights) == 0:
        raise ConfigurationError("partition map needs at least one tenant weight")
    for position, weight in enumerate(weights):
        require_positive_int(weight, f"partition weight #{position}")
    return tuple(weights)


def partition_set_counts(num_sets: int, weights: "Sequence[int]") -> list[int]:
    """Apportion ``num_sets`` BTB sets among tenants proportionally to ``weights``.

    Every tenant receives at least one set; the remainder is distributed by
    largest fractional share (deterministic tie-break on weight, then on the
    earlier tenant), so the counts always sum to exactly ``num_sets``.  Raises
    :class:`ConfigurationError` when the structure has fewer sets than tenants.

    Exact integer arithmetic throughout: each tenant's fractional share is
    ``spare * weight / total``, carried as the ``divmod`` quotient and
    remainder instead of a float.  At high tenant counts the float version
    could round ``int(share)`` past the true floor, driving the leftover
    negative and handing the remainder sets to the wrong tenants; the integer
    remainders ``r / total`` order identically to the fractional shares
    wherever the floats were exact, so small apportionments are unchanged.
    """
    weights = validate_partition_weights(weights)
    tenants = len(weights)
    if num_sets < tenants:
        raise ConfigurationError(
            f"cannot partition {num_sets} set(s) among {tenants} tenants "
            "(each partition needs at least one set)"
        )
    spare = num_sets - tenants
    total = sum(weights)
    counts = []
    remainders = []
    for weight in weights:
        quotient, remainder = divmod(spare * weight, total)
        counts.append(1 + quotient)
        remainders.append(remainder)
    leftover = num_sets - sum(counts)
    by_remainder = sorted(
        range(tenants),
        key=lambda i: (remainders[i], weights[i], -i),
        reverse=True,
    )
    for index in by_remainder[:leftover]:
        counts[index] += 1
    return counts


class ISAStyle(enum.Enum):
    """Instruction-set flavour of a workload.

    Arm64 instructions are fixed 4-byte, so the two least significant bits of
    every PC/target are zero and never stored.  x86 instructions are variable
    length, so offsets are byte-granular and need 1-2 more bits on average
    (Section VI-G).
    """

    ARM64 = "arm64"
    X86 = "x86"

    @property
    def alignment_bits(self) -> int:
        """Number of always-zero low-order address bits."""
        return 2 if self is ISAStyle.ARM64 else 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of a single cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_size: int = 64
    hit_latency: int = 4
    mshrs: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ConfigurationError(f"{self.name}: size and associativity must be positive")
        if not is_power_of_two(self.line_size):
            raise ConfigurationError(f"{self.name}: line size must be a power of two")
        if self.size_bytes % (self.associativity * self.line_size) != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"associativity*line_size ({self.associativity}*{self.line_size})"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigurationError(f"{self.name}: set count {self.num_sets} must be a power of two")

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.associativity * self.line_size)

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_size


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Direction predictor and return-address-stack parameters."""

    kind: str = "hashed_perceptron"
    ras_entries: int = 64
    # Hashed perceptron parameters (ChampSim-like defaults).
    perceptron_history_lengths: tuple[int, ...] = (3, 8, 14, 21, 31)
    perceptron_table_bits: int = 12
    perceptron_weight_bits: int = 8
    # gshare / bimodal parameters.
    gshare_table_bits: int = 14
    gshare_history_bits: int = 14
    bimodal_table_bits: int = 14

    def __post_init__(self) -> None:
        if self.ras_entries <= 0:
            raise ConfigurationError("RAS must have at least one entry")
        if self.kind not in {"hashed_perceptron", "gshare", "bimodal", "always_taken"}:
            raise ConfigurationError(f"unknown direction predictor kind: {self.kind!r}")


@dataclass(frozen=True)
class FDIPConfig:
    """Fetch-directed instruction prefetcher parameters (Figure 2)."""

    enabled: bool = True
    ftq_instructions: int = 128
    # Maximum number of distinct cache blocks the prefetch engine may have in
    # flight; mirrors the L1-I MSHR count plus a small prefetch queue.
    max_inflight_prefetches: int = 16
    # Number of instructions of BPU run-ahead needed for a prefetch to fully
    # hide an L2 hit; derived in the timing model from fetch width and L2
    # latency, but can be pinned for experiments.
    min_useful_lead_instructions: int = 24

    def __post_init__(self) -> None:
        if self.ftq_instructions <= 0:
            raise ConfigurationError("FTQ must hold at least one instruction")
        if self.max_inflight_prefetches <= 0:
            raise ConfigurationError("prefetch engine needs at least one MSHR")


@dataclass(frozen=True)
class CoreConfig:
    """Pipeline-width and penalty parameters of the modelled core (Table II)."""

    fetch_width: int = 6
    decode_width: int = 6
    commit_width: int = 6
    rob_entries: int = 352
    scheduler_entries: int = 128
    load_queue_entries: int = 128
    store_queue_entries: int = 72
    # Penalty (in cycles) of a pipeline flush detected at the execute stage:
    # front-end refill depth of a Sunny-Cove-like pipeline.
    execute_flush_penalty: int = 17
    # Penalty of a resteer performed at the decode stage (Section VI-A's
    # improved branch resolution for direct branches that miss in the BTB).
    decode_resteer_penalty: int = 5
    # Address-space width assumed by the paper for storage accounting.
    virtual_address_bits: int = 48

    def __post_init__(self) -> None:
        if self.fetch_width <= 0:
            raise ConfigurationError("fetch width must be positive")
        if self.execute_flush_penalty < self.decode_resteer_penalty:
            raise ConfigurationError(
                "execute-stage flush cannot be cheaper than a decode-stage resteer"
            )


@dataclass(frozen=True)
class BTBConfig:
    """Parameters common to every BTB organization.

    ``entries`` is the nominal number of branch entries.  Organization-specific
    classes interpret it (e.g. BTB-X derives its set count from it, PDede
    derives its Main-BTB size from the equivalent storage budget).
    """

    style: BTBStyle = BTBStyle.BTBX
    entries: int = 4096
    associativity: int = 8
    tag_bits: int = 12
    isa: ISAStyle = ISAStyle.ARM64
    # BTB-X specific: per-way offset field widths.  ``None`` selects the
    # paper's widths for the configured ISA.
    btbx_way_offset_bits: tuple[int, ...] | None = None
    # BTB-XC (companion) entries as a fraction of BTB-X entries (1/64 in the
    # paper).  Zero disables the companion.
    btbx_companion_divisor: int = 64
    # PDede specific knobs.
    pdede_page_btb_entries: int | None = None
    pdede_region_btb_entries: int = 4
    pdede_page_btb_assoc: int = 16
    pdede_same_page_way_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigurationError("BTB must have at least one entry")
        if self.associativity <= 0:
            raise ConfigurationError("BTB associativity must be positive")
        if self.entries % self.associativity != 0:
            raise ConfigurationError(
                f"BTB entries ({self.entries}) must be divisible by associativity "
                f"({self.associativity})"
            )
        if self.tag_bits <= 0:
            raise ConfigurationError("BTB tag width must be positive")

    @property
    def num_sets(self) -> int:
        """Number of sets of the (main) BTB structure."""
        return self.entries // self.associativity


@dataclass(frozen=True)
class MachineConfig:
    """Full machine description: core, predictor, FDIP, BTB, cache hierarchy."""

    core: CoreConfig = field(default_factory=CoreConfig)
    branch_predictor: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    fdip: FDIPConfig = field(default_factory=FDIPConfig)
    btb: BTBConfig = field(default_factory=BTBConfig)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 32 * 1024, 8, hit_latency=4, mshrs=8)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 48 * 1024, 12, hit_latency=5, mshrs=16)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 512 * 1024, 8, hit_latency=14, mshrs=32)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig("LLC", 2 * 1024 * 1024, 16, hit_latency=34, mshrs=64)
    )
    memory_latency: int = 200
    #: Context-switch handling of front-end predictive state (scenario runs).
    asid_mode: ASIDMode = ASIDMode.FLUSH
    #: Context-switch handling of the cache hierarchy.  ``None`` (the
    #: default) keeps the legacy shared, untagged hierarchy that ignores
    #: switches entirely; an :class:`ASIDMode` makes every cache level flush,
    #: ASID-tag (PIPT-style sharing) or set-partition across switches, driven
    #: by the same :mod:`repro.common.asid` policy as the BTBs.
    cache_asid_mode: ASIDMode | None = None
    #: Simulation backend: ``"python"`` (the scalar oracle) or ``"numpy"``
    #: (the batched structure-of-arrays engine).  Deliberately excluded from
    #: experiment cache identity -- the backends are bit-exact equals.
    backend: str = "python"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown simulation backend {self.backend!r}; expected one of {BACKENDS}"
            )

    def with_btb(self, **btb_overrides: object) -> "MachineConfig":
        """Return a copy of this machine with BTB parameters replaced."""
        return replace(self, btb=replace(self.btb, **btb_overrides))

    def with_fdip(self, enabled: bool) -> "MachineConfig":
        """Return a copy of this machine with FDIP enabled or disabled."""
        return replace(self, fdip=replace(self.fdip, enabled=enabled))

    def with_asid_mode(self, mode: ASIDMode) -> "MachineConfig":
        """Return a copy of this machine with the given ASID mode."""
        return replace(self, asid_mode=mode)

    def with_cache_asid_mode(self, mode: ASIDMode | None) -> "MachineConfig":
        """Return a copy of this machine with the given cache ASID mode."""
        return replace(self, cache_asid_mode=mode)

    def with_backend(self, backend: str) -> "MachineConfig":
        """Return a copy of this machine with the given simulation backend."""
        return replace(self, backend=resolve_backend(backend))


@dataclass(frozen=True)
class SimulationConfig:
    """Run-length parameters of a single simulation."""

    warmup_instructions: int = 0
    simulation_instructions: int | None = None
    seed: int = 0
    collect_per_branch_stats: bool = False

    def __post_init__(self) -> None:
        if self.warmup_instructions < 0:
            raise ConfigurationError("warmup length cannot be negative")
        if self.simulation_instructions is not None and self.simulation_instructions <= 0:
            raise ConfigurationError("simulation length must be positive when given")


def default_machine_config(
    btb_style: BTBStyle = BTBStyle.BTBX,
    btb_entries: int = 4096,
    fdip_enabled: bool = True,
    isa: ISAStyle = ISAStyle.ARM64,
    asid_mode: ASIDMode = ASIDMode.FLUSH,
    cache_asid_mode: ASIDMode | None = None,
    backend: str | None = None,
) -> MachineConfig:
    """Build the paper's Table II machine with the requested BTB organization.

    ``btb_entries`` is interpreted as the branch capacity of the requested
    organization; use :mod:`repro.btb.storage` to convert a storage budget into
    per-organization entry counts.  ``cache_asid_mode=None`` keeps the legacy
    ASID-oblivious cache hierarchy.  ``backend=None`` consults the
    ``REPRO_BACKEND`` environment variable (see :func:`resolve_backend`), so a
    single CLI flag reaches every worker process.
    """
    associativity = 8 if btb_style is not BTBStyle.IDEAL else 1
    btb = BTBConfig(style=btb_style, entries=btb_entries, associativity=associativity, isa=isa)
    machine = MachineConfig(
        btb=btb,
        asid_mode=asid_mode,
        cache_asid_mode=cache_asid_mode,
        backend=resolve_backend(backend),
    )
    return machine.with_fdip(fdip_enabled)


def summarize_machine(config: MachineConfig) -> Mapping[str, str]:
    """Return a human-readable flat summary of a machine configuration.

    Useful for experiment logs and EXPERIMENTS.md generation.
    """
    return {
        "fetch": f"{config.core.fetch_width}-wide, {config.fdip.ftq_instructions}-instruction FTQ",
        "branch_predictor": config.branch_predictor.kind,
        "ras": f"{config.branch_predictor.ras_entries} entries",
        "btb": f"{config.btb.style.value}, {config.btb.entries} entries, {config.btb.associativity}-way",
        "fdip": "enabled" if config.fdip.enabled else "disabled",
        "l1i": f"{config.l1i.size_bytes // 1024}KB, {config.l1i.associativity}-way",
        "l1d": f"{config.l1d.size_bytes // 1024}KB, {config.l1d.associativity}-way",
        "l2": f"{config.l2.size_bytes // 1024}KB, {config.l2.associativity}-way",
        "llc": f"{config.llc.size_bytes // 1024 // 1024}MB, {config.llc.associativity}-way",
    }

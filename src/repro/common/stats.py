"""Lightweight statistics registry used by every simulated structure.

Hardware simulators accumulate large numbers of named event counters (hits,
misses, flushes, prefetches issued, ...).  :class:`Stats` provides a small,
dependency-free registry with:

* integer counters (``inc``) and floating accumulators (``add``),
* hierarchical grouping via :class:`StatGroup` (``stats.group("btb")``),
* distribution recording (``observe``) with cheap summary statistics,
* merging of registries from independent simulations (``merge``),
* conversion to a flat ``dict`` for reporting and JSON export.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping


@dataclass
class Distribution:
    """Streaming summary of an observed value distribution.

    Only constant-space summary statistics are kept (count, sum, min, max and a
    bounded histogram) so that distributions can be recorded for every dynamic
    branch without memory blow-up.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    histogram: Dict[int, int] = field(default_factory=dict)

    def observe(self, value: float, bucket: int | None = None) -> None:
        """Record one observation; ``bucket`` overrides the histogram bucket."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        key = int(value) if bucket is None else bucket
        self.histogram[key] = self.histogram.get(key, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def cumulative_fraction(self, threshold: int) -> float:
        """Fraction of observations whose histogram bucket is <= ``threshold``."""
        if not self.count:
            return 0.0
        covered = sum(n for bucket, n in self.histogram.items() if bucket <= threshold)
        return covered / self.count

    def merge(self, other: "Distribution") -> None:
        """Fold another distribution's observations into this one."""
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        for bucket, n in other.histogram.items():
            self.histogram[bucket] = self.histogram.get(bucket, 0) + n


class StatGroup:
    """A named view into a :class:`Stats` registry.

    All counter names used through the group are prefixed with the group name,
    so independent structures (e.g. two cache levels) can use identical local
    counter names without collisions.
    """

    def __init__(self, stats: "Stats", prefix: str) -> None:
        self._stats = stats
        self._prefix = prefix
        # inc()/add() sit on the simulator's innermost loops: prefixed key
        # strings are interned per group, and increments write straight into
        # the registry's counter dict (one dict op instead of two calls).
        self._counters = stats._counters
        self._key_cache: Dict[str, str] = {}

    @property
    def prefix(self) -> str:
        """The name prefix applied to every counter in this group."""
        return self._prefix

    def _key(self, name: str) -> str:
        key = self._key_cache.get(name)
        if key is None:
            key = self._key_cache[name] = f"{self._prefix}.{name}"
        return key

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment the integer counter ``name`` by ``amount``."""
        key = self._key_cache.get(name)
        if key is None:
            key = self._key_cache[name] = f"{self._prefix}.{name}"
        self._counters[key] += amount

    def add(self, name: str, amount: float) -> None:
        """Add ``amount`` to the floating accumulator ``name``."""
        key = self._key_cache.get(name)
        if key is None:
            key = self._key_cache[name] = f"{self._prefix}.{name}"
        self._counters[key] += amount

    def observe(self, name: str, value: float, bucket: int | None = None) -> None:
        """Record ``value`` in the distribution ``name``."""
        self._stats.observe(self._key(name), value, bucket)

    def get(self, name: str) -> float:
        """Read the counter ``name`` (0 when never written)."""
        return self._stats.get(self._key(name))

    def distribution(self, name: str) -> Distribution:
        """Return the distribution ``name``, creating it if necessary."""
        return self._stats.distribution(self._key(name))

    def subgroup(self, name: str) -> "StatGroup":
        """Return a nested group (``prefix.name``)."""
        return StatGroup(self._stats, self._key(name))


class Stats:
    """Flat registry of named counters, accumulators and distributions."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)
        self._distributions: Dict[str, Distribution] = {}

    # -- writing ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (default 1)."""
        self._counters[name] += amount

    def add(self, name: str, amount: float) -> None:
        """Add a floating ``amount`` to counter ``name``."""
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        """Overwrite counter ``name`` with ``value``."""
        self._counters[name] = value

    def observe(self, name: str, value: float, bucket: int | None = None) -> None:
        """Record ``value`` into the distribution ``name``."""
        self.distribution(name).observe(value, bucket)

    # -- reading ---------------------------------------------------------

    def get(self, name: str) -> float:
        """Read counter ``name``; missing counters read as 0."""
        return self._counters.get(name, 0.0)

    def distribution(self, name: str) -> Distribution:
        """Return (and lazily create) the distribution ``name``."""
        if name not in self._distributions:
            self._distributions[name] = Distribution()
        return self._distributions[name]

    def counters(self) -> Mapping[str, float]:
        """Read-only view of all counters."""
        return dict(self._counters)

    def distributions(self) -> Mapping[str, Distribution]:
        """Read-only view of all distributions."""
        return dict(self._distributions)

    def group(self, prefix: str) -> StatGroup:
        """Return a prefixed view used by one simulated structure."""
        return StatGroup(self, prefix)

    def ratio(self, numerator: str, denominator: str) -> float:
        """Convenience: counter ratio with a zero-safe denominator."""
        denom = self.get(denominator)
        return self.get(numerator) / denom if denom else 0.0

    def per_kilo(self, numerator: str, denominator: str) -> float:
        """Events per 1000 units of ``denominator`` (e.g. MPKI)."""
        return 1000.0 * self.ratio(numerator, denominator)

    # -- combination ------------------------------------------------------

    def merge(self, other: "Stats") -> None:
        """Fold counters and distributions from ``other`` into this registry."""
        for name, value in other._counters.items():
            self._counters[name] += value
        for name, dist in other._distributions.items():
            self.distribution(name).merge(dist)

    def to_dict(self) -> Dict[str, float]:
        """Flatten to a plain dict (counters only) for reporting/JSON export."""
        return {name: value for name, value in sorted(self._counters.items())}

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counters.items())[:8])
        suffix = ", ..." if len(self._counters) > 8 else ""
        return f"Stats({body}{suffix})"


def merge_all(stats_list: Iterable[Stats]) -> Stats:
    """Merge an iterable of registries into a fresh one."""
    merged = Stats()
    for stats in stats_list:
        merged.merge(stats)
    return merged

"""Reusable replacement-policy state for set-associative structures.

Two policies are provided:

* :class:`LRUState` -- true least-recently-used ordering, used by the caches
  and all BTB organizations.  BTB-X uses the *constrained* variant
  (:meth:`LRUState.victim` with an ``eligible`` subset) described in Section V:
  only the ways whose offset field can hold the incoming branch's offset
  compete for replacement, but recency updates are shared across the whole set.
* :class:`TreePLRUState` -- tree pseudo-LRU, provided for ablation studies of
  replacement-policy sensitivity.

Both classes manage a single set; callers keep one instance per set.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class LRUState:
    """True-LRU recency tracking for one set of ``num_ways`` ways."""

    def __init__(self, num_ways: int) -> None:
        if num_ways <= 0:
            raise ValueError("a set needs at least one way")
        self._num_ways = num_ways
        # _stamps[i] is a monotonically increasing access timestamp; smaller
        # means less recently used.  Start all ways equally old.
        self._stamps = [0] * num_ways
        self._clock = 0

    @property
    def num_ways(self) -> int:
        """Number of ways tracked by this state."""
        return self._num_ways

    def touch(self, way: int) -> None:
        """Mark ``way`` as most recently used.

        The hottest call in every set-associative structure, so the bounds
        check rides on the list store itself: a too-large way still faults
        with ``IndexError``, and internal callers only ever produce ways from
        scans or :meth:`victim` (never negative).
        """
        self._clock += 1
        self._stamps[way] = self._clock

    def victim(self, eligible: Sequence[int] | None = None) -> int:
        """Return the least recently used way among ``eligible`` ways.

        ``eligible`` defaults to all ways.  This implements BTB-X's modified
        LRU: "compare the LRU counters of only the entries that can accommodate
        the target offset and replace the one that is least recently used among
        them" (Section V-B).
        """
        ways = range(self._num_ways) if eligible is None else eligible
        candidates = list(ways)
        if not candidates:
            raise ValueError("victim selection requires at least one eligible way")
        for way in candidates:
            self._check_way(way)
        return min(candidates, key=lambda way: self._stamps[way])

    def recency_order(self) -> list[int]:
        """Return way indices ordered from least to most recently used."""
        return sorted(range(self._num_ways), key=lambda way: self._stamps[way])

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self._num_ways:
            raise IndexError(f"way {way} out of range [0, {self._num_ways})")


class TreePLRUState:
    """Tree pseudo-LRU for one set; requires a power-of-two way count."""

    def __init__(self, num_ways: int) -> None:
        if num_ways <= 0 or num_ways & (num_ways - 1):
            raise ValueError("tree PLRU requires a positive power-of-two way count")
        self._num_ways = num_ways
        self._bits = [False] * max(num_ways - 1, 1)

    @property
    def num_ways(self) -> int:
        """Number of ways tracked by this state."""
        return self._num_ways

    def touch(self, way: int) -> None:
        """Update the tree so that ``way`` becomes protected (recently used)."""
        if not 0 <= way < self._num_ways:
            raise IndexError(f"way {way} out of range")
        if self._num_ways == 1:
            return
        node = 0
        low, high = 0, self._num_ways
        while high - low > 1:
            mid = (low + high) // 2
            went_right = way >= mid
            # Point the bit away from the accessed side.
            self._bits[node] = not went_right
            if went_right:
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid

    def victim(self, eligible: Iterable[int] | None = None) -> int:
        """Return the pseudo-LRU victim.

        When ``eligible`` is given, the tree walk is still followed but the
        result is snapped to the eligible way with the smallest protection,
        falling back to the first eligible way.  (Exact constrained PLRU is not
        defined in the paper; this approximation is only used in ablations.)
        """
        if self._num_ways == 1:
            return 0
        node = 0
        low, high = 0, self._num_ways
        while high - low > 1:
            mid = (low + high) // 2
            if self._bits[node]:
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid
        choice = low
        if eligible is None:
            return choice
        eligible_list = list(eligible)
        if not eligible_list:
            raise ValueError("victim selection requires at least one eligible way")
        if choice in eligible_list:
            return choice
        return eligible_list[0]

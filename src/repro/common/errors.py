"""Exception hierarchy for the BTB-X reproduction package.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so that callers can catch library-specific failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is internally inconsistent.

    Examples include a cache whose size is not divisible by its associativity,
    a BTB with a non-power-of-two set count, or a storage budget that cannot
    accommodate a single entry.
    """


class TraceFormatError(ReproError):
    """Raised when a trace file or record stream is malformed."""


class SimulationError(ReproError):
    """Raised when the simulator reaches an impossible state.

    This always indicates a bug in the model (for example, committing a branch
    that was never fetched) rather than a problem with user input.
    """


class WorkloadError(ReproError):
    """Raised when a synthetic workload cannot be generated as requested."""


class EnergyModelError(ReproError):
    """Raised when the SRAM energy/latency model receives invalid geometry."""

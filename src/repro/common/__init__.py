"""Shared utilities used by every subsystem of the BTB-X reproduction.

The :mod:`repro.common` package intentionally has no dependencies on the rest of
the code base.  It provides:

* :mod:`repro.common.bitutils` -- bit manipulation helpers (alignment, masking,
  bit-length arithmetic) used by the BTB organizations and the offset analysis.
* :mod:`repro.common.config` -- frozen dataclass configuration objects for the
  core, caches, BTBs and simulations.
* :mod:`repro.common.stats` -- a lightweight named-counter registry with
  hierarchical grouping, used by every simulated structure.
* :mod:`repro.common.lru` -- reusable LRU/pseudo-LRU replacement state shared by
  the caches and the BTB organizations.
* :mod:`repro.common.errors` -- exception hierarchy for the package.
* :mod:`repro.common.asid` -- the cross-layer address-space policy (tag
  coloring, capacity partitioning, duplication accounting) adopted by the BTB
  organizations, the BPU and the memory hierarchy.
"""

from repro.common.asid import (
    AddressSpacePolicy,
    ASIDCheckpointStore,
    retains_across_switch,
)
from repro.common.bitutils import (
    align_down,
    align_up,
    bit_length,
    bits_to_bytes,
    bits_to_kib,
    extract_bits,
    fold_xor,
    is_power_of_two,
    log2_exact,
    mask,
)
from repro.common.config import (
    BTBStyle,
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    FDIPConfig,
    MachineConfig,
    SimulationConfig,
    default_machine_config,
)
from repro.common.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceFormatError,
)
from repro.common.lru import LRUState, TreePLRUState
from repro.common.stats import StatGroup, Stats

__all__ = [
    "AddressSpacePolicy",
    "ASIDCheckpointStore",
    "retains_across_switch",
    "align_down",
    "align_up",
    "bit_length",
    "bits_to_bytes",
    "bits_to_kib",
    "extract_bits",
    "fold_xor",
    "is_power_of_two",
    "log2_exact",
    "mask",
    "BTBStyle",
    "BranchPredictorConfig",
    "CacheConfig",
    "CoreConfig",
    "FDIPConfig",
    "MachineConfig",
    "SimulationConfig",
    "default_machine_config",
    "ConfigurationError",
    "ReproError",
    "SimulationError",
    "TraceFormatError",
    "LRUState",
    "TreePLRUState",
    "StatGroup",
    "Stats",
]

"""CLI output emitter wired to :mod:`logging`.

The CLI used to report via bare ``print``.  This module routes the same
text through a ``repro.cli`` logger so verbosity is controllable without
changing the default byte-for-byte output:

* :func:`result` -- the command's product (reports, tables, JSON paths).
  Emitted at a custom ``RESULT`` level above ``INFO`` so ``--quiet`` keeps
  it while suppressing progress chatter.
* :func:`info` -- progress/side-channel notes ("(raw result written to
  ...)", per-driver timing brackets).  Hidden by ``--quiet``.
* :func:`debug` -- extra diagnostics enabled by ``--verbose``.
* :func:`warn` -- always shown.

The handler resolves ``sys.stdout`` at emit time (not at import), so
pytest's ``capsys`` captures the output exactly like ``print`` did.
"""

from __future__ import annotations

import logging
import sys

#: Between INFO (20) and WARNING (30): the command's actual product.
RESULT = 25

logging.addLevelName(RESULT, "RESULT")

logger = logging.getLogger("repro.cli")


class _StdoutHandler(logging.Handler):
    """Writes plain messages to the *current* ``sys.stdout``."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stdout.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - mirrors logging's own guard
            self.handleError(record)


def _ensure_handler() -> None:
    if not any(isinstance(h, _StdoutHandler) for h in logger.handlers):
        handler = _StdoutHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        logger.propagate = False
        logger.setLevel(logging.INFO)


_ensure_handler()


def configure(verbosity: int = 0) -> None:
    """Set the emitter's threshold: -1 quiet, 0 default, >=1 verbose."""
    _ensure_handler()
    if verbosity < 0:
        logger.setLevel(RESULT)
    elif verbosity == 0:
        logger.setLevel(logging.INFO)
    else:
        logger.setLevel(logging.DEBUG)


def result(message: str = "") -> None:
    """Emit the command's product; survives ``--quiet``."""
    logger.log(RESULT, message)


def info(message: str = "") -> None:
    """Emit a progress note; hidden by ``--quiet``."""
    logger.info(message)


def debug(message: str = "") -> None:
    """Emit a diagnostic; shown only with ``--verbose``."""
    logger.debug(message)


def warn(message: str = "") -> None:
    """Emit a warning; always shown."""
    logger.warning(message)

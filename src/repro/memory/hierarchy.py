"""The instruction-side memory hierarchy: L1-I -> L2 -> LLC -> memory.

Two operations are exposed:

* :meth:`MemoryHierarchy.fetch` -- a demand instruction fetch.  Returns the
  latency in cycles (the L1-I hit latency is considered pipelined and costs
  nothing extra; misses cost the latency of the level that supplies the block)
  and fills all levels on the way back (inclusive fill).
* :meth:`MemoryHierarchy.prefetch` -- an FDIP prefetch for a block.  It probes
  the L1-I without disturbing demand-path statistics and, on a miss, fills the
  block into the L1-I (and below), returning the latency after which the block
  becomes usable.

The L1-D is constructed for completeness (data accesses can be replayed
through :meth:`MemoryHierarchy.data_access`) but the paper's experiments only
exercise the instruction side.

Context switches: the hierarchy is a tenant-aware citizen like the BTBs.
:attr:`MachineConfig.cache_asid_mode` selects what happens when a different
address space is scheduled in --

* ``None`` (the default) -- the legacy shared, untagged hierarchy: switches
  are invisible to the caches, so tenants false-share lines whenever their
  virtual addresses collide.  Every pre-existing result is produced in this
  mode;
* ``ASIDMode.FLUSH`` -- every level is invalidated on a switch (hardware
  without ASID-tagged caches, e.g. VIVT designs);
* ``ASIDMode.TAGGED`` -- lines are tagged with the owning address space
  (PIPT-style sharing): capacity is shared, switches cost nothing, and
  cross-tenant false hits are impossible;
* ``ASIDMode.PARTITIONED`` -- tagged, plus every level's sets are split
  weight-proportionally among the tenants (see
  :meth:`MemoryHierarchy.configure_partitions`), so tenants cannot evict each
  other's lines.

All four behaviours are driven by the same
:class:`repro.common.asid.AddressSpacePolicy` the BTB organizations use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.common.asid import retains_across_switch
from repro.common.config import ASIDMode, MachineConfig
from repro.common.stats import Stats
from repro.memory.cache import SetAssociativeCache


@dataclass(frozen=True, slots=True)
class FetchResult:
    """Outcome of a demand fetch or prefetch."""

    latency: int
    level: str
    l1i_hit: bool


#: Shared results for the zero-latency outcomes; fetch() runs once per cache
#: block of the instruction stream and hits dominate, so the per-call
#: allocation is worth dodging (the dataclass is frozen, making the sharing
#: invisible).
_L1I_HIT = FetchResult(latency=0, level="L1I", l1i_hit=True)
_L1D_HIT = FetchResult(latency=0, level="L1D", l1i_hit=False)
_PREFETCH_REDUNDANT = FetchResult(latency=0, level="L1I", l1i_hit=True)
_PREFETCH_DROPPED = FetchResult(latency=0, level="dropped", l1i_hit=False)

#: Per-supplier fill counter names, precomputed so the miss paths don't build
#: f-strings per fill.
_IFETCH_FILL_KEYS = {"L2": "ifetch.fills.l2", "LLC": "ifetch.fills.llc", "DRAM": "ifetch.fills.dram"}
_PREFETCH_FILL_KEYS = {
    "L2": "prefetch.fills.l2",
    "LLC": "prefetch.fills.llc",
    "DRAM": "prefetch.fills.dram",
}


class MemoryHierarchy:
    """L1-I/L1-D + unified L2 + LLC + fixed-latency memory."""

    def __init__(self, config: MachineConfig, stats: Stats | None = None) -> None:
        self.config = config
        self._stats_registry = stats if stats is not None else Stats()
        self.stats = self._stats_registry.group("memory")
        self.l1i = SetAssociativeCache(config.l1i, self._stats_registry)
        self.l1d = SetAssociativeCache(config.l1d, self._stats_registry)
        self.l2 = SetAssociativeCache(config.l2, self._stats_registry)
        self.llc = SetAssociativeCache(config.llc, self._stats_registry)
        self.memory_latency = config.memory_latency
        #: Context-switch policy of the caches; ``None`` is the legacy
        #: ASID-oblivious hierarchy (see the module docstring).
        self.asid_mode = config.cache_asid_mode
        self._active_asid = 0

    def _levels(self) -> tuple[SetAssociativeCache, ...]:
        return (self.l1i, self.l1d, self.l2, self.llc)

    # -- context switches ------------------------------------------------------

    @property
    def active_asid(self) -> int:
        """Address space the hierarchy currently attributes lines to."""
        return self._active_asid

    def context_switch(self, asid: int) -> None:
        """Schedule address space ``asid`` in, applying the cache ASID mode.

        A no-op when ``asid`` is already active or the hierarchy runs in
        legacy (``None``) mode.  ``FLUSH`` invalidates every level; the
        retention modes only re-color: partitioned indexing keys off the same
        active-ASID switch, exactly like the BTBs.
        """
        if self.asid_mode is None or asid == self._active_asid:
            self._active_asid = asid
            return
        self.stats.inc("context_switches")
        if retains_across_switch(self.asid_mode):
            for cache in self._levels():
                cache.set_active_asid(asid)
        else:
            self.invalidate_all()
        self._active_asid = asid

    def configure_partitions(self, weights: Sequence[int] | None) -> None:
        """Split every level's sets among tenants (``None`` to share).

        Mirrors :meth:`repro.btb.base.BTBBase.configure_partitions`: slices
        are weight-proportional and levels with fewer sets than tenants fall
        back to tagged sharing.  Only meaningful under
        ``ASIDMode.PARTITIONED``; callers apply it before the run starts.
        """
        for cache in self._levels():
            cache.configure_partitions(weights)

    def partition_report(self) -> Dict[str, List[int]]:
        """Per-tenant set counts of every partitioned level (may be empty)."""
        report: Dict[str, List[int]] = {}
        for name, cache in (
            ("l1i", self.l1i),
            ("l1d", self.l1d),
            ("l2", self.l2),
            ("llc", self.llc),
        ):
            counts = cache.partition_set_counts()
            if counts is not None:
                report[name] = counts
        return report

    # -- instruction side -----------------------------------------------------

    def _miss_latency(self, addr: int, is_prefetch: bool) -> tuple[int, str]:
        """Latency and supplier level for a block missing in the L1-I."""
        if self.l2.access(addr, is_prefetch=is_prefetch).hit:
            return self.l2.hit_latency, "L2"
        if self.llc.access(addr, is_prefetch=is_prefetch).hit:
            self.l2.fill(addr, prefetched=is_prefetch)
            return self.llc.hit_latency, "LLC"
        # Miss everywhere: fetch from memory and fill the whole hierarchy.
        self.llc.fill(addr, prefetched=is_prefetch)
        self.l2.fill(addr, prefetched=is_prefetch)
        return self.memory_latency, "DRAM"

    def fetch(self, addr: int) -> FetchResult:
        """Demand instruction fetch of the block containing ``addr``."""
        self.stats.inc("ifetch.accesses")
        if self.l1i.access(addr).hit:
            return _L1I_HIT
        self.stats.inc("ifetch.l1i_misses")
        latency, level = self._miss_latency(addr, is_prefetch=False)
        self.l1i.fill(addr)
        self.stats.inc(_IFETCH_FILL_KEYS[level])
        return FetchResult(latency=latency, level=level, l1i_hit=False)

    def fetch_batch(self, addresses: Sequence[int]) -> List[FetchResult]:
        """Demand-fetch ``addresses`` in order, returning one result each.

        The batched backend pre-executes every new-block fetch of a scheduling
        chunk through here.  Within a chunk only demand fetches mutate the
        hierarchy, so running them front-to-back before the per-instruction
        walk observes exactly the state the scalar loop would have.
        """
        fetch = self.fetch
        return [fetch(addr) for addr in addresses]

    def prefetch(self, addr: int) -> FetchResult:
        """FDIP prefetch of the block containing ``addr`` into the L1-I."""
        self.stats.inc("prefetch.issued")
        if self.l1i.contains(addr):
            self.stats.inc("prefetch.redundant")
            return _PREFETCH_REDUNDANT
        if not self.l1i.note_outstanding(addr):
            # All MSHRs busy: the prefetch is dropped.
            self.stats.inc("prefetch.dropped")
            return _PREFETCH_DROPPED
        latency, level = self._miss_latency(addr, is_prefetch=True)
        self.l1i.fill(addr, prefetched=True)
        self.stats.inc(_PREFETCH_FILL_KEYS[level])
        return FetchResult(latency=latency, level=level, l1i_hit=False)

    # -- data side (provided for completeness) ---------------------------------

    def data_access(self, addr: int, is_write: bool = False) -> FetchResult:
        """Demand data access through L1-D -> L2 -> LLC -> memory."""
        self.stats.inc("dfetch.accesses")
        if self.l1d.access(addr, is_write=is_write).hit:
            return _L1D_HIT
        latency, level = self._miss_latency(addr, is_prefetch=False)
        self.l1d.fill(addr, dirty=is_write)
        return FetchResult(latency=latency, level=level, l1i_hit=False)

    # -- maintenance -------------------------------------------------------------

    def invalidate_all(self) -> None:
        """Drop every cached block in every level."""
        for cache in self._levels():
            cache.invalidate_all()

    def line_size(self) -> int:
        """Instruction cache line size in bytes."""
        return self.l1i.line_size


#: Re-exported for callers that key off the mode enum alongside the hierarchy.
__all__ = ["FetchResult", "MemoryHierarchy", "ASIDMode"]

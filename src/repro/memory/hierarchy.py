"""The instruction-side memory hierarchy: L1-I -> L2 -> LLC -> memory.

Two operations are exposed:

* :meth:`MemoryHierarchy.fetch` -- a demand instruction fetch.  Returns the
  latency in cycles (the L1-I hit latency is considered pipelined and costs
  nothing extra; misses cost the latency of the level that supplies the block)
  and fills all levels on the way back (inclusive fill).
* :meth:`MemoryHierarchy.prefetch` -- an FDIP prefetch for a block.  It probes
  the L1-I without disturbing demand-path statistics and, on a miss, fills the
  block into the L1-I (and below), returning the latency after which the block
  becomes usable.

The L1-D is constructed for completeness (data accesses can be replayed
through :meth:`MemoryHierarchy.data_access`) but the paper's experiments only
exercise the instruction side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MachineConfig
from repro.common.stats import Stats
from repro.memory.cache import Cache


@dataclass(frozen=True)
class FetchResult:
    """Outcome of a demand fetch or prefetch."""

    latency: int
    level: str
    l1i_hit: bool


class MemoryHierarchy:
    """L1-I/L1-D + unified L2 + LLC + fixed-latency memory."""

    def __init__(self, config: MachineConfig, stats: Stats | None = None) -> None:
        self.config = config
        self._stats_registry = stats if stats is not None else Stats()
        self.stats = self._stats_registry.group("memory")
        self.l1i = Cache(config.l1i, self._stats_registry)
        self.l1d = Cache(config.l1d, self._stats_registry)
        self.l2 = Cache(config.l2, self._stats_registry)
        self.llc = Cache(config.llc, self._stats_registry)
        self.memory_latency = config.memory_latency

    # -- instruction side -----------------------------------------------------

    def _miss_latency(self, addr: int, is_prefetch: bool) -> tuple[int, str]:
        """Latency and supplier level for a block missing in the L1-I."""
        if self.l2.access(addr, is_prefetch=is_prefetch).hit:
            return self.l2.hit_latency, "L2"
        if self.llc.access(addr, is_prefetch=is_prefetch).hit:
            self.l2.fill(addr, prefetched=is_prefetch)
            return self.llc.hit_latency, "LLC"
        # Miss everywhere: fetch from memory and fill the whole hierarchy.
        self.llc.fill(addr, prefetched=is_prefetch)
        self.l2.fill(addr, prefetched=is_prefetch)
        return self.memory_latency, "DRAM"

    def fetch(self, addr: int) -> FetchResult:
        """Demand instruction fetch of the block containing ``addr``."""
        self.stats.inc("ifetch.accesses")
        if self.l1i.access(addr).hit:
            return FetchResult(latency=0, level="L1I", l1i_hit=True)
        self.stats.inc("ifetch.l1i_misses")
        latency, level = self._miss_latency(addr, is_prefetch=False)
        self.l1i.fill(addr)
        self.stats.inc(f"ifetch.fills.{level.lower()}")
        return FetchResult(latency=latency, level=level, l1i_hit=False)

    def prefetch(self, addr: int) -> FetchResult:
        """FDIP prefetch of the block containing ``addr`` into the L1-I."""
        self.stats.inc("prefetch.issued")
        if self.l1i.contains(addr):
            self.stats.inc("prefetch.redundant")
            return FetchResult(latency=0, level="L1I", l1i_hit=True)
        if not self.l1i.note_outstanding(addr):
            # All MSHRs busy: the prefetch is dropped.
            self.stats.inc("prefetch.dropped")
            return FetchResult(latency=0, level="dropped", l1i_hit=False)
        latency, level = self._miss_latency(addr, is_prefetch=True)
        self.l1i.fill(addr, prefetched=True)
        self.stats.inc(f"prefetch.fills.{level.lower()}")
        return FetchResult(latency=latency, level=level, l1i_hit=False)

    # -- data side (provided for completeness) ---------------------------------

    def data_access(self, addr: int, is_write: bool = False) -> FetchResult:
        """Demand data access through L1-D -> L2 -> LLC -> memory."""
        self.stats.inc("dfetch.accesses")
        if self.l1d.access(addr, is_write=is_write).hit:
            return FetchResult(latency=0, level="L1D", l1i_hit=False)
        latency, level = self._miss_latency(addr, is_prefetch=False)
        self.l1d.fill(addr, dirty=is_write)
        return FetchResult(latency=latency, level=level, l1i_hit=False)

    # -- maintenance -------------------------------------------------------------

    def invalidate_all(self) -> None:
        """Drop every cached block in every level."""
        for cache in (self.l1i, self.l1d, self.l2, self.llc):
            cache.invalidate_all()

    def line_size(self) -> int:
        """Instruction cache line size in bytes."""
        return self.l1i.line_size

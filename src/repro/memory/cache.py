"""A single set-associative cache level with LRU replacement.

The model is functional (hit/miss state plus access counters) with enough
timing metadata (hit latency, MSHR count) for the interval timing model and
the FDIP prefetch engine.  Writes are modelled as allocate-on-miss like reads;
dirty state is tracked so write-back traffic can be reported, although the
front-end experiments never generate dirty lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.config import CacheConfig
from repro.common.lru import LRUState
from repro.common.stats import Stats


@dataclass(frozen=True)
class CacheAccessResult:
    """Outcome of an access to one cache level."""

    hit: bool
    evicted_block: Optional[int] = None


@dataclass
class _Line:
    valid: bool = False
    tag: int = 0
    dirty: bool = False
    prefetched: bool = False


class Cache:
    """One cache level: geometry from :class:`CacheConfig`, LRU replacement."""

    def __init__(self, config: CacheConfig, stats: Stats | None = None) -> None:
        self.config = config
        registry = stats if stats is not None else Stats()
        self.stats = registry.group(f"cache.{config.name.lower()}")
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.line_size = config.line_size
        self._offset_bits = config.line_size.bit_length() - 1
        self._sets: List[List[_Line]] = [
            [_Line() for _ in range(self.associativity)] for _ in range(self.num_sets)
        ]
        self._lru = [LRUState(self.associativity) for _ in range(self.num_sets)]
        # MSHR occupancy is tracked as a set of outstanding miss block
        # addresses; the functional model clears it when fills complete.
        self._outstanding: Dict[int, int] = {}

    # -- address helpers ----------------------------------------------------

    def block_address(self, addr: int) -> int:
        """Align ``addr`` down to its cache-block address."""
        return addr >> self._offset_bits << self._offset_bits

    def _index_tag(self, addr: int) -> tuple[int, int]:
        block = addr >> self._offset_bits
        return block & (self.num_sets - 1), block >> (self.num_sets.bit_length() - 1)

    # -- state queries ------------------------------------------------------

    def contains(self, addr: int) -> bool:
        """True when the block holding ``addr`` is resident (no LRU update)."""
        index, tag = self._index_tag(addr)
        return any(line.valid and line.tag == tag for line in self._sets[index])

    @property
    def hit_latency(self) -> int:
        """Hit latency of this level in cycles."""
        return self.config.hit_latency

    @property
    def mshrs(self) -> int:
        """Number of miss status holding registers."""
        return self.config.mshrs

    def outstanding_misses(self) -> int:
        """Number of blocks currently tracked as outstanding misses."""
        return len(self._outstanding)

    # -- operations -----------------------------------------------------------

    def access(self, addr: int, is_write: bool = False, is_prefetch: bool = False) -> CacheAccessResult:
        """Access the block containing ``addr``; on a miss the line is *not* filled.

        The caller (the hierarchy) decides whether and when to fill, which lets
        prefetches and demand fetches share one code path.
        """
        index, tag = self._index_tag(addr)
        kind = "prefetch" if is_prefetch else ("write" if is_write else "read")
        self.stats.inc(f"accesses.{kind}")
        for way, line in enumerate(self._sets[index]):
            if line.valid and line.tag == tag:
                self._lru[index].touch(way)
                if is_write:
                    line.dirty = True
                if line.prefetched and not is_prefetch:
                    self.stats.inc("useful_prefetches")
                    line.prefetched = False
                self.stats.inc(f"hits.{kind}")
                return CacheAccessResult(hit=True)
        self.stats.inc(f"misses.{kind}")
        return CacheAccessResult(hit=False)

    def fill(self, addr: int, dirty: bool = False, prefetched: bool = False) -> Optional[int]:
        """Install the block containing ``addr``; returns the evicted block, if any."""
        index, tag = self._index_tag(addr)
        lines = self._sets[index]
        for way, line in enumerate(lines):
            if line.valid and line.tag == tag:
                # Already present (e.g. demand fill racing a prefetch).
                self._lru[index].touch(way)
                line.dirty = line.dirty or dirty
                return None
        victim_way = next((w for w, line in enumerate(lines) if not line.valid), None)
        evicted: Optional[int] = None
        if victim_way is None:
            victim_way = self._lru[index].victim()
            victim = lines[victim_way]
            evicted = self._reconstruct_address(index, victim.tag)
            if victim.dirty:
                self.stats.inc("writebacks")
            self.stats.inc("evictions")
        line = lines[victim_way]
        line.valid = True
        line.tag = tag
        line.dirty = dirty
        line.prefetched = prefetched
        self._lru[index].touch(victim_way)
        self.stats.inc("fills")
        self._outstanding.pop(self.block_address(addr), None)
        return evicted

    def note_outstanding(self, addr: int) -> bool:
        """Record an outstanding miss; returns False when all MSHRs are busy."""
        block = self.block_address(addr)
        if block in self._outstanding:
            self.stats.inc("mshr_merges")
            return True
        if len(self._outstanding) >= self.config.mshrs:
            self.stats.inc("mshr_full")
            return False
        self._outstanding[block] = 1
        return True

    def invalidate_all(self) -> None:
        """Drop every line (used between experiments)."""
        for lines in self._sets:
            for line in lines:
                line.valid = False
                line.dirty = False
        self._outstanding.clear()

    def _reconstruct_address(self, index: int, tag: int) -> int:
        set_bits = self.num_sets.bit_length() - 1
        return ((tag << set_bits) | index) << self._offset_bits

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(1 for lines in self._sets for line in lines if line.valid)

"""A single set-associative cache level with LRU replacement.

The model is functional (hit/miss state plus access counters) with enough
timing metadata (hit latency, MSHR count) for the interval timing model and
the FDIP prefetch engine.  Writes are modelled as allocate-on-miss like reads;
dirty state is tracked so write-back traffic can be reported, although the
front-end experiments never generate dirty lines.

Like the BTB organizations, every cache level adopts a
:class:`repro.common.asid.AddressSpacePolicy`: lines can be tagged with the
active address space (PIPT-style sharing without cross-tenant false hits) and
the sets can be partitioned weight-proportionally among tenants.  With ASID 0
active and no partitions configured -- the single-tenant and legacy cases --
every policy operation is the identity and the cache behaves bit-identically
to the historical untagged model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.asid import AddressSpacePolicy
from repro.common.config import CacheConfig
from repro.common.lru import LRUState
from repro.common.stats import Stats


@dataclass(frozen=True, slots=True)
class CacheAccessResult:
    """Outcome of an access to one cache level."""

    hit: bool
    evicted_block: Optional[int] = None


#: Shared results for the two common outcomes; access() is called once per
#: probe of every level, so the allocations are worth dodging (the dataclass
#: is frozen, making the sharing invisible).
_HIT_RESULT = CacheAccessResult(hit=True)
_MISS_RESULT = CacheAccessResult(hit=False)


@dataclass(slots=True)
class _Line:
    valid: bool = False
    tag: int = 0
    #: Raw (uncolored) block address, kept so evictions can report the victim
    #: without inverting the ASID color or the partition remap.
    block: int = 0
    dirty: bool = False
    prefetched: bool = False


class SetAssociativeCache:
    """One cache level: geometry from :class:`CacheConfig`, LRU replacement.

    The stored/compared tag is the ASID-colored *full* block number rather
    than the block's high bits: in the shared case the two are equivalent
    (the index bits are redundant with the set), while under partitioned set
    indexing the full block number is what keeps two blocks that share a
    slice-relative index distinguishable.  The color constants sit far above
    any realistic address, so distinct address spaces can never false-hit on
    each other's lines.
    """

    def __init__(self, config: CacheConfig, stats: Stats | None = None) -> None:
        self.config = config
        registry = stats if stats is not None else Stats()
        self.stats = registry.group(f"cache.{config.name.lower()}")
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.line_size = config.line_size
        self._offset_bits = config.line_size.bit_length() - 1
        # Sets materialize lazily on first fill: large outer levels leave most
        # sets untouched in short runs, and a probe of an unmaterialized set
        # is a miss with no lines to scan and no LRU to touch.  Re-invalidation
        # simply drops sets back to None -- bit-identical to clearing valid
        # bits, because fills repopulate every LRU stamp before any eviction
        # decision can depend on one.
        self._sets: List[List[_Line] | None] = [None] * self.num_sets
        self._lru: List[LRUState | None] = [None] * self.num_sets
        # Resident-line directory: colored tag -> way.  A colored tag is the
        # full block number (XORed with a color far above the address bits),
        # so it pins a unique set under any fixed policy configuration --
        # tag -> way is therefore a complete, unambiguous index of residency,
        # and probes become one dict lookup instead of a way scan.  Kept
        # write-through by fill/eviction/invalidation.
        self._where: Dict[int, int] = {}
        # MSHR occupancy is tracked as a set of outstanding miss block
        # addresses; the functional model clears it when fills complete.
        self._outstanding: Dict[int, int] = {}
        # Precomputed per-kind counter names: access() is the memory model's
        # innermost loop and must not build f-strings per probe.
        self._kind_keys = {
            kind: (f"accesses.{kind}", f"hits.{kind}", f"misses.{kind}")
            for kind in ("read", "write", "prefetch")
        }
        #: ASID mechanics (tag coloring + set partitioning) for this level.
        self.asid_policy = AddressSpacePolicy()
        # Identity-policy fast path for the per-probe index/tag computation;
        # refreshed at every point the policy can change (ASID switches,
        # partition map changes).
        self._policy_trivial = True

    # -- address helpers ----------------------------------------------------

    def block_address(self, addr: int) -> int:
        """Align ``addr`` down to its cache-block address."""
        return addr >> self._offset_bits << self._offset_bits

    def _index_tag(self, addr: int) -> tuple[int, int]:
        block = addr >> self._offset_bits
        if self._policy_trivial:
            return block % self.num_sets, block
        index = self.asid_policy.modulo_index("sets", block, self.num_sets)
        return index, self.asid_policy.colored(block)

    # -- address-space handling ---------------------------------------------

    def set_active_asid(self, asid: int) -> None:
        """Switch the address space new lines are tagged with (retention modes)."""
        self.asid_policy.activate(asid)
        self._policy_trivial = self.asid_policy.is_trivial("sets")

    def configure_partitions(self, weights: Sequence[int] | None) -> None:
        """Split this level's sets among tenants (``None`` to share).

        Weight-proportional contiguous set slices, exactly like the BTB
        organizations; a level with fewer sets than tenants falls back to
        (still tagged) sharing.  The level is invalidated whenever the
        partition map changes: lines installed under a different map would be
        unreachable or reachable from the wrong slice.
        """
        if weights is None:
            if self.asid_policy.clear("sets"):
                self.invalidate_all()
            self._policy_trivial = self.asid_policy.is_trivial("sets")
            return
        self.asid_policy.configure("sets", self.num_sets, weights, fallback_to_shared=True)
        self._policy_trivial = self.asid_policy.is_trivial("sets")
        self.invalidate_all()

    def partition_set_counts(self) -> List[int] | None:
        """Sets per tenant partition (``None`` when the level is shared)."""
        return self.asid_policy.domain_counts("sets")

    # -- state queries ------------------------------------------------------

    def _materialize(self, index: int) -> List[_Line]:
        """Allocate set ``index`` (empty) and its LRU state on first fill.

        Lines are appended by :meth:`fill` as ways are first used: a line is
        only ever invalid before its first fill and lines are never
        individually invalidated (:meth:`invalidate_all` drops whole sets),
        so the valid ways are always exactly the list prefix -- "first
        invalid way" victim selection is simply the list's length.
        """
        lines: List[_Line] = []
        self._sets[index] = lines
        self._lru[index] = LRUState(self.associativity)
        return lines

    def contains(self, addr: int) -> bool:
        """True when the block holding ``addr`` is resident (no LRU update)."""
        block = addr >> self._offset_bits
        tag = block if self._policy_trivial else self.asid_policy.colored(block)
        return tag in self._where

    @property
    def hit_latency(self) -> int:
        """Hit latency of this level in cycles."""
        return self.config.hit_latency

    @property
    def mshrs(self) -> int:
        """Number of miss status holding registers."""
        return self.config.mshrs

    def outstanding_misses(self) -> int:
        """Number of blocks currently tracked as outstanding misses."""
        return len(self._outstanding)

    # -- operations -----------------------------------------------------------

    def access(self, addr: int, is_write: bool = False, is_prefetch: bool = False) -> CacheAccessResult:
        """Access the block containing ``addr``; on a miss the line is *not* filled.

        The caller (the hierarchy) decides whether and when to fill, which lets
        prefetches and demand fetches share one code path.
        """
        index, tag = self._index_tag(addr)
        kind = "prefetch" if is_prefetch else ("write" if is_write else "read")
        accesses_key, hits_key, misses_key = self._kind_keys[kind]
        self.stats.inc(accesses_key)
        way = self._where.get(tag)
        if way is not None:
            line = self._sets[index][way]
            self._lru[index].touch(way)
            if is_write:
                line.dirty = True
            if line.prefetched and not is_prefetch:
                self.stats.inc("useful_prefetches")
                line.prefetched = False
            self.stats.inc(hits_key)
            return _HIT_RESULT
        self.stats.inc(misses_key)
        return _MISS_RESULT

    def fill(self, addr: int, dirty: bool = False, prefetched: bool = False) -> Optional[int]:
        """Install the block containing ``addr``; returns the evicted block, if any."""
        index, tag = self._index_tag(addr)
        lines = self._sets[index]
        if lines is None:
            lines = self._materialize(index)
        present = self._where.get(tag)
        if present is not None:
            # Already present (e.g. demand fill racing a prefetch).
            line = lines[present]
            self._lru[index].touch(present)
            line.dirty = line.dirty or dirty
            return None
        evicted: Optional[int] = None
        if len(lines) < self.associativity:
            victim_way = len(lines)
            lines.append(_Line())
        else:
            victim_way = self._lru[index].victim()
            victim = lines[victim_way]
            evicted = victim.block << self._offset_bits
            del self._where[victim.tag]
            if victim.dirty:
                self.stats.inc("writebacks")
            self.stats.inc("evictions")
        line = lines[victim_way]
        self._where[tag] = victim_way
        line.valid = True
        line.tag = tag
        line.block = addr >> self._offset_bits
        line.dirty = dirty
        line.prefetched = prefetched
        self._lru[index].touch(victim_way)
        self.stats.inc("fills")
        self._outstanding.pop(self.block_address(addr), None)
        return evicted

    def note_outstanding(self, addr: int) -> bool:
        """Record an outstanding miss; returns False when all MSHRs are busy."""
        block = self.block_address(addr)
        if block in self._outstanding:
            self.stats.inc("mshr_merges")
            return True
        if len(self._outstanding) >= self.config.mshrs:
            self.stats.inc("mshr_full")
            return False
        self._outstanding[block] = 1
        return True

    def invalidate_all(self) -> None:
        """Drop every line (context-switch flush, between experiments)."""
        for index, lines in enumerate(self._sets):
            if lines is not None:
                self._sets[index] = None
                self._lru[index] = None
        self._where.clear()
        self._outstanding.clear()

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(
            1
            for lines in self._sets
            if lines is not None
            for line in lines
            if line.valid
        )


#: Historical name of the class, kept for callers and tests.
Cache = SetAssociativeCache

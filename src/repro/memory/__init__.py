"""Cache hierarchy substrate.

The paper's processor (Table II) has a 32 KB/8-way L1-I, a 48 KB/12-way L1-D,
a 512 KB/8-way unified L2 and a 2 MB/16-way LLC.  The front-end experiments
only exercise the instruction side, but the hierarchy is modelled generally:

* :class:`repro.memory.cache.SetAssociativeCache` -- one set-associative level
  with LRU replacement, an MSHR book-keeping limit and an
  :class:`~repro.common.asid.AddressSpacePolicy` for ASID tagging and
  per-tenant set partitioning (``Cache`` remains as the historical alias);
* :class:`repro.memory.hierarchy.MemoryHierarchy` -- the L1-I/L2/LLC/memory
  chain used for instruction fetch and FDIP prefetch fills, with
  flush/tagged/partitioned context-switch behaviour selected by
  :attr:`~repro.common.config.MachineConfig.cache_asid_mode`.
"""

from repro.memory.cache import Cache, CacheAccessResult, SetAssociativeCache
from repro.memory.hierarchy import MemoryHierarchy

__all__ = ["Cache", "CacheAccessResult", "SetAssociativeCache", "MemoryHierarchy"]

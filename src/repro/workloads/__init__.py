"""Synthetic workload generation.

The paper evaluates BTB-X on proprietary Qualcomm traces (IPC-1 client/server,
CVP-1 server) and on five x86 server applications.  Those traces are not
redistributable, so this package synthesizes workloads with the structural
properties the paper itself identifies as the *cause* of its key observations
(Sections III and VI-G):

* programs are built from many small functions;
* conditional branches steer control flow only within a function, so their
  target offsets are short;
* returns take their target from the RAS and need no offset bits;
* calls cross functions and sometimes cross dynamically-mapped libraries that
  live in distant address-space regions, producing the long-offset tail;
* server workloads touch a multi-megabyte instruction footprint with little
  reuse between requests, while client workloads loop over a small footprint.

The pipeline is: :class:`~repro.workloads.spec.WorkloadSpec` (parameters) ->
:class:`~repro.workloads.cfg.ProgramBuilder` (static program: modules,
functions, basic blocks, call graph) -> :class:`~repro.workloads.execution.TraceGenerator`
(seeded walk emitting a :class:`~repro.traces.Trace`).  Named suites matching
the paper's workload lists live in :mod:`repro.workloads.suites`.
"""

from repro.workloads.cfg import BasicBlock, Function, Program, ProgramBuilder, TerminatorKind
from repro.workloads.execution import TraceGenerator, generate_trace
from repro.workloads.spec import WorkloadClass, WorkloadSpec
from repro.workloads.suites import (
    SUITE_NAMES,
    build_suite,
    client_suite,
    cvp_like_suite,
    server_suite,
    workload_spec_by_name,
    x86_server_suite,
)

__all__ = [
    "BasicBlock",
    "Function",
    "Program",
    "ProgramBuilder",
    "TerminatorKind",
    "TraceGenerator",
    "generate_trace",
    "WorkloadClass",
    "WorkloadSpec",
    "SUITE_NAMES",
    "build_suite",
    "client_suite",
    "server_suite",
    "cvp_like_suite",
    "x86_server_suite",
    "workload_spec_by_name",
]

"""Named workload suites mirroring the paper's evaluation sets.

The paper evaluates on:

* IPC-1 client traces (``client_001`` .. ``client_008``) and server traces
  (``server_001`` .. ``server_039`` as named on the Figure 9/10 x-axis);
* CVP-1 server traces (750+; represented here by a differently-seeded suite);
* five x86-compiled server applications (Wordpress, Mediawiki, Drupal, Kafka,
  Finagle-HTTP) used for the Figure 13 ISA study.

Each named workload maps to a :class:`~repro.workloads.spec.WorkloadSpec` with
its own seed and instruction-footprint scale.  Server workloads 023-035 are
given the largest footprints, mirroring the paper's observation that those
traces stress the BTB hardest (Figure 9's right-hand cluster).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.config import ISAStyle
from repro.common.errors import WorkloadError
from repro.traces.trace import Trace, TraceSet
from repro.workloads.execution import generate_trace
from repro.workloads.spec import WorkloadClass, WorkloadSpec, client_spec, server_spec

#: Names on the Figure 9 / Figure 10 x-axis.
CLIENT_WORKLOAD_NAMES: tuple[str, ...] = tuple(f"client_{i:03d}" for i in range(1, 9))
SERVER_WORKLOAD_NAMES: tuple[str, ...] = tuple(
    f"server_{i:03d}" for i in list(range(1, 5)) + list(range(9, 40))
)
CVP_WORKLOAD_NAMES: tuple[str, ...] = tuple(f"cvp_server_{i:03d}" for i in range(1, 13))
X86_WORKLOAD_NAMES: tuple[str, ...] = (
    "wordpress",
    "mediawiki",
    "drupal",
    "kafka",
    "finagle_http",
)

SUITE_NAMES: tuple[str, ...] = ("ipc1_client", "ipc1_server", "cvp1_server", "x86_server")

#: Prefix of generated workload names (see :mod:`repro.scenarios.generate`).
GENERATED_PREFIX = "gen_"

#: Class tokens of generated names -> (spec builder, ISA).  The ``x`` prefix
#: marks the x86-compiled variant of a class, mirroring the Figure 13 apps.
_GENERATED_CLASSES = {
    "server": (server_spec, ISAStyle.ARM64),
    "client": (client_spec, ISAStyle.ARM64),
    "xserver": (server_spec, ISAStyle.X86),
    "xclient": (client_spec, ISAStyle.X86),
}


def _server_footprint_scale(ordinal: int) -> float:
    """Footprint scale for the n-th server workload.

    Workloads named server_023 .. server_035 (the high-MPKI cluster in
    Figure 9) get the largest instruction footprints; the rest span a range of
    moderate footprints so the suite shows per-workload variation.
    """
    if 23 <= ordinal <= 35:
        return 3.0 + 0.4 * (ordinal - 23)
    return 1.0 + 0.2 * (ordinal % 9)


def _client_footprint_scale(ordinal: int) -> float:
    """Footprint scale for the n-th client workload (all small)."""
    return 0.6 + 0.1 * (ordinal % 5)


def _build_specs() -> Dict[str, WorkloadSpec]:
    specs: Dict[str, WorkloadSpec] = {}
    for name in CLIENT_WORKLOAD_NAMES:
        ordinal = int(name.split("_")[1])
        specs[name] = client_spec(name, seed=1000 + ordinal, footprint_scale=_client_footprint_scale(ordinal))
    for name in SERVER_WORKLOAD_NAMES:
        ordinal = int(name.split("_")[1])
        specs[name] = server_spec(name, seed=2000 + ordinal, footprint_scale=_server_footprint_scale(ordinal))
    for name in CVP_WORKLOAD_NAMES:
        ordinal = int(name.split("_")[2])
        specs[name] = server_spec(name, seed=5000 + ordinal, footprint_scale=1.0 + 0.2 * (ordinal % 7))
    for ordinal, name in enumerate(X86_WORKLOAD_NAMES, start=1):
        specs[name] = server_spec(
            name, seed=7000 + ordinal, footprint_scale=1.0 + 0.3 * ordinal, isa=ISAStyle.X86
        )
    return specs


_SPECS: Dict[str, WorkloadSpec] = _build_specs()


def workload_names(suite: str) -> Sequence[str]:
    """Return the workload names of a suite."""
    if suite == "ipc1_client":
        return CLIENT_WORKLOAD_NAMES
    if suite == "ipc1_server":
        return SERVER_WORKLOAD_NAMES
    if suite == "cvp1_server":
        return CVP_WORKLOAD_NAMES
    if suite == "x86_server":
        return X86_WORKLOAD_NAMES
    raise WorkloadError(f"unknown suite {suite!r}; expected one of {SUITE_NAMES}")


def generated_workload_name(workload_class: str, seed: int, footprint_scale: float) -> str:
    """Canonical name of a generated workload: ``gen_<class>_<seed>_<milliscale>``.

    The name is self-describing -- :func:`workload_spec_by_name` rebuilds the
    identical spec from the string alone -- so pooled engine workers and the
    sharded result cache resolve generated workloads with no registration
    step and no cache-format change.  ``footprint_scale`` is carried in
    integer thousandths, keeping the name (and hence every cache identity
    derived from it) free of float formatting.
    """
    if workload_class not in _GENERATED_CLASSES:
        raise WorkloadError(
            f"unknown generated workload class {workload_class!r}; "
            f"expected one of {tuple(_GENERATED_CLASSES)}"
        )
    if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
        raise WorkloadError(f"generated workload seed must be a non-negative int, got {seed!r}")
    milli = int(round(footprint_scale * 1000))
    if milli <= 0:
        raise WorkloadError(
            f"generated workload footprint scale {footprint_scale!r} rounds below 0.001"
        )
    return f"{GENERATED_PREFIX}{workload_class}_{seed}_{milli}"


def _generated_spec(name: str) -> WorkloadSpec | None:
    """Parse a ``gen_`` name into its spec; ``None`` for non-generated names."""
    if not name.startswith(GENERATED_PREFIX):
        return None
    parts = name.split("_")
    if (
        len(parts) != 4
        or parts[1] not in _GENERATED_CLASSES
        or not parts[2].isdigit()
        or not parts[3].isdigit()
        or int(parts[3]) == 0
    ):
        raise WorkloadError(
            f"malformed generated workload name {name!r}; expected "
            f"gen_<class>_<seed>_<milliscale> with class in {tuple(_GENERATED_CLASSES)}"
        )
    builder, isa = _GENERATED_CLASSES[parts[1]]
    return builder(name, seed=int(parts[2]), footprint_scale=int(parts[3]) / 1000, isa=isa)


def workload_spec_by_name(name: str) -> WorkloadSpec:
    """Return the spec of a named workload (e.g. ``server_032``).

    Names starting with ``gen_`` are parsed as generated workloads -- the
    spec is a pure function of the name, so any process can resolve it.
    """
    spec = _SPECS.get(name)
    if spec is not None:
        return spec
    generated = _generated_spec(name)
    if generated is not None:
        return generated
    raise WorkloadError(f"unknown workload {name!r}")


def all_workload_names() -> List[str]:
    """All known workload names across suites."""
    return list(_SPECS)


def build_workload(name: str, instructions: int) -> Trace:
    """Generate the trace of a single named workload."""
    return generate_trace(workload_spec_by_name(name), instructions, name=name)


def selected_workload_names(suite: str, limit: int | None = None) -> List[str]:
    """Workload names of a suite, optionally capped to ``limit`` members.

    When limited, workloads are chosen spread across the suite so both low-
    and high-footprint members are represented.  The selection is a pure
    function of ``(suite, limit)``, which is what lets parallel workers and
    the result cache agree on which workloads a scale implies.
    """
    names = list(workload_names(suite))
    if limit is not None and limit < len(names):
        if limit <= 0:
            raise WorkloadError("suite limit must be positive")
        stride = len(names) / limit
        names = [names[int(i * stride)] for i in range(limit)]
    return names


def build_suite(suite: str, instructions: int, limit: int | None = None) -> TraceSet:
    """Generate traces for a whole suite.

    ``limit`` caps the number of workloads, keeping quick runs and benchmarks
    tractable; see :func:`selected_workload_names` for how they are chosen.
    """
    names = selected_workload_names(suite, limit)
    suite_set = TraceSet(name=suite)
    for name in names:
        suite_set.add(build_workload(name, instructions))
    return suite_set


def client_suite(instructions: int = 50_000, limit: int | None = None) -> TraceSet:
    """IPC-1-like client suite."""
    return build_suite("ipc1_client", instructions, limit)


def server_suite(instructions: int = 50_000, limit: int | None = None) -> TraceSet:
    """IPC-1-like server suite."""
    return build_suite("ipc1_server", instructions, limit)


def cvp_like_suite(instructions: int = 50_000, limit: int | None = None) -> TraceSet:
    """CVP-1-like server suite (used for the Figure 12 cross-check)."""
    return build_suite("cvp1_server", instructions, limit)


def x86_server_suite(instructions: int = 50_000, limit: int | None = None) -> TraceSet:
    """x86-compiled server applications (used for the Figure 13 ISA study)."""
    return build_suite("x86_server", instructions, limit)


def workload_class_of(name: str) -> WorkloadClass:
    """Workload class (server/client) of a named workload."""
    return workload_spec_by_name(name).workload_class

"""Dynamic execution of a synthetic program into a retired-instruction trace.

:class:`TraceGenerator` walks a :class:`~repro.workloads.cfg.Program` with an
explicit call stack and a seeded random number generator.  The walk starts in
the program's dispatcher function, which models a server request loop: each
iteration indirectly calls one of the root functions (a "request handler"),
waits for it to return, and loops.

The emitted stream is *self-consistent*: the PC of every instruction equals
the architectural next-PC of the one before it, which the front-end simulator
relies on (it rediscovers control flow through the BTB rather than trusting
the trace, exactly like the improved ChampSim of Section VI-A).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.common.errors import WorkloadError
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.traces.trace import Trace
from repro.workloads.cfg import Program, TerminatorKind, build_program
from repro.workloads.spec import WorkloadSpec

_TERMINATOR_TO_BRANCH = {
    TerminatorKind.CONDITIONAL: BranchType.CONDITIONAL,
    TerminatorKind.JUMP: BranchType.UNCONDITIONAL,
    TerminatorKind.CALL: BranchType.CALL,
    TerminatorKind.INDIRECT_CALL: BranchType.INDIRECT_CALL,
    TerminatorKind.RETURN: BranchType.RETURN,
}


class TraceGenerator:
    """Walks a program to emit a dynamic instruction trace."""

    def __init__(self, program: Program, seed: int | None = None) -> None:
        self.program = program
        # Derive the walk seed from the spec seed unless overridden, so the
        # same spec always produces the same trace.
        self._seed = program.spec.seed * 1_000_003 + 17 if seed is None else seed

    def generate(self, num_instructions: int, name: str | None = None) -> Trace:
        """Emit ``num_instructions`` retired instructions as a :class:`Trace`."""
        if num_instructions <= 0:
            raise WorkloadError("trace length must be positive")
        program = self.program
        rng = random.Random(self._seed)
        instructions: List[Instruction] = []
        append = instructions.append

        dispatcher = program.dispatcher_index
        root_indices = program.root_indices
        root_weights = program.root_weights

        # Call stack of (function_index, resume_block_index, return_pc).
        stack: List[Tuple[int, int, int]] = []
        current_function = dispatcher
        current_block = 0
        max_depth = 0

        functions = program.functions
        while len(instructions) < num_instructions:
            function = functions[current_function]
            block = function.blocks[current_block]

            # Plain (non-branch) instructions of the block.
            pc = block.start_pc
            for size in block.instruction_sizes:
                append(Instruction(pc=pc, size=size))
                pc += size
                if len(instructions) >= num_instructions:
                    break
            if len(instructions) >= num_instructions:
                break

            kind = block.terminator
            branch_pc = block.terminator_pc
            branch_size = block.terminator_size
            fall_through = branch_pc + branch_size

            if kind is TerminatorKind.CONDITIONAL:
                taken = rng.random() < block.taken_probability
                target_block = function.blocks[block.taken_block]
                # The target field always records the branch's architectural
                # target (where it goes when taken); the not-taken successor is
                # the fall-through, recovered via Instruction.next_pc.
                append(
                    Instruction(
                        pc=branch_pc,
                        size=branch_size,
                        branch_type=BranchType.CONDITIONAL,
                        taken=taken,
                        target=target_block.start_pc,
                    )
                )
                current_block = block.taken_block if taken else current_block + 1
            elif kind is TerminatorKind.JUMP:
                target_block = function.blocks[block.taken_block]
                append(
                    Instruction(
                        pc=branch_pc,
                        size=branch_size,
                        branch_type=BranchType.UNCONDITIONAL,
                        taken=True,
                        target=target_block.start_pc,
                    )
                )
                current_block = block.taken_block
            elif kind is TerminatorKind.CALL or kind is TerminatorKind.INDIRECT_CALL:
                if kind is TerminatorKind.CALL:
                    callee_index = block.callee
                    branch_type = BranchType.CALL
                else:
                    branch_type = BranchType.INDIRECT_CALL
                    if current_function == dispatcher:
                        callee_index = rng.choices(root_indices, weights=root_weights, k=1)[0]
                    else:
                        callee_index = rng.choice(block.callee_candidates)
                callee = functions[callee_index]
                append(
                    Instruction(
                        pc=branch_pc,
                        size=branch_size,
                        branch_type=branch_type,
                        taken=True,
                        target=callee.entry_pc,
                    )
                )
                stack.append((current_function, current_block + 1, fall_through))
                max_depth = max(max_depth, len(stack))
                current_function = callee_index
                current_block = 0
            elif kind is TerminatorKind.RETURN:
                if stack:
                    caller_function, resume_block, return_pc = stack.pop()
                else:
                    # Only reachable if the dispatcher itself returns, which the
                    # builder prevents; restart the request loop defensively.
                    caller_function, resume_block = dispatcher, 0
                    return_pc = functions[dispatcher].blocks[0].start_pc
                append(
                    Instruction(
                        pc=branch_pc,
                        size=branch_size,
                        branch_type=BranchType.RETURN,
                        taken=True,
                        target=return_pc,
                    )
                )
                current_function = caller_function
                current_block = resume_block
            else:  # pragma: no cover - exhaustive enum
                raise WorkloadError(f"unknown terminator {kind}")

        metadata: Dict[str, object] = {
            "workload_class": program.spec.workload_class.value,
            "seed": program.spec.seed,
            "functions": program.num_functions,
            "static_branches": program.static_branch_count(),
            "code_footprint_bytes": program.code_footprint_bytes(),
            "max_call_depth": max_depth,
        }
        return Trace(
            name=name or program.spec.name,
            instructions=instructions[:num_instructions],
            isa=program.isa,
            metadata=metadata,
        )


def generate_trace(
    spec: WorkloadSpec, num_instructions: int, name: str | None = None
) -> Trace:
    """Build the program for ``spec`` and emit a trace of ``num_instructions``."""
    program = build_program(spec)
    return TraceGenerator(program).generate(num_instructions, name=name)


def verify_trace_consistency(trace: Trace) -> None:
    """Check that each instruction follows architecturally from its predecessor.

    Raises :class:`WorkloadError` on the first inconsistency.  Used by tests
    and available to users converting external traces into the repro format.
    """
    previous: Instruction | None = None
    for position, inst in enumerate(trace):
        if previous is not None and previous.next_pc != inst.pc:
            raise WorkloadError(
                f"instruction {position} at {inst.pc:#x} does not follow "
                f"from {previous.pc:#x} (expected {previous.next_pc:#x})"
            )
        previous = inst

"""Workload specification: the tunable parameters of the synthetic generator.

A :class:`WorkloadSpec` fully determines a synthetic program and, together with
an instruction budget and a seed, the dynamic trace generated from it.  The
defaults for the two workload classes are calibrated so that:

* the dynamic branch mix is roughly 55 % conditional, 20 % return, 20 % call
  and 5 % unconditional/indirect (matching the paper's observation that
  conditional branches dominate and ~20 % of dynamic branches are returns);
* the branch target offset CDF matches Figure 4 (≈54 % of branches need <= 6
  stored bits, ≈22 % need 7-10, ≈23 % need 11-25, and ≈1 % need more);
* server workloads have branch working sets far larger than a few thousand
  BTB entries, while client working sets fit comfortably.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.common.config import ISAStyle
from repro.common.errors import WorkloadError


class WorkloadClass(enum.Enum):
    """High-level class of a synthetic workload."""

    SERVER = "server"
    CLIENT = "client"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic workload.

    Attributes are grouped into *static program shape* (modules, functions,
    block/function sizes, call-graph locality) and *dynamic behaviour* (branch
    biases, loop trip counts, library-call frequency).
    """

    name: str
    workload_class: WorkloadClass
    isa: ISAStyle = ISAStyle.ARM64
    seed: int = 0

    # --- static program shape -------------------------------------------
    num_modules: int = 4
    functions_per_module: int = 500
    # Library modules hold shared-library-like code mapped far away in the
    # address space; calls into them create the long-offset tail.
    num_library_modules: int = 2
    library_functions_per_module: int = 60
    # Function size in basic blocks (uniform in [min, max]).
    min_blocks_per_function: int = 3
    max_blocks_per_function: int = 12
    # Plain (non-branch) instructions per basic block (uniform in [min, max]).
    min_block_instructions: int = 2
    max_block_instructions: int = 6
    # Call-graph depth: a function at level i only calls functions at deeper
    # levels, bounding dynamic call depth by ``call_levels``.
    call_levels: int = 7
    # Gap between consecutive application modules (bytes); libraries are
    # placed ``library_gap_bytes`` away from the application image.
    module_gap_bytes: int = 1 << 22
    library_gap_bytes: int = 1 << 25
    base_address: int = 0x0000_0000_0040_0000

    # --- dynamic behaviour ------------------------------------------------
    # Probability that an interior basic block ends in each terminator kind.
    conditional_fraction: float = 0.38
    call_fraction: float = 0.46
    jump_fraction: float = 0.10
    indirect_fraction: float = 0.06
    # Probability that a conditional branch is a backward (loop) branch.
    loop_branch_fraction: float = 0.10
    # Taken probability of forward conditional branches.
    forward_taken_probability: float = 0.42
    # Taken probability of backward (loop) conditional branches.
    loop_taken_probability: float = 0.85
    # Fraction of forward conditional branch *sites* that are strongly biased
    # (almost always or almost never taken).  Real branches are highly
    # predictable; without this the direction predictor would be swamped by
    # coin-flip branches and its mispredictions would mask every BTB effect.
    predictable_branch_fraction: float = 0.90
    # Call-site distance classes (fractions of call sites; must sum to <= 1,
    # the remainder defaults to the neighbour class).  These drive the
    # medium/long tail of the offset distribution (Figure 4):
    #   neighbour  -> callee laid out within a few KB       (~7-12 bit offsets)
    #   module     -> anywhere in the caller's module       (~12-19 bits)
    #   cross      -> another application module            (~20-23 bits)
    #   library    -> shared library ~32 MB away            (~24-25 bits)
    #   far library-> library in the high canonical region  (> 25 bits, ~1 %)
    neighbor_call_fraction: float = 0.52
    module_call_fraction: float = 0.30
    cross_module_call_fraction: float = 0.10
    library_call_fraction: float = 0.06
    far_library_call_fraction: float = 0.02
    # Window (in function indices) that counts as a "neighbour" callee.
    neighbor_window: int = 12
    # Number of root (level-0) functions a dispatcher iteration may invoke.
    root_fan_out: int = 64
    # Concentration of the request mix: 1.0 = uniform over roots, higher
    # values skew towards a few hot roots (client-like reuse).
    root_skew: float = 1.0

    def __post_init__(self) -> None:
        fractions = (
            self.conditional_fraction,
            self.call_fraction,
            self.jump_fraction,
            self.indirect_fraction,
        )
        if any(f < 0 for f in fractions) or sum(fractions) > 1.0 + 1e-9:
            raise WorkloadError(
                f"{self.name}: terminator fractions must be non-negative and sum to <= 1"
            )
        call_classes = (
            self.neighbor_call_fraction,
            self.module_call_fraction,
            self.cross_module_call_fraction,
            self.library_call_fraction,
            self.far_library_call_fraction,
        )
        if any(f < 0 for f in call_classes) or sum(call_classes) > 1.0 + 1e-9:
            raise WorkloadError(
                f"{self.name}: call distance-class fractions must be non-negative and sum to <= 1"
            )
        if self.num_modules <= 0 or self.functions_per_module <= 0:
            raise WorkloadError(f"{self.name}: need at least one module and one function")
        if self.min_blocks_per_function < 1 or self.max_blocks_per_function < self.min_blocks_per_function:
            raise WorkloadError(f"{self.name}: invalid block-per-function range")
        if self.min_block_instructions < 0 or self.max_block_instructions < self.min_block_instructions:
            raise WorkloadError(f"{self.name}: invalid block instruction range")
        if not 0.0 <= self.forward_taken_probability <= 1.0:
            raise WorkloadError(f"{self.name}: forward taken probability out of range")
        if not 0.0 <= self.loop_taken_probability <= 1.0:
            raise WorkloadError(f"{self.name}: loop taken probability out of range")
        if self.call_levels < 1:
            raise WorkloadError(f"{self.name}: call graph needs at least one level")
        if self.root_fan_out < 1:
            raise WorkloadError(f"{self.name}: need at least one root function")

    @property
    def total_application_functions(self) -> int:
        """Total number of application (non-library) functions."""
        return self.num_modules * self.functions_per_module

    @property
    def total_library_functions(self) -> int:
        """Total number of library functions."""
        return self.num_library_modules * self.library_functions_per_module

    def scaled(self, footprint_scale: float, name: str | None = None, seed: int | None = None) -> "WorkloadSpec":
        """Return a spec with the instruction footprint scaled by ``footprint_scale``.

        Scaling adjusts the number of application functions (the main driver of
        branch working-set size) while keeping the dynamic behaviour knobs
        unchanged, which is how the paper's server workloads differ from each
        other (same software structure, different footprints).
        """
        if footprint_scale <= 0:
            raise WorkloadError("footprint scale must be positive")
        functions = max(8, int(round(self.functions_per_module * footprint_scale)))
        return replace(
            self,
            name=name or self.name,
            seed=self.seed if seed is None else seed,
            functions_per_module=functions,
        )


def server_spec(name: str, seed: int, footprint_scale: float = 1.0, isa: ISAStyle = ISAStyle.ARM64) -> WorkloadSpec:
    """Build a server-class spec: large footprint, flat request-driven reuse."""
    base = WorkloadSpec(
        name=name,
        workload_class=WorkloadClass.SERVER,
        isa=isa,
        seed=seed,
        num_modules=4,
        functions_per_module=500,
        num_library_modules=2,
        library_functions_per_module=60,
        call_levels=7,
        root_fan_out=2048,
        root_skew=0.8,
    )
    return base.scaled(footprint_scale, name=name, seed=seed)


def client_spec(name: str, seed: int, footprint_scale: float = 1.0, isa: ISAStyle = ISAStyle.ARM64) -> WorkloadSpec:
    """Build a client-class spec: small footprint, loop-heavy reuse."""
    base = WorkloadSpec(
        name=name,
        workload_class=WorkloadClass.CLIENT,
        isa=isa,
        seed=seed,
        num_modules=2,
        functions_per_module=80,
        num_library_modules=1,
        library_functions_per_module=24,
        call_levels=5,
        loop_branch_fraction=0.30,
        loop_taken_probability=0.94,
        root_fan_out=16,
        root_skew=2.0,
        library_call_fraction=0.03,
        far_library_call_fraction=0.005,
    )
    return base.scaled(footprint_scale, name=name, seed=seed)

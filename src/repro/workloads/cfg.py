"""Static program synthesis: modules, functions, basic blocks and call graph.

:class:`ProgramBuilder` turns a :class:`~repro.workloads.spec.WorkloadSpec`
into a :class:`Program`: a set of functions laid out in a 48-bit virtual
address space, each function a list of basic blocks terminated by a branch,
and a call graph connecting them.

The construction enforces the structural properties the paper attributes the
offset distribution to:

* conditional and unconditional jumps only target blocks of the *same*
  function (short offsets);
* calls target other functions -- mostly nearby functions of the same module,
  sometimes other application modules, occasionally shared-library modules
  mapped tens of megabytes (near libraries) or hundreds of gigabytes (the far
  library) away;
* the call graph is levelled (a function only calls functions at strictly
  deeper levels), which bounds dynamic call depth and guarantees the trace
  walk terminates;
* every function ends with a return.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.common.config import ISAStyle
from repro.common.errors import WorkloadError
from repro.workloads.spec import WorkloadSpec

# Base address of the far shared-library region (e.g. libc mapped high in the
# canonical user address space).  Calls into it produce the > 25-stored-bit
# offset tail (~1 % of dynamic branches in Figure 4).
FAR_LIBRARY_BASE = 0x0000_7F00_0000_0000

# Distribution of x86 instruction sizes (bytes); Arm64 is fixed at 4.
_X86_SIZES = (2, 3, 3, 4, 4, 4, 5, 6, 7)


class TerminatorKind(enum.Enum):
    """Kind of branch that terminates a basic block."""

    CONDITIONAL = "conditional"
    JUMP = "jump"
    CALL = "call"
    INDIRECT_CALL = "indirect_call"
    RETURN = "return"


@dataclass
class BasicBlock:
    """One basic block: plain instructions followed by a terminating branch."""

    index: int
    instruction_sizes: Tuple[int, ...]
    terminator: TerminatorKind
    terminator_size: int
    taken_block: int | None = None
    taken_probability: float = 0.0
    callee: int | None = None
    callee_candidates: Tuple[int, ...] = ()
    # Filled by the layout pass.
    start_pc: int = 0
    terminator_pc: int = 0

    @property
    def size_bytes(self) -> int:
        """Total size of the block in bytes."""
        return sum(self.instruction_sizes) + self.terminator_size

    @property
    def fall_through_pc(self) -> int:
        """Address of the first instruction after the block."""
        return self.start_pc + self.size_bytes


@dataclass
class Function:
    """A synthesized function: an entry point plus a list of basic blocks."""

    index: int
    name: str
    module: int
    level: int
    is_library: bool
    blocks: List[BasicBlock] = field(default_factory=list)
    entry_pc: int = 0

    @property
    def size_bytes(self) -> int:
        """Total code size of the function in bytes."""
        return sum(block.size_bytes for block in self.blocks)

    @property
    def num_blocks(self) -> int:
        """Number of basic blocks."""
        return len(self.blocks)


@dataclass
class Program:
    """A complete synthetic program plus its address-space layout."""

    spec: WorkloadSpec
    functions: List[Function]
    module_bases: List[int]
    dispatcher_index: int
    root_indices: List[int]
    root_weights: List[float]
    isa: ISAStyle

    @property
    def num_functions(self) -> int:
        """Total number of functions including the dispatcher."""
        return len(self.functions)

    def function(self, index: int) -> Function:
        """Return the function with the given global index."""
        return self.functions[index]

    def static_branch_count(self) -> int:
        """Number of static branch sites (one terminator per block)."""
        return sum(len(f.blocks) for f in self.functions)

    def code_footprint_bytes(self) -> int:
        """Total static code size across all functions."""
        return sum(f.size_bytes for f in self.functions)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`WorkloadError` on failure.

        Invariants checked:

        * every function's last block is a RETURN and interior blocks are not;
        * intra-function targets point at existing blocks, and unconditional
          jumps only go forward (so every loop has a conditional exit);
        * call targets exist and respect the level ordering for application
          callees (library functions are always callable);
        * every conditional/call block has a fall-through successor;
        * layout is sequential and non-overlapping within each function.
        """
        for function in self.functions:
            if not function.blocks:
                raise WorkloadError(f"{function.name}: function has no blocks")
            if function.blocks[-1].terminator is not TerminatorKind.RETURN:
                raise WorkloadError(f"{function.name}: last block must be a return")
            expected_pc = function.entry_pc
            for block in function.blocks:
                if block.start_pc != expected_pc:
                    raise WorkloadError(
                        f"{function.name}: block {block.index} not laid out sequentially"
                    )
                expected_pc = block.fall_through_pc
                kind = block.terminator
                if kind in (TerminatorKind.CONDITIONAL, TerminatorKind.JUMP):
                    if block.taken_block is None or not (
                        0 <= block.taken_block < len(function.blocks)
                    ):
                        raise WorkloadError(
                            f"{function.name}: block {block.index} targets a missing block"
                        )
                    if kind is TerminatorKind.JUMP and block.taken_block <= block.index:
                        raise WorkloadError(
                            f"{function.name}: unconditional jump in block {block.index} "
                            "must go forward"
                        )
                if kind in (TerminatorKind.CONDITIONAL, TerminatorKind.CALL,
                            TerminatorKind.INDIRECT_CALL):
                    if block.index == len(function.blocks) - 1:
                        raise WorkloadError(
                            f"{function.name}: block {block.index} needs a fall-through block"
                        )
                if kind is TerminatorKind.CALL:
                    self._check_callee(function, block.callee)
                if kind is TerminatorKind.INDIRECT_CALL:
                    if not block.callee_candidates:
                        raise WorkloadError(
                            f"{function.name}: indirect call without candidates"
                        )
                    for callee in block.callee_candidates:
                        self._check_callee(function, callee)

    def _check_callee(self, caller: Function, callee_index: int | None) -> None:
        if callee_index is None or not (0 <= callee_index < len(self.functions)):
            raise WorkloadError(f"{caller.name}: call targets a missing function")
        callee = self.functions[callee_index]
        if not callee.is_library and callee.level <= caller.level:
            raise WorkloadError(
                f"{caller.name} (level {caller.level}) calls {callee.name} "
                f"(level {callee.level}); call graph must be levelled"
            )


class ProgramBuilder:
    """Builds a :class:`Program` from a :class:`WorkloadSpec` deterministically."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed)

    # -- public API -------------------------------------------------------

    def build(self) -> Program:
        """Synthesize the program: functions, call graph, layout, dispatcher."""
        spec = self.spec
        functions = self._create_functions()
        dispatcher_index = len(functions)
        roots = [f.index for f in functions if not f.is_library and f.level == 0]
        if not roots:
            raise WorkloadError(f"{spec.name}: no level-0 functions to dispatch to")
        self._rng.shuffle(roots)
        roots = sorted(roots[: spec.root_fan_out])
        dispatcher = self._create_dispatcher(dispatcher_index, roots)
        functions.append(dispatcher)

        self._generate_blocks(functions)
        self._resolve_calls(functions)
        module_bases = self._layout(functions)

        weights = [1.0 / ((rank + 1) ** spec.root_skew) for rank in range(len(roots))]
        program = Program(
            spec=spec,
            functions=functions,
            module_bases=module_bases,
            dispatcher_index=dispatcher_index,
            root_indices=roots,
            root_weights=weights,
            isa=spec.isa,
        )
        program.validate()
        return program

    # -- construction passes ----------------------------------------------

    def _create_functions(self) -> List[Function]:
        spec = self.spec
        functions: List[Function] = []
        index = 0
        app_levels = max(spec.call_levels - 1, 1)
        for module in range(spec.num_modules):
            for local in range(spec.functions_per_module):
                level = local % app_levels
                functions.append(
                    Function(
                        index=index,
                        name=f"{spec.name}.m{module}.f{local}",
                        module=module,
                        level=level,
                        is_library=False,
                    )
                )
                index += 1
        for lib in range(spec.num_library_modules):
            module = spec.num_modules + lib
            for local in range(spec.library_functions_per_module):
                functions.append(
                    Function(
                        index=index,
                        name=f"{spec.name}.lib{lib}.f{local}",
                        module=module,
                        level=spec.call_levels,
                        is_library=True,
                    )
                )
                index += 1
        return functions

    def _create_dispatcher(self, index: int, roots: Sequence[int]) -> Function:
        """The request-dispatch loop: indirectly calls a root, then repeats."""
        dispatcher = Function(
            index=index,
            name=f"{self.spec.name}.dispatcher",
            module=0,
            level=-1,
            is_library=False,
        )
        sizes = self._instruction_sizes(2)
        dispatcher.blocks = [
            BasicBlock(
                index=0,
                instruction_sizes=sizes,
                terminator=TerminatorKind.INDIRECT_CALL,
                terminator_size=self._one_size(),
                callee_candidates=tuple(roots),
            ),
            BasicBlock(
                index=1,
                instruction_sizes=self._instruction_sizes(1),
                terminator=TerminatorKind.CONDITIONAL,
                terminator_size=self._one_size(),
                taken_block=0,
                taken_probability=0.999,
            ),
            BasicBlock(
                index=2,
                instruction_sizes=(),
                terminator=TerminatorKind.RETURN,
                terminator_size=self._one_size(),
            ),
        ]
        return dispatcher

    def _generate_blocks(self, functions: List[Function]) -> None:
        spec = self.spec
        rng = self._rng
        max_app_level = max(spec.call_levels - 2, 0)
        for function in functions:
            if function.blocks:  # dispatcher already built
                continue
            # A function may only contain call sites when a valid callee is
            # guaranteed to exist: either a deeper application level or at
            # least one library module.
            can_call = not function.is_library and (
                spec.num_library_modules > 0 or function.level < max_app_level
            )
            num_blocks = rng.randint(spec.min_blocks_per_function, spec.max_blocks_per_function)
            blocks: List[BasicBlock] = []
            for block_index in range(num_blocks):
                plain = rng.randint(spec.min_block_instructions, spec.max_block_instructions)
                sizes = self._instruction_sizes(plain)
                if block_index == num_blocks - 1:
                    blocks.append(
                        BasicBlock(
                            index=block_index,
                            instruction_sizes=sizes,
                            terminator=TerminatorKind.RETURN,
                            terminator_size=self._one_size(),
                        )
                    )
                    continue
                blocks.append(
                    self._interior_block(function, block_index, num_blocks, sizes, can_call)
                )
            function.blocks = blocks

    def _interior_block(
        self,
        function: Function,
        block_index: int,
        num_blocks: int,
        sizes: Tuple[int, ...],
        can_call: bool,
    ) -> BasicBlock:
        spec = self.spec
        rng = self._rng
        roll = rng.random()
        conditional_cut = spec.conditional_fraction
        call_cut = conditional_cut + spec.call_fraction
        jump_cut = call_cut + spec.jump_fraction
        indirect_cut = jump_cut + spec.indirect_fraction
        # Functions without a valid callee (library functions, or deepest-level
        # functions in programs without libraries) turn their call and indirect
        # call sites into conditional branches to keep the dynamic mix sane.
        in_call_range = conditional_cut <= roll < call_cut or jump_cut <= roll < indirect_cut
        if not can_call and in_call_range:
            roll = rng.random() * conditional_cut

        if roll < conditional_cut:
            backward = block_index > 0 and rng.random() < spec.loop_branch_fraction
            if backward:
                target = rng.randint(max(0, block_index - 3), block_index - 1)
                probability = min(max(spec.loop_taken_probability + rng.uniform(-0.03, 0.03), 0.0), 0.99)
            else:
                target = rng.randint(block_index + 1, num_blocks - 1)
                probability = self._forward_bias()
            return BasicBlock(
                index=block_index,
                instruction_sizes=sizes,
                terminator=TerminatorKind.CONDITIONAL,
                terminator_size=self._one_size(),
                taken_block=target,
                taken_probability=probability,
            )
        if roll < call_cut:
            return BasicBlock(
                index=block_index,
                instruction_sizes=sizes,
                terminator=TerminatorKind.CALL,
                terminator_size=self._one_size(),
            )
        if roll < jump_cut and block_index + 1 < num_blocks - 1:
            target = rng.randint(block_index + 1, num_blocks - 1)
            return BasicBlock(
                index=block_index,
                instruction_sizes=sizes,
                terminator=TerminatorKind.JUMP,
                terminator_size=self._one_size(),
                taken_block=target,
            )
        if roll < indirect_cut:
            return BasicBlock(
                index=block_index,
                instruction_sizes=sizes,
                terminator=TerminatorKind.INDIRECT_CALL,
                terminator_size=self._one_size(),
            )
        # Fallback: a forward conditional branch.
        target = rng.randint(block_index + 1, num_blocks - 1)
        return BasicBlock(
            index=block_index,
            instruction_sizes=sizes,
            terminator=TerminatorKind.CONDITIONAL,
            terminator_size=self._one_size(),
            taken_block=target,
            taken_probability=self._forward_bias(),
        )

    def _forward_bias(self) -> float:
        """Per-site taken probability of a forward conditional branch.

        Most branch sites are strongly biased towards one direction (real
        conditional branches are highly predictable); a minority are weakly
        biased around the spec's ``forward_taken_probability``.
        """
        spec = self.spec
        rng = self._rng
        if rng.random() < spec.predictable_branch_fraction:
            return rng.choice((0.01, 0.02, 0.05, 0.95, 0.98, 0.99))
        center = spec.forward_taken_probability
        return min(max(center + rng.uniform(-0.15, 0.15), 0.02), 0.98)

    def _resolve_calls(self, functions: List[Function]) -> None:
        """Second pass: pick callees for every direct and indirect call site."""
        spec = self.spec
        rng = self._rng
        by_module_level: Dict[Tuple[int, int], List[Function]] = {}
        library_functions: List[Function] = []
        far_library_functions: List[Function] = []
        far_module = spec.num_modules + spec.num_library_modules - 1
        for function in functions:
            if function.is_library:
                if spec.num_library_modules > 1 and function.module == far_module:
                    far_library_functions.append(function)
                else:
                    library_functions.append(function)
            elif function.level >= 0:
                by_module_level.setdefault((function.module, function.level), []).append(function)
        if not library_functions:
            library_functions = far_library_functions

        max_app_level = max(spec.call_levels - 2, 0)
        for function in functions:
            for block in function.blocks:
                if block.terminator is TerminatorKind.CALL:
                    block.callee = self._pick_callee(
                        function, by_module_level, library_functions,
                        far_library_functions, max_app_level,
                    )
                elif block.terminator is TerminatorKind.INDIRECT_CALL and not block.callee_candidates:
                    fan_out = rng.randint(2, 6)
                    candidates = [
                        self._pick_callee(
                            function, by_module_level, library_functions,
                            far_library_functions, max_app_level,
                        )
                        for _ in range(fan_out)
                    ]
                    block.callee_candidates = tuple(sorted(set(candidates)))

    def _pick_callee(
        self,
        caller: Function,
        by_module_level: Dict[Tuple[int, int], List[Function]],
        library_functions: List[Function],
        far_library_functions: List[Function],
        max_app_level: int,
    ) -> int:
        """Pick one callee for a call site according to the distance classes.

        The five classes (neighbour / same-module / cross-module / library /
        far-library) correspond to increasing branch-to-target distances and
        therefore to the bands of the offset distribution in Figure 4.  The
        levelled call-graph constraint (callee level > caller level) is always
        respected for application callees.
        """
        spec = self.spec
        rng = self._rng
        deeper_levels = [
            level for level in range(caller.level + 1, max_app_level + 1)
            if (caller.module, level) in by_module_level
        ]

        roll = rng.random()
        neighbor_cut = spec.neighbor_call_fraction
        module_cut = neighbor_cut + spec.module_call_fraction
        cross_cut = module_cut + spec.cross_module_call_fraction
        library_cut = cross_cut + spec.library_call_fraction
        far_cut = library_cut + spec.far_library_call_fraction

        wants_far = library_cut <= roll < far_cut
        wants_library = cross_cut <= roll < library_cut
        if wants_far and far_library_functions:
            return rng.choice(far_library_functions).index
        if (wants_library or wants_far or not deeper_levels) and library_functions:
            return rng.choice(library_functions).index
        if not deeper_levels:
            if far_library_functions:
                return rng.choice(far_library_functions).index
            raise WorkloadError(
                f"{caller.name}: no valid callee (no deeper levels and no libraries)"
            )

        module = caller.module
        if module_cut <= roll < cross_cut and spec.num_modules > 1:
            choices = [m for m in range(spec.num_modules) if m != caller.module]
            module = rng.choice(choices)
        level = rng.choice(deeper_levels)
        pool = by_module_level.get((module, level)) or by_module_level[(caller.module, level)]

        if roll < neighbor_cut and len(pool) > 2:
            # Neighbour class: callee laid out close to the caller, producing
            # short cross-function distances (the 7-12 bit band).
            anchor = min(range(len(pool)), key=lambda i: abs(pool[i].index - caller.index))
            lo = max(0, anchor - spec.neighbor_window)
            hi = min(len(pool), anchor + spec.neighbor_window + 1)
            return rng.choice(pool[lo:hi]).index
        return rng.choice(pool).index

    def _layout(self, functions: List[Function]) -> List[int]:
        """Assign addresses: application modules first, then library modules."""
        spec = self.spec
        num_modules = spec.num_modules + spec.num_library_modules
        by_module: Dict[int, List[Function]] = {m: [] for m in range(num_modules)}
        for function in functions:
            by_module[function.module].append(function)

        module_bases: List[int] = []
        cursor = spec.base_address
        app_end = spec.base_address
        for module in range(num_modules):
            if module < spec.num_modules:
                base = cursor
            elif module == num_modules - 1 and spec.num_library_modules > 1:
                # The far library lives in the high shared-library region.
                base = FAR_LIBRARY_BASE
            else:
                # Near libraries sit a fixed gap beyond the application image.
                offset = (module - spec.num_modules) * (spec.library_gap_bytes // 2)
                base = _align(app_end + spec.library_gap_bytes + offset, 4096)
            module_bases.append(base)
            pc = base
            for function in by_module[module]:
                function.entry_pc = pc
                for block in function.blocks:
                    block.start_pc = pc
                    block.terminator_pc = pc + sum(block.instruction_sizes)
                    pc += block.size_bytes
                pc = _align(pc, 16)
            if module < spec.num_modules:
                app_end = max(app_end, pc)
                cursor = _align(pc + spec.module_gap_bytes, 4096)
        return module_bases

    # -- helpers ----------------------------------------------------------

    def _one_size(self) -> int:
        """Size of a single instruction for the configured ISA."""
        if self.spec.isa is ISAStyle.ARM64:
            return 4
        return self._rng.choice(_X86_SIZES)

    def _instruction_sizes(self, count: int) -> Tuple[int, ...]:
        """Sizes of ``count`` plain instructions for the configured ISA."""
        if self.spec.isa is ISAStyle.ARM64:
            return (4,) * count
        return tuple(self._rng.choice(_X86_SIZES) for _ in range(count))


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def build_program(spec: WorkloadSpec) -> Program:
    """Convenience wrapper: build and validate a program from a spec."""
    return ProgramBuilder(spec).build()

"""Seznec's Reduced BTB (R-BTB): page-number deduplication via pointers.

The key observation (Section IV-A, Figure 5) is that all branch targets inside
a virtual page share the same page number, so storing full targets duplicates
page numbers.  R-BTB splits the BTB into:

* a **Main-BTB** whose entries store the 10-bit page offset of the target plus
  a small pointer into the Page-BTB, and
* a **Page-BTB** that stores each distinct 36-bit target page number once.

The Page-BTB is fully associative and searched on every allocation to find or
install the target's page number.  When a Page-BTB entry is evicted, the
Main-BTB entries that point at it become stale; this model invalidates them so
the front end never fabricates a wrong target (a conservative but functionally
safe interpretation of the hardware, which would mis-fetch instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.bitutils import log2_ceil, mask
from repro.common.config import ISAStyle
from repro.common.errors import ConfigurationError
from repro.common.lru import LRUState
from repro.common.stats import Stats
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.btb.base import BTBBase, BTBLookupResult, index_bits_of, partial_tag

VALID_BITS = 1
TAG_BITS = 12
TYPE_BITS = 2
REPL_BITS = 3
PAGE_BITS = 12  # 4 KiB pages
PAGE_NUMBER_BITS = 36  # 48-bit VA - 12-bit page offset


@dataclass
class _MainEntry:
    valid: bool = False
    tag: int = 0
    branch_type: BranchType = BranchType.CONDITIONAL
    page_offset: int = 0  # page offset of the target (excluding alignment bits)
    page_pointer: int = 0


@dataclass
class _PageEntry:
    valid: bool = False
    page_number: int = 0
    # Owning address space under tagged/partitioned retention.  Exact-matched
    # but deliberately not charged in page_entry_bits(): geometries stay
    # identical across ASID modes (see the equivalent note in pdede.py).
    asid: int = 0


class ReducedBTB(BTBBase):
    """R-BTB: Main-BTB with page offsets + fully-associative Page-BTB."""

    name = "rbtb"

    def __init__(
        self,
        entries: int,
        page_entries: int = 128,
        associativity: int = 8,
        tag_bits: int = TAG_BITS,
        isa: ISAStyle = ISAStyle.ARM64,
        stats: Stats | None = None,
    ) -> None:
        super().__init__(stats)
        if entries <= 0 or entries % associativity != 0:
            raise ConfigurationError(
                f"R-BTB entries ({entries}) must be a positive multiple of associativity"
            )
        if page_entries <= 0:
            raise ConfigurationError("Page-BTB needs at least one entry")
        self.isa = isa
        self.tag_bits = tag_bits
        self.associativity = associativity
        self.num_sets = entries // associativity
        self.page_entries = page_entries
        self._index_bits = index_bits_of(self.num_sets)
        self._sets: List[List[_MainEntry]] = [
            [_MainEntry() for _ in range(associativity)] for _ in range(self.num_sets)
        ]
        self._lru = [LRUState(associativity) for _ in range(self.num_sets)]
        self._pages = [_PageEntry() for _ in range(page_entries)]
        self._page_lru = LRUState(page_entries)

    # -- geometry ----------------------------------------------------------

    @property
    def page_pointer_bits(self) -> int:
        """Width of the Page-BTB pointer stored in each Main-BTB entry."""
        return log2_ceil(self.page_entries)

    @property
    def page_offset_bits(self) -> int:
        """Stored page-offset bits (12 minus the ISA alignment bits)."""
        return PAGE_BITS - self.isa.alignment_bits

    def main_entry_bits(self) -> int:
        """Storage bits of one Main-BTB entry."""
        return (
            VALID_BITS + self.tag_bits + TYPE_BITS + REPL_BITS
            + self.page_offset_bits + self.page_pointer_bits
        )

    def page_entry_bits(self) -> int:
        """Storage bits of one Page-BTB entry (page number + valid)."""
        return PAGE_NUMBER_BITS + 1

    def storage_bits(self) -> int:
        """Total storage across Main-BTB and Page-BTB."""
        return (
            self.num_sets * self.associativity * self.main_entry_bits()
            + self.page_entries * self.page_entry_bits()
        )

    def capacity_entries(self) -> int:
        """Branch capacity (Main-BTB entries)."""
        return self.num_sets * self.associativity

    # -- page BTB helpers ---------------------------------------------------

    def configure_partitions(self, weights: Sequence[int] | None) -> None:
        """Partition the Main-BTB sets and the Page-BTB's entries per tenant.

        The fully-associative Page-BTB is sliced by entries, weight-
        proportionally; when it has fewer entries than tenants it falls back
        to sharing (still ASID-tagged), like BTB-X's companion.
        """
        super().configure_partitions(weights)
        if weights is None:
            self.asid_policy.clear("page")
            return
        self.asid_policy.configure("page", self.page_entries, weights, fallback_to_shared=True)

    def _page_slice(self) -> tuple[int, int]:
        return self.asid_policy.entry_slice("page", self.page_entries)

    def _find_page(self, page_number: int) -> int | None:
        base, count = self._page_slice()
        asid = self.active_asid
        for slot in range(base, base + count):
            entry = self._pages[slot]
            if entry.valid and entry.page_number == page_number and entry.asid == asid:
                return slot
        return None

    def _allocate_page(self, page_number: int) -> int:
        """Find or install ``page_number``; invalidates stale pointers on evict.

        The search, free-slot scan and victim selection are confined to the
        active tenant's slice under partitioned retention; the shared case
        scans the whole structure exactly as before.
        """
        self.record_search("page")
        self.record_allocation("page", page_number)
        slot = self._find_page(page_number)
        if slot is not None:
            self._page_lru.touch(slot)
            return slot
        base, count = self._page_slice()
        slot = next((i for i in range(base, base + count) if not self._pages[i].valid), None)
        if slot is None:
            slot = self._page_lru.victim(range(base, base + count))
            self._invalidate_pointers(slot)
            self.stats.inc("page_evictions")
        self._pages[slot].valid = True
        self._pages[slot].page_number = page_number
        self._pages[slot].asid = self.active_asid
        self._page_lru.touch(slot)
        self.record_write("page")
        return slot

    def _invalidate_pointers(self, page_slot: int) -> None:
        for entries in self._sets:
            for entry in entries:
                if entry.valid and entry.page_pointer == page_slot:
                    entry.valid = False
                    self.stats.inc("pointer_invalidations")

    # -- operations --------------------------------------------------------

    def _locate(self, pc: int) -> tuple[int, int]:
        index = self.partitioned_set_index(pc, self.num_sets, self.isa.alignment_bits)
        tag = partial_tag(
            self.asid_colored(pc), self._index_bits, self.tag_bits, self.isa.alignment_bits
        )
        return index, tag

    def invalidate_all(self) -> None:
        """Clear the Main-BTB and the Page-BTB (context-switch flush)."""
        for entries in self._sets:
            for entry in entries:
                entry.valid = False
        for page in self._pages:
            page.valid = False

    def lookup(self, pc: int) -> BTBLookupResult:
        """Probe the Main-BTB, then follow the page pointer (serial access)."""
        self.record_read("main")
        index, tag = self._locate(pc)
        for way, entry in enumerate(self._sets[index]):
            if entry.valid and entry.tag == tag:
                self._lru[index].touch(way)
                page = self._pages[entry.page_pointer]
                if not page.valid:
                    # Stale pointer (page evicted): treat as a BTB miss.
                    entry.valid = False
                    self.stats.inc("misses")
                    return BTBLookupResult.miss()
                self.record_read("page")
                target = (
                    (page.page_number << PAGE_BITS)
                    | (entry.page_offset << self.isa.alignment_bits)
                )
                self.stats.inc("hits")
                return BTBLookupResult(
                    hit=True,
                    branch_type=entry.branch_type,
                    target=target,
                    target_from_ras=entry.branch_type.target_from_ras,
                    latency_cycles=2,
                    structure="main+page",
                )
        self.stats.inc("misses")
        return BTBLookupResult.miss()

    def update(self, instruction: Instruction) -> None:
        """Insert/refresh the branch; finds or allocates its target page."""
        if not instruction.is_branch:
            return
        self.record_allocation("main", instruction.pc)
        index, tag = self._locate(instruction.pc)
        entries = self._sets[index]
        page_number = instruction.target >> PAGE_BITS
        page_offset = (instruction.target & mask(PAGE_BITS)) >> self.isa.alignment_bits

        page_slot = self._allocate_page(page_number)
        for way, entry in enumerate(entries):
            if entry.valid and entry.tag == tag:
                entry.branch_type = instruction.branch_type
                entry.page_offset = page_offset
                entry.page_pointer = page_slot
                self._lru[index].touch(way)
                self.record_write("main")
                return
        victim = next((way for way, entry in enumerate(entries) if not entry.valid), None)
        if victim is None:
            victim = self._lru[index].victim()
            self.stats.inc("evictions")
        entry = entries[victim]
        entry.valid = True
        entry.tag = tag
        entry.branch_type = instruction.branch_type
        entry.page_offset = page_offset
        entry.page_pointer = page_slot
        self._lru[index].touch(victim)
        self.record_write("main")
        self.stats.inc("allocations")

"""PDede: the partitioned, deduplicated, delta BTB (state of the art).

PDede (Soundararajan et al., MICRO 2021) improves on R-BTB in two ways
(Section IV-B, Figures 6 and 7):

* the target's page number is split into a **region number** (the high 20
  bits, shared by groups of contiguous pages) stored once in a tiny
  **Region-BTB**, and a 16-bit **page number within the region** stored once
  in the **Page-BTB**; Main-BTB entries carry pointers to both;
* **same-page branches** (branch and target in the same page) need neither
  pointer -- their page/region numbers come from the branch PC itself.  Half
  of the ways of each Main-BTB set are reserved for these cheaper entries
  ("PDede-Multi Entry Size").

Consequences modelled here:

* different-page lookups are serial (Main-BTB then Page-/Region-BTB) and take
  two cycles when the branch is predicted taken (Section VI-E);
* allocations must search the Page-BTB (set-associative, at most 16 candidate
  locations per page) and the fully-associative 4-entry Region-BTB;
* evicting a Page-/Region-BTB entry strands the Main-BTB entries pointing at
  it; they are invalidated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.bitutils import log2_ceil, mask
from repro.common.config import ISAStyle
from repro.common.errors import ConfigurationError
from repro.common.lru import LRUState
from repro.common.stats import Stats
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.btb.base import BTBBase, BTBLookupResult, index_bits_of, partial_tag

VALID_BITS = 1
TAG_BITS = 12
TYPE_BITS = 2
REPL_BITS = 3
DELTA_BITS = 1
PAGE_BITS = 12           # 4 KiB pages
REGION_PAGE_BITS = 16    # page-number bits kept in the Page-BTB
REGION_NUMBER_BITS = 20  # 48 - 12 - 16
PAGE_ENTRY_REPL_BITS = 4
REGION_ENTRY_REPL_BITS = 2


@dataclass
class _MainEntry:
    valid: bool = False
    tag: int = 0
    branch_type: BranchType = BranchType.CONDITIONAL
    page_offset: int = 0
    same_page: bool = True
    page_pointer: int = 0
    region_pointer: int = 0


# NOTE on the ``asid`` fields below: page/region numbers are exact-matched
# content (they rebuild targets), so ASID disambiguation needs a real field
# rather than the main tag's hash *coloring*.  Its storage is deliberately
# not charged in page_entry_bits()/region_entry_bits(): budget-sized
# geometries stay identical across ASID modes (and match the paper's
# untagged Table IV accounting), at the cost of making tagged-mode
# PDede/R-BTB results an optimistic bound -- real hardware would spend a few
# bits per entry or a small ASID-remap table.  The same free-coloring
# convention already applies to every main structure's tags.
@dataclass
class _PageEntry:
    valid: bool = False
    page_number: int = 0  # the REGION_PAGE_BITS-wide page number within a region
    asid: int = 0         # owning address space under tagged/partitioned retention


@dataclass
class _RegionEntry:
    valid: bool = False
    region_number: int = 0
    asid: int = 0


class PDedeBTB(BTBBase):
    """PDede Multi-Entry-Size BTB: Main-BTB + Page-BTB + Region-BTB."""

    name = "pdede"

    def __init__(
        self,
        entries: int,
        page_entries: int = 512,
        region_entries: int = 4,
        associativity: int = 8,
        page_associativity: int = 16,
        same_page_way_fraction: float = 0.5,
        tag_bits: int = TAG_BITS,
        isa: ISAStyle = ISAStyle.ARM64,
        stats: Stats | None = None,
    ) -> None:
        super().__init__(stats)
        if entries <= 0 or entries % associativity != 0:
            raise ConfigurationError(
                f"PDede entries ({entries}) must be a positive multiple of associativity"
            )
        if page_entries <= 0 or region_entries <= 0:
            raise ConfigurationError("Page-BTB and Region-BTB need at least one entry each")
        if not 0.0 <= same_page_way_fraction <= 1.0:
            raise ConfigurationError("same-page way fraction must be within [0, 1]")
        self.isa = isa
        self.tag_bits = tag_bits
        self.associativity = associativity
        self.num_sets = entries // associativity
        self.page_entries = page_entries
        self.region_entries = region_entries
        self.page_associativity = min(page_associativity, page_entries)
        self._index_bits = index_bits_of(self.num_sets)
        # Ways [0, same_page_ways) are reserved for same-page entries; the rest
        # may hold either kind (the paper reserves half for same-page).
        self.same_page_ways = int(round(associativity * same_page_way_fraction))
        self._sets: List[List[_MainEntry]] = [
            [_MainEntry() for _ in range(associativity)] for _ in range(self.num_sets)
        ]
        self._lru = [LRUState(associativity) for _ in range(self.num_sets)]
        self._pages = [_PageEntry() for _ in range(page_entries)]
        self._page_sets = max(page_entries // self.page_associativity, 1)
        self._page_lru = [LRUState(self.page_associativity) for _ in range(self._page_sets)]
        self._regions = [_RegionEntry() for _ in range(region_entries)]
        self._region_lru = LRUState(region_entries)

    # -- geometry ----------------------------------------------------------

    @property
    def page_pointer_bits(self) -> int:
        """Width of the Page-BTB pointer in a different-page Main-BTB entry."""
        return log2_ceil(self.page_entries)

    @property
    def region_pointer_bits(self) -> int:
        """Width of the Region-BTB pointer in a different-page Main-BTB entry."""
        return log2_ceil(self.region_entries)

    @property
    def page_offset_bits(self) -> int:
        """Stored page-offset bits (12 minus the ISA alignment bits)."""
        return PAGE_BITS - self.isa.alignment_bits

    def same_page_entry_bits(self) -> int:
        """Storage bits of a same-page Main-BTB entry (Figure 7, 29 bits)."""
        return (
            VALID_BITS + self.tag_bits + TYPE_BITS + REPL_BITS
            + self.page_offset_bits + DELTA_BITS
        )

    def different_page_entry_bits(self) -> int:
        """Storage bits of a different-page Main-BTB entry (Figure 7)."""
        return (
            VALID_BITS + self.tag_bits + TYPE_BITS + REPL_BITS
            + self.page_offset_bits + self.page_pointer_bits + self.region_pointer_bits
        )

    def average_entry_bits(self) -> float:
        """Average Main-BTB entry size, as reported in Table IV."""
        return (self.same_page_entry_bits() + self.different_page_entry_bits()) / 2.0

    def page_entry_bits(self) -> int:
        """Storage bits of one Page-BTB entry (16-bit page number + repl)."""
        return REGION_PAGE_BITS + PAGE_ENTRY_REPL_BITS

    def region_entry_bits(self) -> int:
        """Storage bits of one Region-BTB entry (20-bit region + repl)."""
        return REGION_NUMBER_BITS + REGION_ENTRY_REPL_BITS

    def storage_bits(self) -> int:
        """Total storage across Main-, Page- and Region-BTB."""
        same = self.same_page_ways
        diff = self.associativity - same
        main_bits = self.num_sets * (
            same * self.same_page_entry_bits() + diff * self.different_page_entry_bits()
        )
        return (
            main_bits
            + self.page_entries * self.page_entry_bits()
            + self.region_entries * self.region_entry_bits()
        )

    def capacity_entries(self) -> int:
        """Branch capacity (Main-BTB entries)."""
        return self.num_sets * self.associativity

    # -- address split helpers ---------------------------------------------

    @staticmethod
    def _split_target(target: int) -> tuple[int, int, int]:
        """Split a target into (region number, in-region page number, page offset)."""
        page_offset = target & mask(PAGE_BITS)
        page_number = (target >> PAGE_BITS) & mask(REGION_PAGE_BITS)
        region_number = target >> (PAGE_BITS + REGION_PAGE_BITS)
        return region_number, page_number, page_offset

    # -- page / region BTB management ----------------------------------------

    def configure_partitions(self, weights: Sequence[int] | None) -> None:
        """Partition the Main-BTB sets *and* both deduplication structures.

        The Page-BTB is sliced by sets and the Region-BTB by entries, both
        weight-proportionally like the Main-BTB.  A structure with fewer
        sets/entries than tenants falls back to sharing (still ASID-tagged),
        mirroring BTB-X's companion fallback -- the four-entry Region-BTB
        does this whenever more than four tenants consolidate.
        """
        super().configure_partitions(weights)
        if weights is None:
            self.asid_policy.clear("page")
            self.asid_policy.clear("region")
            return
        self.asid_policy.configure("page", self._page_sets, weights, fallback_to_shared=True)
        self.asid_policy.configure(
            "region", self.region_entries, weights, fallback_to_shared=True
        )

    def _page_set_index(self, page_number: int, region_number: int) -> int:
        return self.asid_policy.modulo_index(
            "page", page_number ^ region_number, self._page_sets
        )

    def _region_slice(self) -> tuple[int, int]:
        return self.asid_policy.entry_slice("region", self.region_entries)

    def _find_page(self, page_number: int, set_index_: int) -> int | None:
        base = set_index_ * self.page_associativity
        asid = self.active_asid
        for way in range(self.page_associativity):
            entry = self._pages[base + way]
            if entry.valid and entry.page_number == page_number and entry.asid == asid:
                return base + way
        return None

    def _allocate_page(self, page_number: int, region_number: int) -> int:
        """Find or install a page number; restricted to one Page-BTB set.

        The duplication key is the *full* target page (region plus in-region
        page number): that is the content the Page-/Region-BTB pair jointly
        deduplicates, and recording it at reference time keeps the counters a
        pure function of the update stream (the 16-bit stored page number
        alone aliases across regions, which would make install-time counts
        depend on eviction order).
        """
        self.record_search("page")
        self.record_allocation("page", (region_number << REGION_PAGE_BITS) | page_number)
        set_index_ = self._page_set_index(page_number, region_number)
        slot = self._find_page(page_number, set_index_)
        if slot is not None:
            self._page_lru[set_index_].touch(slot - set_index_ * self.page_associativity)
            return slot
        base = set_index_ * self.page_associativity
        way = next(
            (w for w in range(self.page_associativity) if not self._pages[base + w].valid),
            None,
        )
        if way is None:
            way = self._page_lru[set_index_].victim()
            self._invalidate_page_pointers(base + way)
            self.stats.inc("page_evictions")
        slot = base + way
        self._pages[slot].valid = True
        self._pages[slot].page_number = page_number
        self._pages[slot].asid = self.active_asid
        self._page_lru[set_index_].touch(way)
        self.record_write("page")
        return slot

    def _allocate_region(self, region_number: int) -> int:
        """Find or install a region number in the tiny fully-associative Region-BTB.

        Under partitioned retention the search, free-slot scan and victim
        selection are all confined to the active tenant's entry slice; with no
        partitions the slice is the whole structure and the behaviour is
        identical to the historical shared scan.
        """
        self.record_allocation("region", region_number)
        base, count = self._region_slice()
        asid = self.active_asid
        for slot in range(base, base + count):
            entry = self._regions[slot]
            if entry.valid and entry.region_number == region_number and entry.asid == asid:
                self._region_lru.touch(slot)
                return slot
        slot = next(
            (i for i in range(base, base + count) if not self._regions[i].valid), None
        )
        if slot is None:
            slot = self._region_lru.victim(range(base, base + count))
            self._invalidate_region_pointers(slot)
            self.stats.inc("region_evictions")
        self._regions[slot].valid = True
        self._regions[slot].region_number = region_number
        self._regions[slot].asid = asid
        self._region_lru.touch(slot)
        self.record_write("region")
        return slot

    def _invalidate_page_pointers(self, page_slot: int) -> None:
        for entries in self._sets:
            for entry in entries:
                if entry.valid and not entry.same_page and entry.page_pointer == page_slot:
                    entry.valid = False
                    self.stats.inc("pointer_invalidations")

    def _invalidate_region_pointers(self, region_slot: int) -> None:
        for entries in self._sets:
            for entry in entries:
                if entry.valid and not entry.same_page and entry.region_pointer == region_slot:
                    entry.valid = False
                    self.stats.inc("pointer_invalidations")

    # -- operations --------------------------------------------------------

    def _locate(self, pc: int) -> tuple[int, int]:
        index = self.partitioned_set_index(pc, self.num_sets, self.isa.alignment_bits)
        tag = partial_tag(
            self.asid_colored(pc), self._index_bits, self.tag_bits, self.isa.alignment_bits
        )
        return index, tag

    def invalidate_all(self) -> None:
        """Clear the Main-, Page- and Region-BTB (context-switch flush)."""
        for entries in self._sets:
            for entry in entries:
                entry.valid = False
        for page in self._pages:
            page.valid = False
        for region in self._regions:
            region.valid = False

    def lookup(self, pc: int) -> BTBLookupResult:
        """Probe the Main-BTB; different-page hits follow both pointers serially."""
        self.record_read("main")
        index, tag = self._locate(pc)
        for way, entry in enumerate(self._sets[index]):
            if not entry.valid or entry.tag != tag:
                continue
            self._lru[index].touch(way)
            if entry.same_page:
                # Page and region numbers are recovered from the branch PC.
                target = (
                    ((pc >> PAGE_BITS) << PAGE_BITS)
                    | (entry.page_offset << self.isa.alignment_bits)
                )
                self.stats.inc("hits")
                self.stats.inc("hits.same_page")
                return BTBLookupResult(
                    hit=True,
                    branch_type=entry.branch_type,
                    target=target,
                    target_from_ras=entry.branch_type.target_from_ras,
                    latency_cycles=1,
                    structure="main",
                )
            page = self._pages[entry.page_pointer]
            region = self._regions[entry.region_pointer]
            if not page.valid or not region.valid:
                entry.valid = False
                self.stats.inc("misses")
                return BTBLookupResult.miss()
            self.record_read("page")
            target = (
                (region.region_number << (PAGE_BITS + REGION_PAGE_BITS))
                | (page.page_number << PAGE_BITS)
                | (entry.page_offset << self.isa.alignment_bits)
            )
            self.stats.inc("hits")
            self.stats.inc("hits.different_page")
            return BTBLookupResult(
                hit=True,
                branch_type=entry.branch_type,
                target=target,
                target_from_ras=entry.branch_type.target_from_ras,
                latency_cycles=2,
                structure="main+page",
            )
        self.stats.inc("misses")
        return BTBLookupResult.miss()

    def _eligible_ways(self, same_page: bool) -> List[int]:
        """Ways an entry of the given kind may occupy.

        Same-page entries may live anywhere; different-page entries may only
        use the non-reserved (wider) ways.
        """
        if same_page:
            return list(range(self.associativity))
        return list(range(self.same_page_ways, self.associativity))

    def update(self, instruction: Instruction) -> None:
        """Insert/refresh the branch; may allocate Page-/Region-BTB entries."""
        if not instruction.is_branch:
            return
        self.record_allocation("main", instruction.pc)
        index, tag = self._locate(instruction.pc)
        entries = self._sets[index]
        region_number, page_number, page_offset_full = self._split_target(instruction.target)
        page_offset = page_offset_full >> self.isa.alignment_bits
        # Returns take their target from the RAS, so they never need page or
        # region pointers and behave like same-page entries.
        same_page = instruction.branch_type.target_from_ras or (
            (instruction.pc >> PAGE_BITS) == (instruction.target >> PAGE_BITS)
        )

        page_pointer = 0
        region_pointer = 0
        if not same_page:
            region_pointer = self._allocate_region(region_number)
            page_pointer = self._allocate_page(page_number, region_number)

        for way, entry in enumerate(entries):
            if entry.valid and entry.tag == tag:
                if not same_page and way < self.same_page_ways:
                    # A previously same-page branch (or alias) now needs pointer
                    # fields that this reserved way cannot hold: re-allocate.
                    entry.valid = False
                    self.stats.inc("reallocations")
                    break
                entry.branch_type = instruction.branch_type
                entry.page_offset = page_offset
                entry.same_page = same_page
                entry.page_pointer = page_pointer
                entry.region_pointer = region_pointer
                self._lru[index].touch(way)
                self.record_write("main")
                return

        eligible = self._eligible_ways(same_page)
        if not eligible:
            # Degenerate configuration (every way reserved for same-page
            # entries): a different-page branch simply cannot be tracked.
            self.stats.inc("unallocatable")
            return
        victim = next((way for way in eligible if not entries[way].valid), None)
        if victim is None:
            victim = self._lru[index].victim(eligible)
            self.stats.inc("evictions")
        entry = entries[victim]
        entry.valid = True
        entry.tag = tag
        entry.branch_type = instruction.branch_type
        entry.page_offset = page_offset
        entry.same_page = same_page
        entry.page_pointer = page_pointer
        entry.region_pointer = region_pointer
        self._lru[index].touch(victim)
        self.record_write("main")
        self.stats.inc("allocations")

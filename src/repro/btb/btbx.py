"""BTB-X: the paper's storage-effective BTB organization (Section V).

BTB-X is an 8-way set-associative BTB whose ways store *target offsets* of
different maximum widths instead of full target addresses.  The per-way widths
are sized from the offset distribution of Figure 4 so that each way covers
roughly 12.5 % of dynamic branches:

* Arm64: 0, 4, 5, 7, 9, 11, 19 and 25 bits,
* x86:   0, 5, 6, 7, 9, 12, 20 and 27 bits (Section VI-G).

Way 0 has no offset storage at all: it holds return instructions, whose target
comes from the return address stack.  Branches whose offsets exceed the widest
way are handled by **BTB-XC**, a small direct-mapped companion BTB that stores
full targets and has 64x fewer entries than BTB-X.

Replacement is a *constrained LRU*: on allocation, only the ways whose offset
field can hold the incoming branch's offset compete, and the least recently
used of those is evicted; recency updates are otherwise identical to plain
LRU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.config import ISAStyle
from repro.common.errors import ConfigurationError
from repro.common.lru import LRUState
from repro.common.stats import Stats
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.btb.base import BTBBase, BTBLookupResult, batch_locate, index_bits_of, partial_tag
from repro.btb.offsets import stored_offset_bits

#: Per-way offset widths for Arm64 (Figure 8) and x86 (Section VI-G).
BTBX_WAY_OFFSET_BITS_ARM64: Tuple[int, ...] = (0, 4, 5, 7, 9, 11, 19, 25)
BTBX_WAY_OFFSET_BITS_X86: Tuple[int, ...] = (0, 5, 6, 7, 9, 12, 20, 27)

#: Metadata bits per BTB-X entry: valid(1) + tag(12) + type(2) + rep_policy(3).
VALID_BITS = 1
TAG_BITS = 12
TYPE_BITS = 2
REPL_BITS = 3
METADATA_BITS = VALID_BITS + TAG_BITS + TYPE_BITS + REPL_BITS

#: A BTB-XC entry stores a full target, like a conventional entry: 64 bits.
BTBXC_ENTRY_BITS = 64


def default_way_offsets(isa: ISAStyle) -> Tuple[int, ...]:
    """The paper's per-way offset widths for the given ISA."""
    if isa is ISAStyle.ARM64:
        return BTBX_WAY_OFFSET_BITS_ARM64
    return BTBX_WAY_OFFSET_BITS_X86


@dataclass(slots=True)
class _Entry:
    valid: bool = False
    tag: int = 0
    branch_type: BranchType = BranchType.CONDITIONAL
    offset_payload: int = 0
    offset_width: int = 0  # stored-bit width actually used (<= way width)


@dataclass(slots=True)
class _CompanionEntry:
    valid: bool = False
    tag: int = 0
    branch_type: BranchType = BranchType.CONDITIONAL
    target: int = 0


class BTBXC(BTBBase):
    """The small direct-mapped companion BTB holding full targets.

    It captures the <1 % of branches whose offsets do not fit even the widest
    BTB-X way; the paper sizes it at 1/64th of the BTB-X entry count (one
    eighth of the number of BTB-X sets).
    """

    name = "btbxc"

    def __init__(
        self,
        entries: int,
        tag_bits: int = TAG_BITS,
        isa: ISAStyle = ISAStyle.ARM64,
        stats: Stats | None = None,
    ) -> None:
        super().__init__(stats)
        if entries <= 0:
            raise ConfigurationError("BTB-XC needs at least one entry")
        self.isa = isa
        self.tag_bits = tag_bits
        self.num_entries = entries
        # Direct-mapped: every entry is its own set (partitioning granularity).
        self.num_sets = entries
        self._index_bits = index_bits_of(entries)
        self._entries = [_CompanionEntry() for _ in range(entries)]

    def _locate(self, pc: int) -> tuple[int, int]:
        index = self.partitioned_set_index(pc, self.num_entries, self.isa.alignment_bits)
        tag = partial_tag(
            self.asid_colored(pc), self._index_bits, self.tag_bits, self.isa.alignment_bits
        )
        return index, tag

    def lookup(self, pc: int) -> BTBLookupResult:
        """Direct-mapped probe; accessed in parallel with BTB-X."""
        index, tag = self._locate(pc)
        return self.lookup_prelocated(pc, index, tag)

    def lookup_prelocated(self, pc: int, index: int, tag: int) -> BTBLookupResult:
        """The probe proper, with index and tag precomputed (batched backend)."""
        self.record_read("companion")
        entry = self._entries[index]
        if entry.valid and entry.tag == tag:
            self.stats.inc("hits")
            return BTBLookupResult(
                hit=True,
                branch_type=entry.branch_type,
                target=entry.target,
                target_from_ras=entry.branch_type.target_from_ras,
                structure="companion",
            )
        self.stats.inc("misses")
        return BTBLookupResult.miss()

    def update(self, instruction: Instruction) -> None:
        """Insert/refresh; direct-mapped, so the indexed entry is overwritten."""
        self.record_allocation("companion", instruction.pc)
        index, tag = self._locate(instruction.pc)
        entry = self._entries[index]
        if entry.valid and entry.tag != tag:
            self.stats.inc("evictions")
        entry.valid = True
        entry.tag = tag
        entry.branch_type = instruction.branch_type
        entry.target = instruction.target
        self.record_write("companion")

    def storage_bits(self) -> int:
        """Total storage of the companion."""
        return self.num_entries * BTBXC_ENTRY_BITS

    def capacity_entries(self) -> int:
        """Number of companion entries."""
        return self.num_entries

    def invalidate_all(self) -> None:
        """Clear every companion entry."""
        for entry in self._entries:
            entry.valid = False

    def _resident_lookup_keys(self) -> List[int]:
        """``(slot << tag_bits) | tag`` of every valid entry (miss filtering)."""
        tag_bits = self.tag_bits
        return [
            (index << tag_bits) | entry.tag
            for index, entry in enumerate(self._entries)
            if entry.valid
        ]

    def note_skipped_miss_lookups(self, count: int) -> None:
        """Bulk-account ``count`` proven-miss probes the engine skipped."""
        self.reads["companion"] = self.reads.get("companion", 0) + count
        self.stats.inc("misses", count)


class BTBX(BTBBase):
    """BTB-X proper: skewed-width offset ways plus the BTB-XC companion."""

    name = "btbx"

    def __init__(
        self,
        entries: int,
        way_offset_bits: Sequence[int] | None = None,
        companion_divisor: int = 64,
        tag_bits: int = TAG_BITS,
        isa: ISAStyle = ISAStyle.ARM64,
        stats: Stats | None = None,
    ) -> None:
        super().__init__(stats)
        widths = tuple(way_offset_bits) if way_offset_bits is not None else default_way_offsets(isa)
        if not widths:
            raise ConfigurationError("BTB-X needs at least one way")
        if sorted(widths) != list(widths):
            raise ConfigurationError("BTB-X way offset widths must be non-decreasing")
        associativity = len(widths)
        if entries <= 0 or entries % associativity != 0:
            raise ConfigurationError(
                f"BTB-X entries ({entries}) must be a positive multiple of the way count ({associativity})"
            )
        self.isa = isa
        self.tag_bits = tag_bits
        self.way_offset_bits = widths
        self.associativity = associativity
        self.num_sets = entries // associativity
        self._index_bits = index_bits_of(self.num_sets)
        # Sets materialize lazily on first install (see
        # SetAssociativeCache.__init__ for the bit-exactness argument): a
        # probe of an unmaterialized set is a miss with nothing to scan.
        self._sets: List[List[_Entry] | None] = [None] * self.num_sets
        self._lru: List[LRUState | None] = [None] * self.num_sets
        # Residency shadow (numpy ``(valid, tag)`` per set x way), built
        # lazily by the first batch_plan and kept write-through from then on;
        # the scalar backend never builds it, so it costs that path nothing.
        self._shadow_valid = None
        self._shadow_tags = None
        # Per-set residency generation: bumped on every ``(valid, tag)``
        # mutation (allocation, reallocation-invalidation, invalidation) and
        # NOT on refreshes or LRU movement.  Batch plans snapshot it to
        # certify preresolved probes at lookup time.
        self._set_gen = [0] * self.num_sets
        # Per-way hit/allocation counters (kept as plain lists for speed; they
        # are exposed through way_hit_counts()/way_allocation_counts()).
        self._way_hits = [0] * associativity
        self._way_allocations = [0] * associativity
        if companion_divisor and companion_divisor > 0:
            companion_entries = max(entries // companion_divisor, 1)
            self.companion: BTBXC | None = BTBXC(
                companion_entries, tag_bits=tag_bits, isa=isa, stats=self._stats_registry
            )
        else:
            self.companion = None

    # -- geometry ----------------------------------------------------------

    @property
    def max_offset_bits(self) -> int:
        """Width of the widest offset way."""
        return self.way_offset_bits[-1]

    def set_bits(self) -> int:
        """Storage bits of one set: 8 entries' metadata plus all offset fields.

        With the paper's Arm64 widths this is 8*18 + 80 = 224 bits (Table III).
        """
        return self.associativity * METADATA_BITS + sum(self.way_offset_bits)

    def storage_bits(self) -> int:
        """Total storage, including the BTB-XC companion when present."""
        total = self.num_sets * self.set_bits()
        if self.companion is not None:
            total += self.companion.storage_bits()
        return total

    def capacity_entries(self) -> int:
        """Branch capacity: BTB-X entries plus companion entries."""
        companion = self.companion.capacity_entries() if self.companion is not None else 0
        return self.num_sets * self.associativity + companion

    # -- operations --------------------------------------------------------

    def _locate(self, pc: int) -> tuple[int, int]:
        index = self.partitioned_set_index(pc, self.num_sets, self.isa.alignment_bits)
        tag = partial_tag(
            self.asid_colored(pc), self._index_bits, self.tag_bits, self.isa.alignment_bits
        )
        return index, tag

    def set_active_asid(self, asid: int) -> None:
        """Propagate the ASID to the companion so both structures agree."""
        super().set_active_asid(asid)
        if self.companion is not None:
            self.companion.set_active_asid(asid)

    def configure_partitions(self, weights: Sequence[int] | None) -> None:
        """Partition BTB-X sets per tenant; the companion follows when it can.

        BTB-XC holds the <1 % widest-offset branches and can be as small as a
        single entry, so when it has fewer entries than tenants it stays
        shared (its entries are still ASID-colored, so sharing is false-hit
        free -- the only cross-tenant effect is eviction pressure on that
        sliver of capacity).
        """
        super().configure_partitions(weights)
        if self.companion is not None:
            self.companion.configure_partitions(weights)

    def secondary_partition_counts(self) -> dict[str, list[int]]:
        """Per-tenant companion slices, when the companion is partitioned."""
        if self.companion is None:
            return {}
        counts = self.companion.partition_set_counts()
        return {} if counts is None else {"companion": counts}

    def duplication_counts(self) -> dict[str, dict[str, int]]:
        """Main-BTB duplication plus the companion's, under one report."""
        counts = super().duplication_counts()
        if self.companion is not None:
            counts.update(self.companion.duplication_counts())
        return counts

    def energy_access_counts(self) -> dict[str, float]:
        """Main counters plus the companion's read/write/search traffic.

        Only the access-counter keys are merged: the companion's *event*
        counters (hits/misses) are already folded into the main BTB's stats
        by :meth:`lookup`, so summing those as well would double-count.
        """
        counts = super().energy_access_counts()
        if self.companion is not None:
            for key, value in self.companion.access_counts().items():
                if key.startswith(("reads.", "writes.", "searches.")):
                    counts[key] = counts.get(key, 0.0) + float(value)
        return counts

    def reset_stats(self) -> None:
        """Zero the main counters *and* the companion's.

        The companion is a separate :class:`BTBBase` with its own counter
        dicts and stats prefix; without this override a warmup/measurement
        boundary would reset the main BTB only, leaving warmup traffic in
        the companion's counters (and so in the exported energy numbers).
        """
        super().reset_stats()
        if self.companion is not None:
            self.companion.reset_stats()

    def _recover_target(self, pc: int, entry: _Entry) -> int:
        """Concatenate the branch PC's high bits with the stored offset.

        The number of PC bits replaced is the entry's recorded offset width
        plus the ISA alignment bits; because that width covers every bit in
        which PC and target differ, the concatenation reproduces the full
        target exactly and needs no adder (Section V-B).
        """
        width = entry.offset_width + self.isa.alignment_bits
        return ((pc >> width) << width) | (entry.offset_payload << self.isa.alignment_bits)

    def lookup(self, pc: int) -> BTBLookupResult:
        """Probe all ways (and BTB-XC) in parallel with the PC."""
        index, tag = self._locate(pc)
        return self.lookup_prelocated(pc, index, tag, None, None)

    def lookup_prelocated(
        self,
        pc: int,
        index: int,
        tag: int,
        companion_index: int | None,
        companion_tag: int | None,
    ) -> BTBLookupResult:
        """The probe proper, with main (and optionally companion) pre-located.

        ``companion_index=None`` locates the companion lazily, preserving the
        scalar path's behaviour of only computing it when the main ways miss;
        the batched backend passes both pairs from its chunk-vectorized
        arrays.
        """
        self.record_read("main")
        for way, entry in enumerate(self._sets[index] or ()):
            if entry.valid and entry.tag == tag:
                self._lru[index].touch(way)
                self.stats.inc("hits")
                self._way_hits[way] += 1
                if entry.branch_type.target_from_ras:
                    return BTBLookupResult(
                        hit=True,
                        branch_type=entry.branch_type,
                        target=None,
                        target_from_ras=True,
                        structure=f"way{way}",
                    )
                return BTBLookupResult(
                    hit=True,
                    branch_type=entry.branch_type,
                    target=self._recover_target(pc, entry),
                    structure=f"way{way}",
                )
        if self.companion is not None:
            if companion_index is None:
                companion_result = self.companion.lookup(pc)
            else:
                companion_result = self.companion.lookup_prelocated(
                    pc, companion_index, companion_tag
                )
            if companion_result.hit:
                self.stats.inc("hits")
                self.stats.inc("hits.companion")
                return companion_result
        self.stats.inc("misses")
        return BTBLookupResult.miss()

    def _eligible_ways(self, required_bits: int) -> List[int]:
        """Ways whose offset field can hold ``required_bits`` stored bits."""
        return [way for way, width in enumerate(self.way_offset_bits) if width >= required_bits]

    def update(self, instruction: Instruction) -> None:
        """Allocate or refresh the entry for a committed taken branch.

        The branch's required stored-offset width determines the set of ways it
        may occupy; returns (0 bits) fit everywhere, and branches wider than the
        widest way go to BTB-XC instead.
        """
        if not instruction.is_branch:
            return
        required = stored_offset_bits(
            instruction.pc, instruction.target, isa=self.isa, branch_type=instruction.branch_type
        )
        if required > self.max_offset_bits:
            self.stats.inc("overflow_to_companion")
            if self.companion is not None:
                self.companion.update(instruction)
            return

        self.record_allocation("main", instruction.pc)
        index, tag = self._locate_for_update(instruction.pc)
        entries = self._sets[index]
        if entries is None:
            entries = self._materialize(index)
        payload = self._offset_payload(instruction, required)

        # Refresh an existing entry if the branch is already present and its
        # (possibly new, for indirect branches) offset still fits that way.
        for way, entry in enumerate(entries):
            if entry.valid and entry.tag == tag:
                if self.way_offset_bits[way] >= required:
                    changed = (
                        entry.offset_payload != payload
                        or entry.branch_type != instruction.branch_type
                        or entry.offset_width != required
                    )
                    entry.branch_type = instruction.branch_type
                    entry.offset_payload = payload
                    entry.offset_width = required
                    self._lru[index].touch(way)
                    if changed:
                        self.record_write("main")
                    return
                # The target moved out of this way's reach (indirect branch):
                # drop the stale entry and re-allocate below.
                entry.valid = False
                self._set_gen[index] += 1
                if self._shadow_valid is not None:
                    self._shadow_valid[index, way] = False
                self.stats.inc("reallocations")
                break

        eligible = self._eligible_ways(required)
        victim = next((way for way in eligible if not entries[way].valid), None)
        if victim is None:
            victim = self._lru[index].victim(eligible)
            self.stats.inc("evictions")
        entry = entries[victim]
        entry.valid = True
        entry.tag = tag
        entry.branch_type = instruction.branch_type
        entry.offset_payload = payload
        entry.offset_width = required
        self._lru[index].touch(victim)
        self._set_gen[index] += 1
        if self._shadow_tags is not None:
            self._shadow_valid[index, victim] = True
            self._shadow_tags[index, victim] = tag
        self.record_write("main")
        self.stats.inc("allocations")
        self._way_allocations[victim] += 1

    def _materialize(self, index: int) -> List[_Entry]:
        """Allocate the ways (and LRU state) of set ``index`` on first install."""
        entries = [_Entry() for _ in range(self.associativity)]
        self._sets[index] = entries
        self._lru[index] = LRUState(self.associativity)
        return entries

    def _offset_payload(self, instruction: Instruction, required_bits: int) -> int:
        """The stored offset payload: low target bits above the alignment bits."""
        if required_bits == 0:
            return 0
        return (instruction.target >> self.isa.alignment_bits) & ((1 << required_bits) - 1)

    def way_hit_counts(self) -> List[int]:
        """Per-way hit counts accumulated so far."""
        return list(self._way_hits)

    def way_allocation_counts(self) -> List[int]:
        """Per-way allocation counts accumulated so far."""
        return list(self._way_allocations)

    def invalidate_all(self) -> None:
        """Clear every entry, including the companion (tests/warmup control)."""
        self._sets = [None] * self.num_sets
        self._lru = [None] * self.num_sets
        self._set_gen = [gen + 1 for gen in self._set_gen]
        if self._shadow_valid is not None:
            self._shadow_valid[:] = False
        if self.companion is not None:
            self.companion.invalidate_all()

    # -- batched backend ---------------------------------------------------

    def _ensure_shadow(self):
        """Build (once) and return the numpy ``(valid, tags)`` residency shadow.

        Mirrors exactly the ``(entry.valid, entry.tag)`` pairs of the main
        ways; allocation, reallocation-invalidation and
        :meth:`invalidate_all` write through after this first full scan.
        """
        if self._shadow_tags is None:
            from repro.traces.batch import np

            self._shadow_valid = np.zeros((self.num_sets, self.associativity), dtype=bool)
            self._shadow_tags = np.zeros((self.num_sets, self.associativity), dtype=np.uint64)
            for index, entries in enumerate(self._sets):
                if entries is None:
                    continue
                for way, entry in enumerate(entries):
                    if entry.valid:
                        self._shadow_valid[index, way] = True
                        self._shadow_tags[index, way] = entry.tag
        return self._shadow_valid, self._shadow_tags

    def batch_plan(self, pcs, taken_branch_pcs):
        """Chunk plan over main ways *and* the companion.

        A PC is a guaranteed miss only when it provably misses both
        structures; the chunk's taken-branch keys are conservatively blocked
        in both (overflow branches install in the companion, the rest in the
        main ways -- blocking both merely shrinks the fast set, never breaks
        exactness).  See :meth:`repro.btb.base.BTBBase.batch_plan`.

        On top of that, the plan *preresolves* the main ways of every probe
        against the residency shadow, guarded at lookup time by the set's
        residency generation (same argument as
        :meth:`ConventionalBTB.batch_plan`): a known hit way skips the scan,
        a known main miss degrades to the companion's one-entry direct-mapped
        probe, performed live so companion mutations mid-chunk (overflow
        installs) need no static analysis at all.
        """
        from repro.traces.batch import np

        index, tag = batch_locate(self, pcs, self.num_sets)
        valid, tags = self._ensure_shadow()
        match = valid[index] & (tags[index] == tag[:, None])
        hit_any = match.any(axis=1)
        resolved = np.where(hit_any, match.argmax(axis=1).astype(np.int64), np.int64(-1))
        has_taken = len(taken_branch_pcs) > 0
        if has_taken:
            tb_index, tb_tag = batch_locate(self, taken_branch_pcs, self.num_sets)
            shift = np.uint64(self.tag_bits)
            keys = (index << shift) | tag
            installed = (tb_index << shift) | tb_tag
            guaranteed_miss = ~hit_any & ~np.isin(keys, installed)
        else:
            guaranteed_miss = ~hit_any
        gen = np.asarray(self._set_gen, dtype=np.int64)[index]
        resolved_list = resolved.tolist()
        gen_list = gen.tolist()

        companion = self.companion
        if companion is None:
            return _BTBXBatchPlan(
                self,
                index.tolist(),
                tag.tolist(),
                None,
                None,
                resolved_list,
                gen_list,
                guaranteed_miss,
            )
        c_index, c_tag = batch_locate(companion, pcs, companion.num_entries)
        c_shift = np.uint64(companion.tag_bits)
        c_keys = (c_index << c_shift) | c_tag
        c_blocked = np.asarray(companion._resident_lookup_keys(), dtype=np.uint64)
        if has_taken:
            tb_c_index, tb_c_tag = batch_locate(companion, taken_branch_pcs, companion.num_entries)
            c_blocked = np.concatenate([c_blocked, (tb_c_index << c_shift) | tb_c_tag])
        guaranteed_miss &= ~np.isin(c_keys, c_blocked)
        return _BTBXBatchPlan(
            self,
            index.tolist(),
            tag.tolist(),
            c_index.tolist(),
            c_tag.tolist(),
            resolved_list,
            gen_list,
            guaranteed_miss,
        )

    def note_skipped_miss_lookups(self, count: int) -> None:
        """Bulk-account ``count`` proven-miss lookups (main and companion)."""
        self.reads["main"] = self.reads.get("main", 0) + count
        self.stats.inc("misses", count)
        if self.companion is not None:
            self.companion.note_skipped_miss_lookups(count)


class _BTBXBatchPlan:
    """Per-chunk lookup plan of a :class:`BTBX` (main plus companion)."""

    __slots__ = (
        "_btb", "_index", "_tag", "_c_index", "_c_tag", "_resolved", "_gen", "guaranteed_miss",
    )

    def __init__(
        self, btb: BTBX, index, tag, c_index, c_tag, resolved, gen, guaranteed_miss
    ) -> None:
        self._btb = btb
        self._index = index
        self._tag = tag
        self._c_index = c_index
        self._c_tag = c_tag
        #: Per-position preresolution of the main ways against the plan-time
        #: shadow: ``-1`` certain main miss (only the companion is probed,
        #: live), ``>= 0`` the main hit way.  Valid while the set's residency
        #: generation still equals the plan-time snapshot.
        self._resolved = resolved
        self._gen = gen
        self.guaranteed_miss = guaranteed_miss

    def lookup(self, position: int, pc: int) -> BTBLookupResult:
        """Probe with the chunk-vectorized resolution of ``position``.

        Preresolved positions skip the main way scan but replay its every
        side effect -- read/hit/miss counters, per-way hit counts, the hit
        way's LRU touch, the companion fallthrough on a main miss -- so the
        result and all architectural state match the scalar probe bit for
        bit.  A position whose set changed residency since plan time
        (generation mismatch) replays through the ordinary scalar probe.
        Either way the main-array location doubles as the update hint
        (``_locate_for_update``) for a taken branch's commit-time
        :meth:`BTBX.update`.
        """
        btb = self._btb
        index = self._index[position]
        tag = self._tag[position]
        btb._update_hint = (pc, index, tag)
        if btb._set_gen[index] != self._gen[position]:
            if self._c_index is None:
                return btb.lookup_prelocated(pc, index, tag, None, None)
            return btb.lookup_prelocated(
                pc, index, tag, self._c_index[position], self._c_tag[position]
            )
        way = self._resolved[position]
        btb.reads["main"] = btb.reads.get("main", 0) + 1
        if way >= 0:
            entry = btb._sets[index][way]
            btb._lru[index].touch(way)
            btb.stats.inc("hits")
            btb._way_hits[way] += 1
            if entry.branch_type.target_from_ras:
                return BTBLookupResult(
                    hit=True,
                    branch_type=entry.branch_type,
                    target=None,
                    target_from_ras=True,
                    structure=f"way{way}",
                )
            return BTBLookupResult(
                hit=True,
                branch_type=entry.branch_type,
                target=btb._recover_target(pc, entry),
                structure=f"way{way}",
            )
        # way == -1: certain main miss -- only the companion can hit.
        companion = btb.companion
        if companion is not None:
            result = companion.lookup_prelocated(
                pc, self._c_index[position], self._c_tag[position]
            )
            if result.hit:
                btb.stats.inc("hits")
                btb.stats.inc("hits.companion")
                return result
        btb.stats.inc("misses")
        return BTBLookupResult.miss()

"""The conventional BTB of Figure 1: full targets, set-associative, LRU.

Each entry stores a valid bit, a 12-bit partial tag, a 2-bit branch type, a
46-bit target (48-bit virtual addresses minus the two Arm64 alignment bits)
and 3 replacement-policy bits -- 64 bits per entry in total.  This is the
baseline (Conv-BTB) of every comparison in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.config import ISAStyle
from repro.common.errors import ConfigurationError
from repro.common.lru import LRUState
from repro.common.stats import Stats
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.btb.base import BTBBase, BTBLookupResult, index_bits_of, partial_tag

#: Field widths of a conventional BTB entry (Figure 1).
VALID_BITS = 1
TAG_BITS = 12
TYPE_BITS = 2
REPL_BITS = 3


@dataclass
class _Entry:
    valid: bool = False
    tag: int = 0
    branch_type: BranchType = BranchType.CONDITIONAL
    target: int = 0


class ConventionalBTB(BTBBase):
    """Set-associative BTB storing full target addresses."""

    name = "conventional"

    def __init__(
        self,
        entries: int,
        associativity: int = 8,
        tag_bits: int = TAG_BITS,
        isa: ISAStyle = ISAStyle.ARM64,
        virtual_address_bits: int = 48,
        stats: Stats | None = None,
    ) -> None:
        super().__init__(stats)
        if entries <= 0:
            raise ConfigurationError("conventional BTB needs at least one entry")
        if associativity <= 0 or entries % associativity != 0:
            raise ConfigurationError(
                f"entries ({entries}) must be a positive multiple of associativity ({associativity})"
            )
        self.isa = isa
        self.tag_bits = tag_bits
        self.associativity = associativity
        self.num_sets = entries // associativity
        self.virtual_address_bits = virtual_address_bits
        self._index_bits = index_bits_of(self.num_sets)
        self._sets: List[List[_Entry]] = [
            [_Entry() for _ in range(associativity)] for _ in range(self.num_sets)
        ]
        self._lru: List[LRUState] = [LRUState(associativity) for _ in range(self.num_sets)]

    # -- geometry ----------------------------------------------------------

    @property
    def target_bits(self) -> int:
        """Bits needed to store a full target for the configured ISA."""
        return self.virtual_address_bits - self.isa.alignment_bits

    def entry_bits(self) -> int:
        """Storage bits of a single entry (64 for the paper's parameters)."""
        return VALID_BITS + self.tag_bits + TYPE_BITS + REPL_BITS + self.target_bits

    def storage_bits(self) -> int:
        """Total storage of the BTB."""
        return self.capacity_entries() * self.entry_bits()

    def capacity_entries(self) -> int:
        """Number of branch entries."""
        return self.num_sets * self.associativity

    # -- operations --------------------------------------------------------

    def _locate(self, pc: int) -> tuple[int, int]:
        index = self.partitioned_set_index(pc, self.num_sets, self.isa.alignment_bits)
        tag = partial_tag(
            self.asid_colored(pc), self._index_bits, self.tag_bits, self.isa.alignment_bits
        )
        return index, tag

    def lookup(self, pc: int) -> BTBLookupResult:
        """Probe all ways of the indexed set in parallel."""
        self.record_read("main")
        index, tag = self._locate(pc)
        for way, entry in enumerate(self._sets[index]):
            if entry.valid and entry.tag == tag:
                self._lru[index].touch(way)
                self.stats.inc("hits")
                return BTBLookupResult(
                    hit=True,
                    branch_type=entry.branch_type,
                    target=entry.target,
                    target_from_ras=entry.branch_type.target_from_ras,
                    structure="main",
                )
        self.stats.inc("misses")
        return BTBLookupResult.miss()

    def update(self, instruction: Instruction) -> None:
        """Insert or refresh the committed taken branch ``instruction``."""
        if not instruction.is_branch:
            return
        self.record_allocation("main", instruction.pc)
        index, tag = self._locate(instruction.pc)
        entries = self._sets[index]
        for way, entry in enumerate(entries):
            if entry.valid and entry.tag == tag:
                if entry.target != instruction.target or entry.branch_type != instruction.branch_type:
                    self.record_write("main")
                entry.target = instruction.target
                entry.branch_type = instruction.branch_type
                self._lru[index].touch(way)
                return
        # Allocate: prefer an invalid way, otherwise evict the LRU way.
        victim = next(
            (way for way, entry in enumerate(entries) if not entry.valid),
            None,
        )
        if victim is None:
            victim = self._lru[index].victim()
            self.stats.inc("evictions")
        entry = entries[victim]
        entry.valid = True
        entry.tag = tag
        entry.branch_type = instruction.branch_type
        entry.target = instruction.target
        self._lru[index].touch(victim)
        self.record_write("main")
        self.stats.inc("allocations")

    def invalidate_all(self) -> None:
        """Clear every entry (used by tests and warmup control)."""
        for entries in self._sets:
            for entry in entries:
                entry.valid = False

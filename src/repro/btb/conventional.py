"""The conventional BTB of Figure 1: full targets, set-associative, LRU.

Each entry stores a valid bit, a 12-bit partial tag, a 2-bit branch type, a
46-bit target (48-bit virtual addresses minus the two Arm64 alignment bits)
and 3 replacement-policy bits -- 64 bits per entry in total.  This is the
baseline (Conv-BTB) of every comparison in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.config import ISAStyle
from repro.common.errors import ConfigurationError
from repro.common.lru import LRUState
from repro.common.stats import Stats
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.btb.base import BTBBase, BTBLookupResult, batch_locate, index_bits_of, partial_tag

#: Field widths of a conventional BTB entry (Figure 1).
VALID_BITS = 1
TAG_BITS = 12
TYPE_BITS = 2
REPL_BITS = 3


@dataclass(slots=True)
class _Entry:
    valid: bool = False
    tag: int = 0
    branch_type: BranchType = BranchType.CONDITIONAL
    target: int = 0


class ConventionalBTB(BTBBase):
    """Set-associative BTB storing full target addresses."""

    name = "conventional"

    def __init__(
        self,
        entries: int,
        associativity: int = 8,
        tag_bits: int = TAG_BITS,
        isa: ISAStyle = ISAStyle.ARM64,
        virtual_address_bits: int = 48,
        stats: Stats | None = None,
    ) -> None:
        super().__init__(stats)
        if entries <= 0:
            raise ConfigurationError("conventional BTB needs at least one entry")
        if associativity <= 0 or entries % associativity != 0:
            raise ConfigurationError(
                f"entries ({entries}) must be a positive multiple of associativity ({associativity})"
            )
        self.isa = isa
        self.tag_bits = tag_bits
        self.associativity = associativity
        self.num_sets = entries // associativity
        self.virtual_address_bits = virtual_address_bits
        self._index_bits = index_bits_of(self.num_sets)
        # Sets materialize lazily on first install (see
        # SetAssociativeCache.__init__ for the bit-exactness argument).
        self._sets: List[List[_Entry] | None] = [None] * self.num_sets
        self._lru: List[LRUState | None] = [None] * self.num_sets
        # Residency shadow (numpy ``(valid, tag)`` per set x way), built
        # lazily by the first batch_plan and kept write-through from then on;
        # the scalar backend never builds it, so it costs that path nothing.
        self._shadow_valid = None
        self._shadow_tags = None
        # Per-set residency generation: bumped on every ``(valid, tag)``
        # mutation (allocation, invalidation) and NOT on refreshes or LRU
        # movement.  Batch plans snapshot it to certify that a preresolved
        # hit way / certain miss is still current at lookup time.
        self._set_gen = [0] * self.num_sets

    # -- geometry ----------------------------------------------------------

    @property
    def target_bits(self) -> int:
        """Bits needed to store a full target for the configured ISA."""
        return self.virtual_address_bits - self.isa.alignment_bits

    def entry_bits(self) -> int:
        """Storage bits of a single entry (64 for the paper's parameters)."""
        return VALID_BITS + self.tag_bits + TYPE_BITS + REPL_BITS + self.target_bits

    def storage_bits(self) -> int:
        """Total storage of the BTB."""
        return self.capacity_entries() * self.entry_bits()

    def capacity_entries(self) -> int:
        """Number of branch entries."""
        return self.num_sets * self.associativity

    # -- operations --------------------------------------------------------

    def _locate(self, pc: int) -> tuple[int, int]:
        index = self.partitioned_set_index(pc, self.num_sets, self.isa.alignment_bits)
        tag = partial_tag(
            self.asid_colored(pc), self._index_bits, self.tag_bits, self.isa.alignment_bits
        )
        return index, tag

    def lookup(self, pc: int) -> BTBLookupResult:
        """Probe all ways of the indexed set in parallel."""
        index, tag = self._locate(pc)
        return self.lookup_prelocated(pc, index, tag)

    def lookup_prelocated(self, pc: int, index: int, tag: int) -> BTBLookupResult:
        """The lookup proper, with set index and tag already computed.

        The batched backend vectorizes ``_locate`` over a whole scheduling
        chunk and probes through here; :meth:`lookup` is now a thin scalar
        wrapper, so the two paths share one probe implementation.
        """
        self.record_read("main")
        for way, entry in enumerate(self._sets[index] or ()):
            if entry.valid and entry.tag == tag:
                self._lru[index].touch(way)
                self.stats.inc("hits")
                return BTBLookupResult(
                    hit=True,
                    branch_type=entry.branch_type,
                    target=entry.target,
                    target_from_ras=entry.branch_type.target_from_ras,
                    structure="main",
                )
        self.stats.inc("misses")
        return BTBLookupResult.miss()

    def _materialize(self, index: int) -> List[_Entry]:
        """Allocate the ways (and LRU state) of set ``index`` on first install."""
        entries = [_Entry() for _ in range(self.associativity)]
        self._sets[index] = entries
        self._lru[index] = LRUState(self.associativity)
        return entries

    def update(self, instruction: Instruction) -> None:
        """Insert or refresh the committed taken branch ``instruction``."""
        if not instruction.is_branch:
            return
        self.record_allocation("main", instruction.pc)
        index, tag = self._locate_for_update(instruction.pc)
        entries = self._sets[index]
        if entries is None:
            entries = self._materialize(index)
        for way, entry in enumerate(entries):
            if entry.valid and entry.tag == tag:
                if entry.target != instruction.target or entry.branch_type != instruction.branch_type:
                    self.record_write("main")
                entry.target = instruction.target
                entry.branch_type = instruction.branch_type
                self._lru[index].touch(way)
                return
        # Allocate: prefer an invalid way, otherwise evict the LRU way.
        victim = next(
            (way for way, entry in enumerate(entries) if not entry.valid),
            None,
        )
        if victim is None:
            victim = self._lru[index].victim()
            self.stats.inc("evictions")
        entry = entries[victim]
        entry.valid = True
        entry.tag = tag
        entry.branch_type = instruction.branch_type
        entry.target = instruction.target
        self._lru[index].touch(victim)
        self._set_gen[index] += 1
        if self._shadow_tags is not None:
            self._shadow_valid[index, victim] = True
            self._shadow_tags[index, victim] = tag
        self.record_write("main")
        self.stats.inc("allocations")

    def invalidate_all(self) -> None:
        """Clear every entry (used by tests and warmup control)."""
        self._sets = [None] * self.num_sets
        self._lru = [None] * self.num_sets
        self._set_gen = [gen + 1 for gen in self._set_gen]
        if self._shadow_valid is not None:
            self._shadow_valid[:] = False

    # -- batched backend ---------------------------------------------------

    def _ensure_shadow(self):
        """Build (once) and return the numpy ``(valid, tags)`` residency shadow.

        The shadow mirrors exactly the ``(entry.valid, entry.tag)`` pairs the
        scalar probe compares against; every later mutation point (allocation,
        :meth:`invalidate_all`) writes through, so after this first full scan
        the resident set is always readable as two array gathers.
        """
        if self._shadow_tags is None:
            from repro.traces.batch import np

            self._shadow_valid = np.zeros((self.num_sets, self.associativity), dtype=bool)
            self._shadow_tags = np.zeros((self.num_sets, self.associativity), dtype=np.uint64)
            for index, entries in enumerate(self._sets):
                if entries is None:
                    continue
                for way, entry in enumerate(entries):
                    if entry.valid:
                        self._shadow_valid[index, way] = True
                        self._shadow_tags[index, way] = entry.tag
        return self._shadow_valid, self._shadow_tags

    def batch_plan(self, pcs, taken_branch_pcs):
        """Chunk plan: preresolved probes plus a static guaranteed-miss filter.

        Beyond the contract of :meth:`repro.btb.base.BTBBase.batch_plan`, the
        plan *preresolves* every probe against the residency shadow: hit way
        or certain miss, each guarded at lookup time by the set's residency
        generation.  An unchanged generation proves the set's ``(valid, tag)``
        state is exactly the plan-time shadow (refreshes and LRU movement
        never bump it, and a preresolved hit reads the live entry anyway, so
        payload refreshes are always observed); any set that did change falls
        back to the ordinary scalar probe.
        """
        from repro.traces.batch import np

        index, tag = batch_locate(self, pcs, self.num_sets)
        valid, tags = self._ensure_shadow()
        match = valid[index] & (tags[index] == tag[:, None])
        hit_any = match.any(axis=1)
        resolved = np.where(hit_any, match.argmax(axis=1).astype(np.int64), np.int64(-1))
        if len(taken_branch_pcs):
            tb_index, tb_tag = batch_locate(self, taken_branch_pcs, self.num_sets)
            shift = np.uint64(self.tag_bits)
            installed = (tb_index << shift) | tb_tag
            keys = (index << shift) | tag
            guaranteed_miss = ~hit_any & ~np.isin(keys, installed)
        else:
            guaranteed_miss = ~hit_any
        gen = np.asarray(self._set_gen, dtype=np.int64)[index]
        return _ConventionalBatchPlan(
            self, index.tolist(), tag.tolist(), resolved.tolist(), gen.tolist(), guaranteed_miss
        )

    def note_skipped_miss_lookups(self, count: int) -> None:
        """Bulk-account ``count`` proven-miss lookups the engine skipped."""
        self.reads["main"] = self.reads.get("main", 0) + count
        self.stats.inc("misses", count)


class _ConventionalBatchPlan:
    """Per-chunk lookup plan of a :class:`ConventionalBTB`."""

    __slots__ = ("_btb", "_index", "_tag", "_resolved", "_gen", "guaranteed_miss")

    def __init__(self, btb: ConventionalBTB, index, tag, resolved, gen, guaranteed_miss) -> None:
        self._btb = btb
        self._index = index
        self._tag = tag
        #: Per-position preresolution against the plan-time shadow: ``-1``
        #: certain miss, ``>= 0`` the hit way.  Valid while the set's
        #: residency generation still equals the plan-time snapshot.
        self._resolved = resolved
        self._gen = gen
        self.guaranteed_miss = guaranteed_miss

    def lookup(self, position: int, pc: int) -> BTBLookupResult:
        """Probe with the chunk-vectorized resolution of ``position``.

        Preresolved positions skip the way scan but replay its every side
        effect -- read/hit/miss counters and the hit way's LRU touch -- so
        the result and all architectural state match the scalar probe bit
        for bit.  A position whose set changed residency since plan time
        (generation mismatch) replays through the ordinary scalar probe.
        Either way the location doubles as the update hint
        (``_locate_for_update``) for a taken branch's commit-time update.
        """
        btb = self._btb
        index = self._index[position]
        tag = self._tag[position]
        btb._update_hint = (pc, index, tag)
        if btb._set_gen[index] != self._gen[position]:
            return btb.lookup_prelocated(pc, index, tag)
        way = self._resolved[position]
        btb.reads["main"] = btb.reads.get("main", 0) + 1
        if way < 0:
            btb.stats.inc("misses")
            return BTBLookupResult.miss()
        entry = btb._sets[index][way]
        btb._lru[index].touch(way)
        btb.stats.inc("hits")
        return BTBLookupResult(
            hit=True,
            branch_type=entry.branch_type,
            target=entry.target,
            target_from_ras=entry.branch_type.target_from_ras,
            structure="main",
        )

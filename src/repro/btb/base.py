"""Common interface and machinery shared by all BTB organizations.

Every organization implements the same three operations the front end needs:

* :meth:`BTBBase.lookup` -- probe the BTB with a PC during prediction;
* :meth:`BTBBase.update` -- insert/refresh an entry when a taken branch
  commits (the paper updates the BTB at commit, for taken branches only);
* :meth:`BTBBase.storage_bits` -- report the SRAM bits the organization needs,
  used by the storage analysis and the energy model.

The lookup result distinguishes three cases the branch-prediction unit treats
differently: a miss, a hit whose target is supplied by the BTB, and a hit on a
return whose target must be read from the return address stack.

Everything ASID-shaped -- tag coloring, capacity partitioning, duplication
accounting -- is delegated to one :class:`repro.common.asid.AddressSpacePolicy`
per organization (secondary structures register extra *domains* on the same
policy), so the context-switch semantics live in exactly one module.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.common.asid import AddressSpacePolicy
from repro.common.bitutils import fold_xor
from repro.common.config import validate_partition_weights
from repro.common.stats import StatGroup, Stats
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction


@dataclass(frozen=True)
class BTBLookupResult:
    """Outcome of probing a BTB with a PC."""

    hit: bool
    branch_type: BranchType | None = None
    target: int | None = None
    target_from_ras: bool = False
    #: Number of cycles the lookup occupies the BTB port (PDede's
    #: different-page lookups take two cycles, everything else one).
    latency_cycles: int = 1
    #: Name of the structure/partition that produced the hit (for energy
    #: accounting and debugging); empty on a miss.
    structure: str = ""

    @staticmethod
    def miss() -> "BTBLookupResult":
        """The canonical (shared) miss result."""
        return _MISS_RESULT


#: Shared immutable miss result, avoiding one allocation per missing lookup.
_MISS_RESULT = BTBLookupResult(hit=False)


class BTBBase(abc.ABC):
    """Abstract base class of every BTB organization."""

    #: Short machine-readable name ("conventional", "pdede", "btbx", ...).
    name: str = "btb"

    #: Policy domain of the organization's primary (main) array.
    _MAIN_DOMAIN = "main"

    def __init__(self, stats: Stats | None = None) -> None:
        self._stats_registry = stats if stats is not None else Stats()
        self.stats: StatGroup = self._stats_registry.group(f"btb.{self.name}")
        # Hot-path access counters are plain integers (the per-instruction
        # lookup path is the simulator's inner loop); they are folded into the
        # Stats registry lazily by :meth:`access_counts`.
        self.reads: dict[str, int] = {}
        self.writes: dict[str, int] = {}
        self.searches: dict[str, int] = {}
        #: All ASID machinery (tag coloring, partitioning, duplication
        #: accounting) for this organization and its secondary structures.
        self.asid_policy = AddressSpacePolicy()
        #: Batched-backend fast path: the last chunk-vectorized ``(pc, index,
        #: tag)`` handed out by a batch plan's lookup.  ``update`` consults it
        #: through :meth:`_locate_for_update` so a commit-time insertion
        #: reuses the lookup's set index and partial tag instead of re-hashing
        #: -- valid because the pc->location mapping only changes with the
        #: active ASID or the partition map, both of which clear the hint.
        self._update_hint: tuple[int, int, int] | None = None

    # -- mandatory interface ----------------------------------------------

    @abc.abstractmethod
    def lookup(self, pc: int) -> BTBLookupResult:
        """Probe the BTB with ``pc``; counts a read access."""

    @abc.abstractmethod
    def update(self, instruction: Instruction) -> None:
        """Insert or refresh the entry for a committed taken branch."""

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Total SRAM bits of the organization (all partitions)."""

    @abc.abstractmethod
    def capacity_entries(self) -> int:
        """Number of branches the organization can track simultaneously."""

    @abc.abstractmethod
    def invalidate_all(self) -> None:
        """Clear every entry (context-switch flush, tests, warmup control)."""

    # -- shared helpers ----------------------------------------------------

    @property
    def active_asid(self) -> int:
        """Address-space identifier of the currently scheduled tenant."""
        return self.asid_policy.active_asid

    def set_active_asid(self, asid: int) -> None:
        """Switch the address space the BTB tags its entries with.

        Organizations fold the active ASID into their partial-tag hash (see
        :meth:`asid_colored`), so entries installed by one tenant never hit for
        another while all tenants share the same storage.  ASID 0 is the
        neutral color: with it, tagging is a no-op.
        """
        self._update_hint = None
        self.asid_policy.activate(asid)

    def configure_partitions(self, weights: Sequence[int] | None) -> None:
        """Split this organization's sets among tenants (``None`` to share).

        Partitioning is by **sets**, not ways: BTB-X's ways have heterogeneous
        offset widths, so carving up ways would skew which branches each
        tenant can even store, while set ranges scale capacity uniformly for
        every organization.  Tenant *i*'s slice holds ``weights[i] / sum``
        of the sets (at least one), apportioned by
        :func:`repro.common.config.partition_set_counts`.  ASID ``a`` indexes
        partition ``a % len(weights)`` -- under warm switch semantics that is
        the tenant itself, and under cold semantics every incarnation of a
        tenant lands in the same slice (so dead incarnations pollute only
        their own tenant's capacity, never a neighbour's).

        A structure with fewer sets than tenants cannot give everyone a
        slice; it stays shared (still ASID-tagged) instead, exactly like the
        small secondaries (BTB-XC, PDede's Region-BTB) always have.  That is
        what lets partitioned-mode scenarios scale past a structure's set
        count -- a 1024-tenant consolidation on a 512-set BTB degrades to
        tagged sharing, reported as such (:meth:`partition_set_counts`
        returns ``None``), rather than refusing to run.

        The structure is invalidated whenever the partition map changes
        (including back to shared): entries installed under a different map
        would be unreachable or, worse, reachable from the wrong slice.
        """
        self._update_hint = None
        if weights is not None:
            validate_partition_weights(weights)
        if weights is None or self._partitionable_sets() < len(weights):
            if self.asid_policy.clear(self._MAIN_DOMAIN):
                self.invalidate_all()
            return
        self.asid_policy.configure(self._MAIN_DOMAIN, self._partitionable_sets(), weights)
        self.invalidate_all()

    def _partitionable_sets(self) -> int:
        """Number of sets :meth:`configure_partitions` may divide up.

        Organizations with a ``num_sets`` attribute (all bounded ones) are
        covered by this default.
        """
        num_sets = getattr(self, "num_sets", None)
        if num_sets is None:
            raise NotImplementedError(f"{type(self).__name__} does not support partitioning")
        return num_sets

    def partition_set_counts(self) -> list[int] | None:
        """Sets per tenant partition (``None`` when the structure is shared)."""
        return self.asid_policy.domain_counts(self._MAIN_DOMAIN)

    def _locate_for_update(self, pc: int) -> tuple[int, int]:
        """``_locate(pc)``, short-circuited by the batch plan's lookup hint.

        Scalar-path behaviour is unchanged (the hint is only ever set by a
        batch plan); with a hint for the same ``pc`` the commit-time update
        reuses the chunk-vectorized set index and partial tag bit-for-bit.
        """
        hint = self._update_hint
        if hint is not None and hint[0] == pc:
            return hint[1], hint[2]
        return self._locate(pc)  # type: ignore[attr-defined]

    def secondary_partition_counts(self) -> dict[str, list[int]]:
        """Per-tenant capacity of each partitioned *secondary* structure.

        Organizations with secondary structures (PDede's Page-/Region-BTB,
        R-BTB's Page-BTB, BTB-X's companion) report the per-tenant slice sizes
        of every secondary structure they actually partitioned; structures
        that fell back to sharing (fewer sets/entries than tenants) are
        omitted.  The base implementation reports every partitioned policy
        domain other than the main array, which covers any organization that
        registers its secondaries as extra domains.
        """
        return self.asid_policy.partition_report(exclude=(self._MAIN_DOMAIN,))

    def partitioned_set_index(self, pc: int, num_sets: int, alignment_bits: int) -> int:
        """Set index for ``pc``, confined to the active tenant's partition.

        With no partitions configured this is exactly :func:`set_index` over
        the whole structure; with partitions, the PC indexes *within* the
        active slice and is offset to the slice's base, so lookups and updates
        of different tenants can never touch the same set.
        """
        return self.asid_policy.set_index(self._MAIN_DOMAIN, pc, num_sets, alignment_bits)

    def asid_colored(self, pc: int) -> int:
        """``pc`` with the active ASID mixed into the bits the tag hash folds.

        Used by ``_locate`` implementations for the partial-tag hash ONLY --
        set indexing and target recovery (BTB-X offset concatenation, PDede
        same-page rebuild) must keep using the raw PC.
        """
        return self.asid_policy.colored(pc)

    def storage_kib(self) -> float:
        """Storage requirement in KiB."""
        return self.storage_bits() / 8.0 / 1024.0

    # -- batched backend hooks ---------------------------------------------

    def batch_plan(self, pcs, taken_branch_pcs) -> "object | None":
        """Plan one scheduling chunk's lookups over the ``pcs`` array.

        Supported organizations return a plan object with two members the
        batched engine consumes:

        * ``guaranteed_miss`` -- a boolean array marking PCs that *provably*
          miss for the whole chunk: their lookup key is neither resident now
          nor among the keys any taken branch of the chunk
          (``taken_branch_pcs``) could install.  Within a chunk the active
          ASID -- hence coloring and partition slice -- is constant, updates
          install only at taken-branch keys and evictions only remove
          entries, so the filter is static and exact;
        * ``lookup(position, pc)`` -- perform the real lookup for the chunk's
          ``position``-th instruction using the plan's pre-vectorized set
          index and partial tag (identical integers to ``_locate``, so the
          result, LRU movement and counters match the scalar path bit for
          bit).

        The default returns ``None``: the engine then runs every instruction
        through the ordinary scalar path, which keeps organizations with
        richer lookup behaviour (PDede's two-cycle page probes, R-BTB,
        ideal) exact without a vectorized twin.
        """
        del pcs, taken_branch_pcs
        return None

    def note_skipped_miss_lookups(self, count: int) -> None:
        """Account ``count`` lookups the batched engine proved to be misses.

        The engine never performs those probes; this applies their only
        architectural footprint -- read-access and miss counters (a missing
        lookup touches no LRU state).  Only meaningful for organizations
        whose :meth:`batch_plan` can mark guaranteed misses.
        """
        raise NotImplementedError(f"{type(self).__name__} has no batched miss path")

    def record_allocation(self, structure: str, key: int) -> None:
        """Note that ``structure`` was asked to track ``key`` (duplication stats).

        Delegates to :meth:`repro.common.asid.AddressSpacePolicy.record_allocation`;
        see there for the reference-time semantics.
        """
        self.asid_policy.record_allocation(structure, key)

    def duplication_counts(self) -> dict[str, dict[str, int]]:
        """Distinct vs tag-distinct allocations per structure.

        See :meth:`repro.common.asid.AddressSpacePolicy.duplication_counts`
        for the counter semantics; organizations whose secondaries keep their
        own policy (BTB-X's companion) merge the reports.
        """
        return self.asid_policy.duplication_counts()

    def record_read(self, structure: str = "main") -> None:
        """Count one read access of ``structure`` (used by the energy model)."""
        self.reads[structure] = self.reads.get(structure, 0) + 1

    def record_write(self, structure: str = "main") -> None:
        """Count one write access of ``structure``."""
        self.writes[structure] = self.writes.get(structure, 0) + 1

    def record_search(self, structure: str) -> None:
        """Count one associative search of ``structure`` (PDede page lookups)."""
        self.searches[structure] = self.searches.get(structure, 0) + 1

    def access_counts(self) -> dict[str, float]:
        """Read/write/search counters plus event counters (flat dict)."""
        prefix = self.stats.prefix + "."
        counts: dict[str, float] = {
            key[len(prefix):]: value
            for key, value in self._stats_registry.counters().items()
            if key.startswith(prefix)
        }
        for structure, count in self.reads.items():
            counts[f"reads.{structure}"] = counts.get(f"reads.{structure}", 0.0) + count
        counts["reads.total"] = float(sum(self.reads.values()))
        for structure, count in self.writes.items():
            counts[f"writes.{structure}"] = counts.get(f"writes.{structure}", 0.0) + count
        counts["writes.total"] = float(sum(self.writes.values()))
        for structure, count in self.searches.items():
            counts[f"searches.{structure}"] = counts.get(f"searches.{structure}", 0.0) + count
        return counts

    def energy_access_counts(self) -> dict[str, float]:
        """Access counters exactly as the energy model consumes them.

        The one authoritative merge point for organizations whose secondary
        structures keep their own counters (BTB-X's companion overrides
        this): both :meth:`repro.energy.btb_energy.BTBEnergyModel.energy_from_btb`
        and the scenario runner's exported ``btb_access_counts`` consume this
        method, so the two can never drift apart.
        """
        return {key: float(value) for key, value in self.access_counts().items()}

    def reset_stats(self) -> None:
        """Zero all access counters (used between warmup and measurement)."""
        prefix = self.stats.prefix + "."
        for key in list(self._stats_registry.counters()):
            if key.startswith(prefix):
                self._stats_registry.set(key, 0.0)
        self.reads.clear()
        self.writes.clear()
        self.searches.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(entries={self.capacity_entries()}, "
            f"storage={self.storage_kib():.2f}KiB)"
        )


def batch_locate(btb: "BTBBase", pcs, num_sets: int):
    """Vectorized twin of the ``_locate`` used by conventional-style arrays.

    Computes the set index and partial tag of every PC in the uint64 array
    ``pcs`` for ``btb``'s *current* ASID state -- the same
    :class:`~repro.common.asid.AddressSpacePolicy` slice and color the scalar
    ``_locate`` consults per call, hoisted out because both are constant
    within a scheduling chunk.  The arithmetic is element-wise identical:
    raw-PC set indexing (confined to the active partition slice) and an
    XOR-folded tag over the ASID-colored PC.  Color constants can exceed 64
    bits (cold-semantics ASIDs), so the constant is folded in arbitrary
    precision and XORed into the vectorized fold -- exact, because XOR-folding
    is XOR-linear.
    """
    from repro.traces.batch import fold_xor_array, np, set_index_array

    align = btb.isa.alignment_bits
    shifted = pcs >> np.uint64(align)
    sliced = btb.asid_policy.active_slice(btb._MAIN_DOMAIN)
    if sliced is None:
        index = set_index_array(shifted, num_sets)
    else:
        base, count = sliced
        index = set_index_array(shifted, count)
        if base:
            index = index + np.uint64(base)
    tags = fold_xor_array(shifted, btb.tag_bits)
    color = btb.asid_policy.color_constant()
    if color:
        tags = tags ^ np.uint64(fold_xor(color >> align, btb.tag_bits))
    return index, tags


def partial_tag(pc: int, index_bits_consumed: int, tag_bits: int, alignment_bits: int) -> int:
    """Hash the PC down to a partial tag.

    The full PC above the alignment bits is XOR-folded to ``tag_bits``, as
    real BTBs do to keep tag storage small with minimal aliasing.  The index
    bits are deliberately *included* in the hash: organizations sized to match
    an exact storage budget can have non-power-of-two set counts (e.g. a
    1856-entry conventional BTB) whose modulo indexing would otherwise let two
    PCs that differ only in low-order bits share both a set and a tag,
    creating systematic false hits.  ``index_bits_consumed`` is accepted for
    interface stability but no longer skipped.
    """
    del index_bits_consumed  # see docstring: always fold the full PC
    high = pc >> alignment_bits
    return fold_xor(high, tag_bits) if high else 0


def index_bits_of(num_sets: int) -> int:
    """Number of PC bits consumed by the set index (ceil(log2(sets)))."""
    if num_sets <= 1:
        return 0
    return (num_sets - 1).bit_length()

"""Branch target offset arithmetic (Section III of the paper).

The paper defines the *target offset* of a branch as the ``n`` least
significant bits of the target address, where ``n`` is the position of the
most significant bit that differs between the branch PC and the target.  This
is **not** the arithmetic delta ``target - pc``: defining the offset this way
means the full target can be recovered by concatenating the high-order bits of
the branch PC with the offset (no adder needed).

On Arm64, instructions are 4-byte aligned so the two least significant bits of
both PC and target are always zero and are never stored; on x86 they must be
kept.  Return instructions read their target from the return address stack and
store no offset at all (0 bits).
"""

from __future__ import annotations

from typing import Iterable

from repro.common.config import ISAStyle
from repro.common.bitutils import mask
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction


def offset_bits(pc: int, target: int) -> int:
    """Number of low-order target bits that differ from the branch PC.

    This is the ``n`` of Section III: the position of the most significant
    differing bit.  Identical PC and target (a branch to itself) need 0 bits.

    >>> offset_bits(0b101101000, 0b101111000)
    5
    """
    if pc < 0 or target < 0:
        raise ValueError("addresses must be non-negative")
    return (pc ^ target).bit_length()


def stored_offset_bits(
    pc: int,
    target: int,
    isa: ISAStyle = ISAStyle.ARM64,
    branch_type: BranchType | None = None,
) -> int:
    """Number of bits the BTB must *store* for this branch's target offset.

    Alignment bits that are always zero for the ISA are not stored (2 on
    Arm64, 0 on x86), and return instructions store no offset because their
    target comes from the RAS (the paper's analysis assigns them 0 bits).
    """
    if branch_type is not None and branch_type.target_from_ras:
        return 0
    raw = offset_bits(pc, target)
    return max(raw - isa.alignment_bits, 0)


def target_offset(pc: int, target: int) -> int:
    """The offset payload: the low ``offset_bits(pc, target)`` bits of the target.

    >>> bin(target_offset(0b101101000, 0b101111000))
    '0b11000'
    """
    n = offset_bits(pc, target)
    return target & mask(n)


def recover_target(pc: int, offset: int, n: int) -> int:
    """Recover the full target by concatenating the PC's high bits with ``offset``.

    ``n`` is the offset width in bits (the value returned by
    :func:`offset_bits` when the offset was extracted).  This mirrors the
    hardware recovery path: shift the PC right by ``n``, shift back left and OR
    in the stored offset -- pure concatenation, no adder.
    """
    if n < 0:
        raise ValueError("offset width cannot be negative")
    if offset < 0 or offset > mask(n):
        raise ValueError(f"offset {offset:#x} does not fit in {n} bits")
    return ((pc >> n) << n) | offset


def instruction_stored_offset_bits(inst: Instruction, isa: ISAStyle = ISAStyle.ARM64) -> int:
    """Stored offset bits for a retired instruction record."""
    return stored_offset_bits(inst.pc, inst.target, isa=isa, branch_type=inst.branch_type)


def offset_histogram(
    branches: Iterable[Instruction], isa: ISAStyle = ISAStyle.ARM64
) -> dict[int, int]:
    """Histogram of stored offset bit counts over a stream of dynamic branches.

    This is the raw data behind Figures 4, 12 and 13; turning it into a CDF is
    done by :mod:`repro.analysis.offset_analysis`.
    """
    histogram: dict[int, int] = {}
    for inst in branches:
        if not inst.is_branch:
            continue
        bits = instruction_stored_offset_bits(inst, isa)
        histogram[bits] = histogram.get(bits, 0) + 1
    return histogram

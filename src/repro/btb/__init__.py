"""Branch target buffer organizations.

This package contains the paper's primary contribution (BTB-X with its
companion BTB-XC) and every BTB organization it is compared against:

* :mod:`repro.btb.offsets` -- the target-offset arithmetic of Section III
  (prefix-difference offsets, stored-bit counts, full-target recovery).
* :mod:`repro.btb.base` -- the common lookup/update/allocate interface and
  shared set-associative machinery.
* :mod:`repro.btb.conventional` -- the conventional BTB of Figure 1 (full
  46-bit targets).
* :mod:`repro.btb.rbtb` -- Seznec's Reduced BTB (Main-BTB + Page-BTB pointer
  indirection, Figure 5).
* :mod:`repro.btb.pdede` -- PDede (partitioned, deduplicated, delta BTB with
  Page- and Region-BTBs and same-page ways, Figures 6/7).
* :mod:`repro.btb.btbx` -- BTB-X (8 ways with differently sized offset fields)
  plus the BTB-XC companion for offsets longer than the largest way
  (Figure 8).
* :mod:`repro.btb.storage` -- storage accounting used to reproduce Tables III
  and IV and to size every organization for a given byte budget.
"""

from repro.btb.base import BTBBase, BTBLookupResult
from repro.btb.btbx import BTBX, BTBXC, BTBX_WAY_OFFSET_BITS_ARM64, BTBX_WAY_OFFSET_BITS_X86
from repro.btb.conventional import ConventionalBTB
from repro.btb.ideal import IdealBTB
from repro.btb.offsets import (
    offset_bits,
    recover_target,
    stored_offset_bits,
    target_offset,
)
from repro.btb.pdede import PDedeBTB
from repro.btb.rbtb import ReducedBTB
from repro.btb.storage import (
    BTBStorageModel,
    btbx_capacity_for_budget,
    conventional_capacity_for_budget,
    make_btb,
    pdede_capacity_for_budget,
    storage_table,
)

__all__ = [
    "BTBBase",
    "BTBLookupResult",
    "BTBX",
    "BTBXC",
    "BTBX_WAY_OFFSET_BITS_ARM64",
    "BTBX_WAY_OFFSET_BITS_X86",
    "ConventionalBTB",
    "IdealBTB",
    "ReducedBTB",
    "PDedeBTB",
    "offset_bits",
    "stored_offset_bits",
    "target_offset",
    "recover_target",
    "BTBStorageModel",
    "btbx_capacity_for_budget",
    "conventional_capacity_for_budget",
    "pdede_capacity_for_budget",
    "storage_table",
    "make_btb",
]

"""Storage accounting and budget-driven sizing of BTB organizations.

This module reproduces the arithmetic behind Tables III and IV:

* :func:`btbx_storage_bits` / :func:`storage_table` -- BTB-X storage for a
  given entry count (Table III: 224-bit sets plus a 1/64-sized companion);
* :func:`conventional_capacity_for_budget` -- how many 64-bit entries fit in a
  byte budget;
* :func:`pdede_capacity_for_budget` -- PDede's capacity for a budget, using
  the paper's budget split (Page-BTB gets 2.5 KB of every 29 KB, the
  Region-BTB is fixed at four entries, and the Main-BTB entry size depends on
  the Page-BTB pointer width);
* :func:`make_btb` -- construct a simulatable BTB organization that fits a
  given storage budget (used by every MPKI/performance experiment).

The canonical budgets of the evaluation are those required by 256- to
16K-entry BTB-X configurations: 0.9, 1.8, 3.6, 7.25, 14.5, 29 and 58 KB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.bitutils import kib_to_bits, log2_ceil
from repro.common.config import BTBConfig, BTBStyle, ISAStyle
from repro.common.errors import ConfigurationError
from repro.common.stats import Stats
from repro.btb.base import BTBBase
from repro.btb.btbx import (
    BTBX,
    BTBXC_ENTRY_BITS,
    METADATA_BITS,
    default_way_offsets,
)
from repro.btb.conventional import ConventionalBTB
from repro.btb.ideal import IdealBTB
from repro.btb.pdede import PDedeBTB
from repro.btb.rbtb import ReducedBTB

#: BTB-X entry counts evaluated in the paper (Table III / Figure 11).
CANONICAL_BTBX_ENTRIES: tuple[int, ...] = (256, 512, 1024, 2048, 4096, 8192, 16384)

#: Conventional BTB entry bits (Figure 1).
CONVENTIONAL_ENTRY_BITS = 64

#: PDede constants from the paper's budget split (Section VI-B / Table IV).
PDEDE_PAGE_BUDGET_FRACTION = 2.5 / 29.0
PDEDE_REGION_ENTRIES = 4
PDEDE_REGION_STORAGE_KIB = 0.0107
PDEDE_PAGE_ENTRY_BITS = 20  # 16-bit page number + 4 replacement bits
PDEDE_PAGE_ENTRIES_AT_29KIB = 1024


@dataclass(frozen=True)
class BTBStorageRow:
    """One row of the Table III storage breakdown."""

    btbx_entries: int
    companion_entries: int
    num_sets: int
    set_bits: int
    companion_entry_bits: int
    storage_bits: int

    @property
    def storage_kib(self) -> float:
        """Total storage in KiB (the right-hand column of Table III)."""
        return self.storage_bits / 8.0 / 1024.0


@dataclass(frozen=True)
class CapacityRow:
    """One row of Table IV: branch capacity of each organization for a budget."""

    storage_kib: float
    btbx_entries: int
    btbx_companion_entries: int
    pdede_entries: int
    pdede_entry_bits: float
    pdede_page_entries: int
    pdede_page_budget_kib: float
    pdede_main_budget_kib: float
    conventional_entries: int

    @property
    def btbx_total_entries(self) -> int:
        """BTB-X + BTB-XC capacity."""
        return self.btbx_entries + self.btbx_companion_entries

    @property
    def btbx_over_conventional(self) -> float:
        """Capacity ratio of BTB-X over the conventional BTB."""
        return self.btbx_total_entries / self.conventional_entries if self.conventional_entries else 0.0

    @property
    def btbx_over_pdede(self) -> float:
        """Capacity ratio of BTB-X over PDede."""
        return self.btbx_total_entries / self.pdede_entries if self.pdede_entries else 0.0


class BTBStorageModel:
    """Storage arithmetic for every organization at a given ISA flavour."""

    def __init__(self, isa: ISAStyle = ISAStyle.ARM64, companion_divisor: int = 64) -> None:
        self.isa = isa
        self.companion_divisor = companion_divisor
        self.way_offset_bits = default_way_offsets(isa)

    # -- BTB-X ---------------------------------------------------------------

    def btbx_set_bits(self) -> int:
        """Bits per BTB-X set: 8 entries of metadata plus the offset fields."""
        return len(self.way_offset_bits) * METADATA_BITS + sum(self.way_offset_bits)

    def btbx_storage_row(self, btbx_entries: int) -> BTBStorageRow:
        """Table III row for a BTB-X with ``btbx_entries`` entries."""
        ways = len(self.way_offset_bits)
        if btbx_entries <= 0 or btbx_entries % ways != 0:
            raise ConfigurationError(f"BTB-X entries must be a multiple of {ways}")
        num_sets = btbx_entries // ways
        companion_entries = max(btbx_entries // self.companion_divisor, 1) if self.companion_divisor else 0
        storage_bits = num_sets * self.btbx_set_bits() + companion_entries * BTBXC_ENTRY_BITS
        return BTBStorageRow(
            btbx_entries=btbx_entries,
            companion_entries=companion_entries,
            num_sets=num_sets,
            set_bits=self.btbx_set_bits(),
            companion_entry_bits=BTBXC_ENTRY_BITS,
            storage_bits=storage_bits,
        )

    def btbx_storage_bits(self, btbx_entries: int) -> int:
        """Total BTB-X + BTB-XC storage bits for an entry count."""
        return self.btbx_storage_row(btbx_entries).storage_bits

    def btbx_budget_kib(self, btbx_entries: int) -> float:
        """Storage budget (KiB) implied by a BTB-X entry count."""
        return self.btbx_storage_row(btbx_entries).storage_kib

    def btbx_capacity_for_budget(self, budget_kib: float) -> tuple[int, int]:
        """Largest (btbx_entries, companion_entries) fitting in ``budget_kib``."""
        ways = len(self.way_offset_bits)
        budget_bits = kib_to_bits(budget_kib)
        sets = 0
        while True:
            candidate = sets + 1
            entries = candidate * ways
            companion = max(entries // self.companion_divisor, 1) if self.companion_divisor else 0
            bits = candidate * self.btbx_set_bits() + companion * BTBXC_ENTRY_BITS
            if bits > budget_bits:
                break
            sets = candidate
        entries = sets * ways
        companion = max(entries // self.companion_divisor, 1) if (self.companion_divisor and entries) else 0
        return entries, companion

    # -- Conventional ----------------------------------------------------------

    def conventional_entry_bits(self) -> int:
        """Entry bits of the conventional BTB (64 for 48-bit Arm64 addresses)."""
        return CONVENTIONAL_ENTRY_BITS

    def conventional_capacity_for_budget(self, budget_kib: float) -> int:
        """Branches a conventional BTB can track within ``budget_kib``."""
        return int(kib_to_bits(budget_kib) // self.conventional_entry_bits())

    # -- PDede -----------------------------------------------------------------

    def pdede_page_entries_for_budget(self, budget_kib: float) -> int:
        """Page-BTB entries for a budget, following the paper's halving rule.

        The paper uses 1024 Page-BTB entries at 29 KB and halves the Page-BTB
        together with the Main-BTB as the budget halves (and doubles it for
        58 KB), keeping the Page-BTB at roughly 8.6 % of the total budget.
        """
        if budget_kib <= 0:
            raise ConfigurationError("storage budget must be positive")
        entries = PDEDE_PAGE_ENTRIES_AT_29KIB * (budget_kib / 29.0)
        # Round to the nearest power of two, minimum 4 entries.
        rounded = 1 << max(round(entries).bit_length() - 1, 2)
        if rounded * 1.5 < entries:
            rounded <<= 1
        # Choose the power of two closest to the exact value.
        lower, upper = rounded, rounded << 1
        return lower if (entries - lower) <= (upper - entries) else upper

    def pdede_entry_bits(self, page_entries: int) -> tuple[int, int, float]:
        """(same-page, different-page, average) Main-BTB entry bits."""
        page_pointer = log2_ceil(page_entries)
        region_pointer = log2_ceil(PDEDE_REGION_ENTRIES)
        offset_bits = 12 - self.isa.alignment_bits
        same = 1 + 12 + 2 + 3 + offset_bits + 1
        different = 1 + 12 + 2 + 3 + offset_bits + page_pointer + region_pointer
        return same, different, (same + different) / 2.0

    def pdede_capacity_for_budget(self, budget_kib: float) -> tuple[int, int, float, float, float]:
        """PDede sizing for a budget.

        Returns ``(main_entries, page_entries, avg_entry_bits, page_budget_kib,
        main_budget_kib)`` following the paper's split: the Page-BTB gets
        ~8.6 % of the budget, the Region-BTB a fixed 0.0107 KB, and the
        Main-BTB the rest.
        """
        page_budget_kib = budget_kib * PDEDE_PAGE_BUDGET_FRACTION
        page_entries = self.pdede_page_entries_for_budget(budget_kib)
        main_budget_kib = budget_kib - page_budget_kib - PDEDE_REGION_STORAGE_KIB
        _, _, avg_bits = self.pdede_entry_bits(page_entries)
        main_entries = int(kib_to_bits(main_budget_kib) // avg_bits)
        return main_entries, page_entries, avg_bits, page_budget_kib, main_budget_kib

    # -- Table builders ----------------------------------------------------------

    def storage_table(self, entries: Sequence[int] = CANONICAL_BTBX_ENTRIES) -> List[BTBStorageRow]:
        """Reproduce Table III for the given BTB-X entry counts."""
        return [self.btbx_storage_row(count) for count in entries]

    def capacity_table(self, entries: Sequence[int] = CANONICAL_BTBX_ENTRIES) -> List[CapacityRow]:
        """Reproduce Table IV: capacities of all organizations per budget."""
        rows: List[CapacityRow] = []
        for count in entries:
            storage = self.btbx_storage_row(count)
            budget_kib = storage.storage_kib
            pdede_entries, page_entries, avg_bits, page_kib, main_kib = (
                self.pdede_capacity_for_budget(budget_kib)
            )
            rows.append(
                CapacityRow(
                    storage_kib=budget_kib,
                    btbx_entries=storage.btbx_entries,
                    btbx_companion_entries=storage.companion_entries,
                    pdede_entries=pdede_entries,
                    pdede_entry_bits=avg_bits,
                    pdede_page_entries=page_entries,
                    pdede_page_budget_kib=page_kib,
                    pdede_main_budget_kib=main_kib,
                    conventional_entries=self.conventional_capacity_for_budget(budget_kib),
                )
            )
        return rows


# -- module-level conveniences ---------------------------------------------------


def storage_table(isa: ISAStyle = ISAStyle.ARM64) -> List[BTBStorageRow]:
    """Table III rows for the default (Arm64) configuration."""
    return BTBStorageModel(isa).storage_table()


def capacity_table(isa: ISAStyle = ISAStyle.ARM64) -> List[CapacityRow]:
    """Table IV rows for the given ISA."""
    return BTBStorageModel(isa).capacity_table()


def btbx_capacity_for_budget(budget_kib: float, isa: ISAStyle = ISAStyle.ARM64) -> tuple[int, int]:
    """(BTB-X entries, BTB-XC entries) fitting within ``budget_kib``."""
    return BTBStorageModel(isa).btbx_capacity_for_budget(budget_kib)


def conventional_capacity_for_budget(budget_kib: float, isa: ISAStyle = ISAStyle.ARM64) -> int:
    """Conventional BTB entries fitting within ``budget_kib``."""
    return BTBStorageModel(isa).conventional_capacity_for_budget(budget_kib)


def pdede_capacity_for_budget(budget_kib: float, isa: ISAStyle = ISAStyle.ARM64) -> tuple[int, int, float, float, float]:
    """PDede sizing for ``budget_kib`` (see :meth:`BTBStorageModel.pdede_capacity_for_budget`)."""
    return BTBStorageModel(isa).pdede_capacity_for_budget(budget_kib)


def canonical_budgets_kib(isa: ISAStyle = ISAStyle.ARM64) -> List[float]:
    """The seven storage budgets of the evaluation (0.9 .. 58 KB)."""
    model = BTBStorageModel(isa)
    return [model.btbx_budget_kib(entries) for entries in CANONICAL_BTBX_ENTRIES]


def _round_down_multiple(value: int, multiple: int) -> int:
    return max((value // multiple) * multiple, multiple)


def make_btb_for_budget(
    style: BTBStyle,
    budget_kib: float,
    isa: ISAStyle = ISAStyle.ARM64,
    stats: Stats | None = None,
) -> BTBBase:
    """Construct a simulatable BTB of the given style sized for ``budget_kib``.

    Entry counts are rounded down to a multiple of the associativity so that
    the structure is constructible; the capacity tables report the exact
    (unrounded) numbers.
    """
    model = BTBStorageModel(isa)
    if style is BTBStyle.CONVENTIONAL:
        entries = model.conventional_capacity_for_budget(budget_kib)
        return ConventionalBTB(_round_down_multiple(entries, 8), associativity=8, isa=isa, stats=stats)
    if style is BTBStyle.BTBX:
        entries, companion = model.btbx_capacity_for_budget(budget_kib)
        divisor = (entries // companion) if companion else 0
        return BTBX(entries, companion_divisor=divisor, isa=isa, stats=stats)
    if style is BTBStyle.PDEDE:
        entries, page_entries, _, _, _ = model.pdede_capacity_for_budget(budget_kib)
        return PDedeBTB(
            _round_down_multiple(entries, 8),
            page_entries=page_entries,
            region_entries=PDEDE_REGION_ENTRIES,
            isa=isa,
            stats=stats,
        )
    if style is BTBStyle.REDUCED:
        # R-BTB follows the same budget split as PDede's Page-BTB share.
        page_budget_bits = kib_to_bits(budget_kib * PDEDE_PAGE_BUDGET_FRACTION)
        page_entries = max(int(page_budget_bits // 37), 4)
        probe = ReducedBTB(8, page_entries=page_entries, isa=isa)
        main_budget_bits = kib_to_bits(budget_kib) - page_entries * probe.page_entry_bits()
        entries = int(main_budget_bits // probe.main_entry_bits())
        return ReducedBTB(
            _round_down_multiple(entries, 8), page_entries=page_entries, isa=isa, stats=stats
        )
    if style is BTBStyle.IDEAL:
        return IdealBTB(stats=stats)
    raise ConfigurationError(f"unknown BTB style {style}")


def make_btb(config: BTBConfig, stats: Stats | None = None) -> BTBBase:
    """Construct a BTB organization from a :class:`BTBConfig` (entry-count based)."""
    style = config.style
    if style is BTBStyle.CONVENTIONAL:
        return ConventionalBTB(
            config.entries,
            associativity=config.associativity,
            tag_bits=config.tag_bits,
            isa=config.isa,
            stats=stats,
        )
    if style is BTBStyle.BTBX:
        return BTBX(
            config.entries,
            way_offset_bits=config.btbx_way_offset_bits,
            companion_divisor=config.btbx_companion_divisor,
            tag_bits=config.tag_bits,
            isa=config.isa,
            stats=stats,
        )
    if style is BTBStyle.PDEDE:
        page_entries = config.pdede_page_btb_entries
        if page_entries is None:
            model = BTBStorageModel(config.isa)
            budget = config.entries * model.pdede_entry_bits(512)[2] / 8.0 / 1024.0
            page_entries = model.pdede_page_entries_for_budget(max(budget, 0.5))
        return PDedeBTB(
            config.entries,
            page_entries=page_entries,
            region_entries=config.pdede_region_btb_entries,
            associativity=config.associativity,
            page_associativity=config.pdede_page_btb_assoc,
            same_page_way_fraction=config.pdede_same_page_way_fraction,
            tag_bits=config.tag_bits,
            isa=config.isa,
            stats=stats,
        )
    if style is BTBStyle.REDUCED:
        return ReducedBTB(
            config.entries,
            associativity=config.associativity,
            tag_bits=config.tag_bits,
            isa=config.isa,
            stats=stats,
        )
    if style is BTBStyle.IDEAL:
        return IdealBTB(stats=stats)
    raise ConfigurationError(f"unknown BTB style {style}")

"""An ideal (infinite, fully-tagged) BTB.

Baseline ChampSim effectively uses an ideal BTB because it detects branches
from the trace itself (Section VI-A).  The ideal model is useful for upper
bounds, for validating the front-end simulator (an ideal BTB must produce zero
BTB misses after the first visit to each branch), and for ablations.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.common.config import validate_partition_weights
from repro.common.stats import Stats
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.btb.base import BTBBase, BTBLookupResult


class IdealBTB(BTBBase):
    """Unbounded BTB that never evicts and never aliases."""

    name = "ideal"

    def __init__(self, stats: Stats | None = None) -> None:
        super().__init__(stats)
        # Keyed by (asid, pc): the ideal BTB discriminates address spaces
        # perfectly, mirroring what tag coloring does for the bounded designs.
        self._entries: Dict[Tuple[int, int], Tuple[BranchType, int]] = {}

    def lookup(self, pc: int) -> BTBLookupResult:
        """Hit whenever the branch has been seen (and committed taken) before."""
        self.record_read("main")
        entry = self._entries.get((self.active_asid, pc))
        if entry is None:
            self.stats.inc("misses")
            return BTBLookupResult.miss()
        branch_type, target = entry
        self.stats.inc("hits")
        return BTBLookupResult(
            hit=True,
            branch_type=branch_type,
            target=target,
            target_from_ras=branch_type.target_from_ras,
            structure="main",
        )

    def update(self, instruction: Instruction) -> None:
        """Remember the branch forever."""
        if not instruction.is_branch:
            return
        self.record_write("main")
        self.record_allocation("main", instruction.pc)
        self._entries[(self.active_asid, instruction.pc)] = (
            instruction.branch_type,
            instruction.target,
        )

    def storage_bits(self) -> int:
        """An ideal BTB has no meaningful storage bound; report current usage."""
        return len(self._entries) * 64

    def capacity_entries(self) -> int:
        """Unbounded; report the number of entries currently stored."""
        return len(self._entries)

    def invalidate_all(self) -> None:
        """Forget everything (context-switch flush)."""
        self._entries.clear()

    def configure_partitions(self, weights: Sequence[int] | None) -> None:
        """Accept (and validate) a partition map, but change nothing.

        An unbounded BTB has no capacity to divide: the per-``(asid, pc)``
        keying already gives every tenant perfect isolation, so partitioned
        and tagged retention are identical upper bounds by construction.
        """
        if weights is not None:
            validate_partition_weights(weights)

"""In-memory trace container with summary statistics.

A :class:`Trace` is a named, immutable-by-convention sequence of retired
instructions.  It also carries the ISA flavour (needed by the offset analysis:
Arm64 offsets drop the two alignment bits, x86 offsets do not) and arbitrary
metadata describing how the trace was generated (seed, footprint, suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from repro.common.config import ISAStyle
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of a trace, computed once on demand."""

    instruction_count: int
    branch_count: int
    taken_branch_count: int
    conditional_count: int
    unconditional_count: int
    call_count: int
    return_count: int
    indirect_count: int
    unique_branch_pcs: int
    unique_cache_blocks: int
    instruction_footprint_bytes: int

    @property
    def branch_fraction(self) -> float:
        """Dynamic branches as a fraction of all instructions."""
        if not self.instruction_count:
            return 0.0
        return self.branch_count / self.instruction_count

    @property
    def taken_fraction(self) -> float:
        """Taken branches as a fraction of all dynamic branches."""
        if not self.branch_count:
            return 0.0
        return self.taken_branch_count / self.branch_count


class Trace:
    """A named sequence of retired instructions plus metadata."""

    def __init__(
        self,
        name: str,
        instructions: Sequence[Instruction],
        isa: ISAStyle = ISAStyle.ARM64,
        metadata: Dict[str, object] | None = None,
    ) -> None:
        self.name = name
        self.isa = isa
        self.metadata: Dict[str, object] = dict(metadata or {})
        self._instructions: List[Instruction] = list(instructions)
        self._summary: TraceSummary | None = None

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    @property
    def instructions(self) -> Sequence[Instruction]:
        """The underlying instruction sequence (treat as read-only)."""
        return self._instructions

    # -- derived views -------------------------------------------------------

    def branches(self) -> Iterator[Instruction]:
        """Iterate over only the branch instructions of the trace."""
        return (inst for inst in self._instructions if inst.is_branch)

    def taken_branches(self) -> Iterator[Instruction]:
        """Iterate over only the taken branches of the trace."""
        return (inst for inst in self._instructions if inst.is_branch and inst.taken)

    def slice(self, start: int, stop: int | None = None, name: str | None = None) -> "Trace":
        """Return a new trace covering instructions ``[start, stop)``."""
        piece = self._instructions[start:stop]
        return Trace(
            name or f"{self.name}[{start}:{stop if stop is not None else len(self)}]",
            piece,
            isa=self.isa,
            metadata=dict(self.metadata),
        )

    # -- statistics ----------------------------------------------------------

    def summary(self, line_size: int = 64) -> TraceSummary:
        """Compute (and cache) the aggregate statistics of the trace."""
        if self._summary is not None:
            return self._summary
        branch_count = 0
        taken = 0
        per_type = {bt: 0 for bt in BranchType}
        branch_pcs = set()
        blocks = set()
        for inst in self._instructions:
            blocks.add(inst.pc & ~(line_size - 1))
            if inst.is_branch:
                branch_count += 1
                per_type[inst.branch_type] += 1
                branch_pcs.add(inst.pc)
                if inst.taken:
                    taken += 1
        self._summary = TraceSummary(
            instruction_count=len(self._instructions),
            branch_count=branch_count,
            taken_branch_count=taken,
            conditional_count=per_type[BranchType.CONDITIONAL],
            unconditional_count=per_type[BranchType.UNCONDITIONAL]
            + per_type[BranchType.INDIRECT],
            call_count=per_type[BranchType.CALL] + per_type[BranchType.INDIRECT_CALL],
            return_count=per_type[BranchType.RETURN],
            indirect_count=per_type[BranchType.INDIRECT] + per_type[BranchType.INDIRECT_CALL],
            unique_branch_pcs=len(branch_pcs),
            unique_cache_blocks=len(blocks),
            instruction_footprint_bytes=len(blocks) * line_size,
        )
        return self._summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(name={self.name!r}, instructions={len(self)}, isa={self.isa})"


class TraceCursor:
    """A resumable, wrapping read position over a trace.

    The scenario composer deschedules a tenant mid-trace and later resumes it
    where it left off; a cursor keeps that position without copying or slicing
    the underlying instruction list.  Reads past the end wrap to the start
    (the workload loops), so a tenant stays schedulable for arbitrarily long
    composed streams.
    """

    __slots__ = ("trace", "position", "laps", "consumed", "_instructions", "_length")

    def __init__(self, trace: Trace, position: int = 0) -> None:
        if len(trace) == 0:
            raise ValueError(f"cannot iterate over empty trace {trace.name!r}")
        self.trace = trace
        self._instructions = trace.instructions
        self._length = len(trace)
        self.position = position % self._length
        #: Completed wraps; ``laps > 0`` means the workload is replaying.
        self.laps = 0
        #: Total instructions read since construction.
        self.consumed = 0

    def take(self, count: int) -> Iterator[Instruction]:
        """Yield the next ``count`` instructions, wrapping at the trace end.

        State is committed in one piece when the generator finishes --
        whether it ran to completion, was closed early, or raised -- so
        ``position``/``laps``/``consumed`` always agree on how far the
        cursor actually advanced.  A consumer that abandons a ``take()``
        mid-way therefore leaves the cursor resumable at exactly the next
        unread instruction, never with a lap counted ahead of the position.
        """
        instructions = self._instructions
        length = self._length
        position = self.position
        laps = 0
        taken = 0
        try:
            for _ in range(count):
                instruction = instructions[position]
                position += 1
                if position == length:
                    position = 0
                    laps += 1
                taken += 1
                yield instruction
        finally:
            self.position = position
            self.laps += laps
            self.consumed += taken


@dataclass
class TraceSet:
    """A named collection of traces forming a workload suite."""

    name: str
    traces: List[Trace] = field(default_factory=list)

    def add(self, trace: Trace) -> None:
        """Append a trace to the suite."""
        self.traces.append(trace)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)

    def __len__(self) -> int:
        return len(self.traces)

    def names(self) -> List[str]:
        """Names of all member traces, in order."""
        return [trace.name for trace in self.traces]

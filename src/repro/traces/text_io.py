"""Human-readable text trace format (one record per line).

The text format exists for debugging, for documentation examples, and so that
small traces can be committed as fixtures.  Each non-comment line is::

    <pc-hex> <size> <branch-type> <taken:0|1> <target-hex>

Comment lines start with ``#``.  A special header comment carries the trace
name and ISA::

    #! name=server_001 isa=arm64
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List

from repro.common.config import ISAStyle
from repro.common.errors import TraceFormatError
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.traces.trace import Trace

_TYPE_NAMES = {bt.value: bt for bt in BranchType}


def write_text_trace(trace: Trace, path: str | Path) -> None:
    """Serialize ``trace`` to a text file at ``path``."""
    lines: List[str] = [f"#! name={trace.name} isa={trace.isa.value}"]
    for inst in trace:
        lines.append(
            f"{inst.pc:#x} {inst.size} {inst.branch_type.value} "
            f"{1 if inst.taken else 0} {inst.target:#x}"
        )
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def _parse_header(line: str) -> dict:
    fields = {}
    for token in line[2:].strip().split():
        if "=" not in token:
            raise TraceFormatError(f"malformed header token {token!r}")
        key, value = token.split("=", 1)
        fields[key] = value
    return fields


def parse_text_lines(lines: Iterable[str]) -> tuple[dict, List[Instruction]]:
    """Parse text-format lines into a header dict and instruction list."""
    header: dict = {}
    instructions: List[Instruction] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#!"):
            header.update(_parse_header(line))
            continue
        if line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 5:
            raise TraceFormatError(f"line {lineno}: expected 5 fields, got {len(parts)}")
        pc_text, size_text, type_text, taken_text, target_text = parts
        if type_text not in _TYPE_NAMES:
            raise TraceFormatError(f"line {lineno}: unknown branch type {type_text!r}")
        try:
            instructions.append(
                Instruction(
                    pc=int(pc_text, 16),
                    size=int(size_text),
                    branch_type=_TYPE_NAMES[type_text],
                    taken=taken_text == "1",
                    target=int(target_text, 16),
                )
            )
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
    return header, instructions


def read_text_trace(path: str | Path) -> Trace:
    """Read a text trace file into an in-memory :class:`Trace`."""
    text = Path(path).read_text(encoding="utf-8")
    header, instructions = parse_text_lines(text.splitlines())
    isa = ISAStyle(header.get("isa", ISAStyle.ARM64.value))
    return Trace(
        name=header.get("name", Path(path).stem),
        instructions=instructions,
        isa=isa,
    )

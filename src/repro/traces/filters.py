"""Trace slicing helpers: warmup splitting, windowing and branch-only views.

The paper warms structures for 50 M instructions and measures over the next
50 M.  These helpers implement that protocol generically so experiments can
scale window sizes down for Python-speed runs without changing the simulator.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.isa.instruction import Instruction
from repro.traces.trace import Trace


def split_warmup(trace: Trace, warmup_instructions: int) -> Tuple[Trace, Trace]:
    """Split ``trace`` into a (warmup, measurement) pair.

    The warmup part may be shorter than requested when the trace itself is
    shorter; the measurement part is whatever remains.
    """
    if warmup_instructions < 0:
        raise ValueError("warmup length cannot be negative")
    cut = min(warmup_instructions, len(trace))
    warmup = trace.slice(0, cut, name=f"{trace.name}.warmup")
    measured = trace.slice(cut, None, name=f"{trace.name}.measured")
    return warmup, measured


def window(trace: Trace, start: int, length: int) -> Trace:
    """Return an instruction window ``[start, start+length)`` of the trace."""
    if start < 0 or length <= 0:
        raise ValueError("window start must be >= 0 and length positive")
    return trace.slice(start, start + length, name=f"{trace.name}.win{start}+{length}")


def branch_only(trace: Trace) -> List[Instruction]:
    """Materialize the branch instructions of a trace as a list.

    The offset-distribution analyses (Figures 4, 12, 13) operate on dynamic
    branches only, so extracting them once avoids repeated filtering.
    """
    return [inst for inst in trace if inst.is_branch]


def taken_branches(trace: Trace) -> List[Instruction]:
    """Materialize the taken branches of a trace (the BTB's update stream)."""
    return [inst for inst in trace if inst.is_branch and inst.taken]


def iter_windows(trace: Trace, length: int) -> Iterator[Trace]:
    """Yield consecutive non-overlapping windows of ``length`` instructions."""
    if length <= 0:
        raise ValueError("window length must be positive")
    for start in range(0, len(trace), length):
        yield trace.slice(start, start + length, name=f"{trace.name}.win{start // length}")

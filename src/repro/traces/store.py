"""Bounded, thread-safe store of generated traces.

Trace generation is deterministic (every workload spec carries its own seed),
so a trace is fully described by ``(workload_name, instructions)``.  The store
memoizes generated traces under that key with LRU eviction, replacing the
unbounded module-global cache the experiment runner used to keep: a full-scale
sweep touches dozens of workloads and an unbounded cache holds every one of
them alive for the whole run.

The store is thread-safe (a single lock guards the mapping) and process-local:
worker processes of the parallel experiment engine each build their own store,
which is exactly the right sharing granularity because traces are cheap to
regenerate relative to simulation and never need to cross process boundaries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Tuple

from repro.obs import get_recorder
from repro.traces.trace import Trace

#: Default number of traces kept alive; enough for every suite of one scale.
DEFAULT_MAX_TRACES = 64


def _build_workload(name: str, instructions: int) -> Trace:
    # Imported lazily: repro.workloads imports repro.traces.trace, so a
    # top-level import here would create a package cycle.
    from repro.workloads.suites import build_workload

    return build_workload(name, instructions)


class TraceStore:
    """LRU-bounded memoization of ``(workload, instructions) -> Trace``."""

    def __init__(
        self,
        max_traces: int = DEFAULT_MAX_TRACES,
        builder: Callable[[str, int], Trace] | None = None,
    ) -> None:
        if max_traces <= 0:
            raise ValueError("trace store needs room for at least one trace")
        self.max_traces = max_traces
        self._builder = builder or _build_workload
        self._traces: "OrderedDict[Tuple[str, int], Trace]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, workload: str, instructions: int) -> Trace:
        """Return the trace of ``workload``, generating it on first use."""
        key = (workload, instructions)
        recorder = get_recorder()
        with self._lock:
            trace = self._traces.get(key)
            if trace is not None:
                self.hits += 1
                recorder.count("trace.store.hits")
                self._traces.move_to_end(key)
                return trace
            self.misses += 1
            recorder.count("trace.store.misses")
        # Generate outside the lock: generation is slow and deterministic, so
        # a duplicate build under contention is wasteful but harmless.
        with recorder.span("trace.build", workload=workload, instructions=instructions):
            trace = self._builder(workload, instructions)
        self.put(trace, instructions)
        return trace

    def put(self, trace: Trace, instructions: int | None = None) -> None:
        """Insert an already-built trace, evicting the LRU entry if full."""
        key = (trace.name, len(trace) if instructions is None else instructions)
        with self._lock:
            self._traces[key] = trace
            self._traces.move_to_end(key)
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
                self.evictions += 1
                get_recorder().count("trace.store.evictions")

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def __contains__(self, key: Tuple[str, int]) -> bool:
        with self._lock:
            return key in self._traces

    def clear(self) -> None:
        """Drop every cached trace (tests use this to bound memory)."""
        with self._lock:
            self._traces.clear()


_DEFAULT_STORE = TraceStore()


def default_store() -> TraceStore:
    """The process-wide shared store used by the runner and the engine."""
    return _DEFAULT_STORE

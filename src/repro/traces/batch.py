"""Structure-of-arrays views of traces for the batched simulation backend.

The scalar simulator walks one :class:`~repro.isa.instruction.Instruction` at
a time; the numpy backend instead consumes parallel arrays (PC, target, branch
type, taken) covering a whole scheduling turn and vectorizes everything that
is a pure function of the instruction stream -- cache-block boundaries, BTB
set indices and partial tags, guaranteed-miss filtering.  This module owns the
array plumbing:

* :func:`trace_arrays` -- the (cached) SoA view of an in-memory trace;
* :func:`read_binary_trace_arrays` -- batched decode of the on-disk binary
  format via one ``frombuffer`` instead of a per-record ``struct.unpack``
  (the round-trip suite pins it against the scalar decoder);
* :func:`fold_xor_array` / :func:`set_index_array` -- vectorized twins of
  :func:`repro.common.bitutils.fold_xor` and
  :func:`repro.common.asid.set_index`, bit-exact by construction.

Everything degrades gracefully without numpy: :data:`HAVE_NUMPY` gates the
backend, and importing this module never fails -- the pure-Python oracle is
the default and must work on a numpy-free install.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

from repro.common.errors import ConfigurationError, TraceFormatError
from repro.isa.branch import BranchType
from repro.traces.trace import Trace

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy-free CI leg
    np = None
    HAVE_NUMPY = False

#: Branch types in enumeration (= binary format) order; index 0 is NOT_BRANCH.
_BRANCH_TYPES = tuple(BranchType)

#: numpy twin of ``binary_io._RECORD`` (``"<QQBBBx"``).
_RECORD_DTYPE_FIELDS = [
    ("pc", "<u8"),
    ("target", "<u8"),
    ("size", "u1"),
    ("branch_type", "u1"),
    ("taken", "u1"),
    ("pad", "u1"),
]


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise ConfigurationError(
            "the batched trace path requires numpy; install the 'numpy' extra"
        )


class TraceArrays:
    """Parallel arrays over one trace: the batched backend's working set.

    All arrays share the trace's instruction order; slicing ``[start:stop]``
    of every array is the SoA view of the scheduling chunk the composer hands
    out.  ``size`` is ``int64`` rather than the binary format's ``u8`` because
    shared-footprint remapping stretches boundary instruction sizes past one
    page (see :mod:`repro.scenarios.compose`).
    """

    __slots__ = ("pc", "target", "size", "branch_type", "is_branch", "taken")

    def __init__(self, pc, target, size, branch_type, is_branch, taken) -> None:
        self.pc = pc
        self.target = target
        self.size = size
        self.branch_type = branch_type
        self.is_branch = is_branch
        self.taken = taken

    def __len__(self) -> int:
        return len(self.pc)


def trace_arrays(trace: Trace) -> TraceArrays:
    """The SoA view of ``trace``, built once and cached on the trace object.

    Traces are immutable by convention, so the cache can never go stale; the
    composer replays the same trace across many scheduling turns and scenario
    cells, which is what makes the one-time conversion pay for itself.
    """
    _require_numpy()
    cached = getattr(trace, "_batch_arrays", None)
    if cached is not None:
        return cached
    count = len(trace)
    pc = np.empty(count, dtype=np.uint64)
    target = np.empty(count, dtype=np.uint64)
    size = np.empty(count, dtype=np.int64)
    branch_type = np.empty(count, dtype=np.uint8)
    taken = np.empty(count, dtype=bool)
    type_index = {bt: i for i, bt in enumerate(_BRANCH_TYPES)}
    for position, inst in enumerate(trace.instructions):
        pc[position] = inst.pc
        target[position] = inst.target
        size[position] = inst.size
        branch_type[position] = type_index[inst.branch_type]
        taken[position] = inst.taken
    arrays = TraceArrays(
        pc=pc,
        target=target,
        size=size,
        branch_type=branch_type,
        is_branch=branch_type != 0,
        taken=taken,
    )
    trace._batch_arrays = arrays  # type: ignore[attr-defined]
    return arrays


def read_binary_trace_arrays(path: str | Path) -> tuple[dict, TraceArrays]:
    """Decode a whole binary trace file into parallel arrays in one pass.

    Returns ``(header, arrays)``.  The record section is reinterpreted with a
    single ``frombuffer`` -- the batched twin of
    :func:`repro.traces.binary_io.iter_binary_trace`, pinned identical by the
    round-trip property suite.
    """
    _require_numpy()
    from repro.obs import get_recorder
    from repro.traces.binary_io import MAGIC, _RECORD

    with get_recorder().span("trace.decode", path=str(path), decoder="arrays"):
        return _read_binary_trace_arrays(path, MAGIC, _RECORD)


def _read_binary_trace_arrays(path, MAGIC, _RECORD) -> tuple[dict, "TraceArrays"]:
    data = Path(path).read_bytes()
    if data[: len(MAGIC)] != MAGIC:
        raise TraceFormatError(f"bad magic {data[:len(MAGIC)]!r}; not a repro binary trace")
    offset = len(MAGIC)
    (header_len,) = struct.unpack_from("<I", data, offset)
    offset += 4
    try:
        header = json.loads(data[offset : offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError("corrupt trace header") from exc
    offset += header_len
    body = data[offset:]
    if len(body) % _RECORD.size != 0:
        raise TraceFormatError("truncated trace record")
    records = np.frombuffer(body, dtype=np.dtype(_RECORD_DTYPE_FIELDS))
    branch_type = records["branch_type"]
    if branch_type.size and int(branch_type.max()) >= len(_BRANCH_TYPES):
        bad = int(branch_type.max())
        raise TraceFormatError(f"invalid branch type index {bad}")
    return header, TraceArrays(
        pc=records["pc"].astype(np.uint64),
        target=records["target"].astype(np.uint64),
        size=records["size"].astype(np.int64),
        branch_type=branch_type.copy(),
        is_branch=branch_type != 0,
        taken=records["taken"] != 0,
    )


def fold_xor_array(values, width: int):
    """Vectorized :func:`repro.common.bitutils.fold_xor` over a uint64 array.

    XOR-folds each element down to ``width`` bits by XORing its ``width``-bit
    chunks -- identical arithmetic to the scalar helper for any value that
    fits 64 bits (every raw ``pc >> alignment_bits`` does; ASID color
    constants, which may not, are folded separately in arbitrary precision
    and XORed in afterwards: folding is XOR-linear, so the split is exact).
    """
    if width <= 0:
        raise ValueError(f"fold width must be positive, got {width}")
    folded = np.zeros_like(values)
    remaining = values.copy()
    chunk_mask = np.uint64((1 << width) - 1)
    shift = np.uint64(width)
    while remaining.any():
        folded ^= remaining & chunk_mask
        remaining >>= shift
    return folded


def set_index_array(shifted_keys, count: int):
    """Vectorized :func:`repro.common.asid.set_index` over pre-shifted keys.

    ``shifted_keys`` is ``key >> alignment_bits`` (uint64); power-of-two set
    counts mask, everything else takes the modulo, exactly like the scalar
    helper.
    """
    if count <= 0:
        raise ValueError("a set-associative structure needs at least one set")
    if count & (count - 1) == 0:
        return shifted_keys & np.uint64(count - 1)
    return shifted_keys % np.uint64(count)

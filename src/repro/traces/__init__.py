"""Trace infrastructure: containers, binary/text formats, and slicing helpers.

The paper evaluates on proprietary Qualcomm IPC-1/CVP-1 traces; this package
provides the plumbing needed to store and replay the synthetic equivalents
produced by :mod:`repro.workloads` (and any externally converted trace in the
same record format).

* :class:`repro.traces.trace.Trace` -- an in-memory, named sequence of
  :class:`repro.isa.Instruction` records with summary statistics.
* :mod:`repro.traces.binary_io` -- compact struct-packed on-disk format.
* :mod:`repro.traces.text_io` -- human-readable one-record-per-line format.
* :mod:`repro.traces.filters` -- warmup/measurement splitting and windowing.
* :mod:`repro.traces.store` -- bounded, thread-safe memoization of generated
  traces (shared by the experiment runner and the parallel engine).
"""

from repro.traces.binary_io import read_binary_trace, write_binary_trace
from repro.traces.filters import branch_only, split_warmup, window
from repro.traces.store import TraceStore, default_store
from repro.traces.trace import Trace, TraceCursor, TraceSummary
from repro.traces.text_io import read_text_trace, write_text_trace

__all__ = [
    "Trace",
    "TraceCursor",
    "TraceSummary",
    "TraceStore",
    "default_store",
    "read_binary_trace",
    "write_binary_trace",
    "read_text_trace",
    "write_text_trace",
    "branch_only",
    "split_warmup",
    "window",
]

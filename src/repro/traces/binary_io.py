"""Compact binary on-disk trace format.

The format is a small, self-describing container:

* an 8-byte magic (``b"BTBXTRC1"``),
* a JSON header (length-prefixed) carrying the trace name, ISA and metadata,
* a sequence of fixed-size little-endian records, one per instruction:

  ===========  =====  =========================================
  field        bytes  meaning
  ===========  =====  =========================================
  pc           8      instruction virtual address
  target       8      taken target / fall-through address
  size         1      instruction size in bytes
  branch_type  1      index into the BranchType enumeration
  taken        1      0 or 1
  reserved     1      padding for alignment
  ===========  =====  =========================================

This is intentionally close to (but simpler than) the ChampSim trace record,
because the simulator only consumes front-end-relevant fields.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.common.config import ISAStyle
from repro.common.errors import TraceFormatError
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.obs import get_recorder
from repro.traces.trace import Trace

MAGIC = b"BTBXTRC1"
_RECORD = struct.Struct("<QQBBBx")
_BRANCH_TYPES = list(BranchType)
_BRANCH_TYPE_INDEX = {bt: i for i, bt in enumerate(_BRANCH_TYPES)}


def _encode_record(inst: Instruction) -> bytes:
    return _RECORD.pack(
        inst.pc,
        inst.target,
        inst.size,
        _BRANCH_TYPE_INDEX[inst.branch_type],
        1 if inst.taken else 0,
    )


def _decode_record(raw: bytes) -> Instruction:
    pc, target, size, type_index, taken = _RECORD.unpack(raw)
    try:
        branch_type = _BRANCH_TYPES[type_index]
    except IndexError as exc:
        raise TraceFormatError(f"invalid branch type index {type_index}") from exc
    return Instruction(pc=pc, size=size, branch_type=branch_type, taken=bool(taken), target=target)


def write_binary_trace(trace: Trace, path: str | Path) -> None:
    """Serialize ``trace`` to ``path`` in the binary format described above."""
    header = {
        "name": trace.name,
        "isa": trace.isa.value,
        "metadata": trace.metadata,
        "instructions": len(trace),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<I", len(header_bytes)))
        handle.write(header_bytes)
        for inst in trace:
            handle.write(_encode_record(inst))


def _read_header(handle: BinaryIO) -> dict:
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}; not a repro binary trace")
    (header_len,) = struct.unpack("<I", handle.read(4))
    try:
        return json.loads(handle.read(header_len).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError("corrupt trace header") from exc


def iter_binary_trace(path: str | Path) -> Iterator[Instruction]:
    """Stream instructions from a binary trace without loading it whole."""
    with open(path, "rb") as handle:
        _read_header(handle)
        while True:
            raw = handle.read(_RECORD.size)
            if not raw:
                return
            if len(raw) != _RECORD.size:
                raise TraceFormatError("truncated trace record")
            yield _decode_record(raw)


def read_binary_trace(path: str | Path) -> Trace:
    """Read a whole binary trace file into an in-memory :class:`Trace`."""
    with get_recorder().span("trace.decode", path=str(path), decoder="scalar"):
        with open(path, "rb") as handle:
            header = _read_header(handle)
            instructions = []
            while True:
                raw = handle.read(_RECORD.size)
                if not raw:
                    break
                if len(raw) != _RECORD.size:
                    raise TraceFormatError("truncated trace record")
                instructions.append(_decode_record(raw))
    declared = header.get("instructions")
    if declared is not None and declared != len(instructions):
        raise TraceFormatError(
            f"header declares {declared} instructions but file contains {len(instructions)}"
        )
    return Trace(
        name=str(header.get("name", Path(path).stem)),
        instructions=instructions,
        isa=ISAStyle(header.get("isa", ISAStyle.ARM64.value)),
        metadata=dict(header.get("metadata", {})),
    )


def write_many(traces: Iterable[Trace], directory: str | Path) -> list[Path]:
    """Write each trace to ``directory/<name>.btbx``; return the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for trace in traces:
        path = directory / f"{trace.name}.btbx"
        write_binary_trace(trace, path)
        paths.append(path)
    return paths

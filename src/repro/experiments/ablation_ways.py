"""Ablation (extension beyond the paper): BTB-X way-sizing sensitivity.

Key Insight 2 of the paper is that a *single* offset width cannot be
storage-optimal because offsets are unevenly distributed.  This ablation
quantifies that claim with three BTB-X variants at the same storage budget:

* ``paper``      -- the paper's skewed widths (0, 4, 5, 7, 9, 11, 19, 25);
* ``uniform25``  -- eight identical 25-bit ways (single-size offsets);
* ``calibrated`` -- widths sized from the synthetic suite's own offset CDF
  using the paper's 12.5 %-per-way methodology.

Because a uniform-25-bit set costs more bits, the uniform variant is given
fewer sets for the same budget -- exactly the trade-off the paper argues
against.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.aggregate import arithmetic_mean
from repro.analysis.offset_analysis import combined_distribution
from repro.common.config import BTBStyle
from repro.btb.btbx import BTBX_WAY_OFFSET_BITS_ARM64, METADATA_BITS, BTBXC_ENTRY_BITS
from repro.common.bitutils import kib_to_bits
from repro.experiments.config import DEFAULT_BUDGET_KIB, ExperimentScale, QUICK_SCALE
from repro.experiments.engine import ExperimentEngine, SimJob, get_active_engine
from repro.experiments.runner import evaluation_traces


def _entries_for_budget(way_bits: Sequence[int], budget_kib: float, companion_divisor: int = 64) -> int:
    """Largest entry count whose storage fits the budget for given way widths."""
    ways = len(way_bits)
    set_bits = ways * METADATA_BITS + sum(way_bits)
    budget_bits = kib_to_bits(budget_kib)
    sets = 0
    while True:
        candidate = sets + 1
        entries = candidate * ways
        companion = max(entries // companion_divisor, 1)
        if candidate * set_bits + companion * BTBXC_ENTRY_BITS > budget_bits:
            break
        sets = candidate
    return max(sets, 1) * ways


def run(
    scale: ExperimentScale = QUICK_SCALE,
    budget_kib: float = DEFAULT_BUDGET_KIB,
    engine: ExperimentEngine | None = None,
) -> Dict[str, object]:
    """Compare way-sizing strategies at an equal storage budget."""
    engine = engine or get_active_engine()
    traces = evaluation_traces(scale, suites=("ipc1_server",))
    suite_cdf = combined_distribution(traces, name="server_suite")
    variants: Dict[str, List[int]] = {
        "paper": list(BTBX_WAY_OFFSET_BITS_ARM64),
        "uniform25": [25] * 8,
        "calibrated": suite_cdf.way_sizing(8),
    }
    # All three variants go out as one job list so they share the pool.
    jobs: List[SimJob] = []
    sized: Dict[str, tuple[List[int], int]] = {}
    for label, widths in variants.items():
        widths = sorted(widths)
        entries = _entries_for_budget(widths, budget_kib)
        sized[label] = (widths, entries)
        jobs.extend(
            SimJob(
                workload=trace.name,
                instructions=scale.instructions,
                warmup_instructions=scale.warmup_instructions,
                style=BTBStyle.BTBX,
                fdip_enabled=True,
                btbx_entries=entries,
                way_offset_bits=tuple(widths),
            )
            for trace in traces
        )
    outcomes = iter(engine.run_jobs(jobs, traces={t.name: t for t in traces}))
    rows: Dict[str, Dict[str, float]] = {}
    for label, (widths, entries) in sized.items():
        mpkis = [next(outcomes).result.btb_mpki for _ in traces]
        rows[label] = {
            "way_offset_bits": widths,
            "entries": entries,
            "avg_btb_mpki": arithmetic_mean(mpkis),
        }
    return {
        "experiment": "ablation_ways",
        "scale": scale.name,
        "budget_kib": budget_kib,
        "variants": rows,
    }


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of the way-sizing ablation."""
    lines = [f"Ablation: BTB-X way sizing at {result['budget_kib']} KB", ""]
    for label, row in result["variants"].items():
        lines.append(
            f"  {label:<11} ways={row['way_offset_bits']} entries={row['entries']} "
            f"avg server MPKI={row['avg_btb_mpki']:.2f}"
        )
    return "\n".join(lines)

"""Scenario sweeps: MPKI versus timeslice length and versus tenant count.

This is the consolidation analogue of Figure 11's budget sweep.  Where fig11
asks "how does each organization degrade as *storage* shrinks?", this driver
asks "how does each organization degrade as *scheduling pressure* grows?"
along two axes:

* **quantum sweep** -- shorter scheduling quanta mean more context switches
  per kilo-instruction, so flush-on-switch pays more cold misses while tagged
  and partitioned retention amortize them (MPKI-vs-timeslice curves);
* **tenant-count sweep** -- more tenants sharing one BTB means less effective
  capacity each, so the retention modes separate: ``tagged`` shows cold-start
  plus cross-tenant pollution, ``partitioned`` shows cold-start only (its set
  slices are private), and the gap between them *is* the pollution.

Every (preset x axis-value x organization x ASID-mode) cell is an ordinary
cacheable :class:`~repro.experiments.engine.ScenarioJob`; the whole grid is
submitted to the pooled engine in one pass, so sweeps parallelize and memoize
exactly like the figure grids (and share cache cells with
:mod:`~repro.experiments.scenario_study` wherever the grids overlap).
"""

from __future__ import annotations

import csv
from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.common.config import ASIDMode, BTBStyle, require_positive_int
from repro.experiments.config import DEFAULT_BUDGET_KIB, ExperimentScale, QUICK_SCALE
from repro.experiments.engine import ExperimentEngine, ScenarioJob, get_active_engine
from repro.experiments.runner import style_label
from repro.scenarios.presets import get_scenario, scenario_names
from repro.scenarios.spec import ScenarioSpec, TenantSpec

#: Organizations swept by default (the paper's baseline and its proposal).
SWEEP_STYLES: Tuple[BTBStyle, ...] = (BTBStyle.CONVENTIONAL, BTBStyle.BTBX)

#: All three context-switch policies, so pollution (tagged vs partitioned)
#: and cold-start (flush vs tagged) read off the same plot.
SWEEP_ASID_MODES: Tuple[ASIDMode, ...] = (
    ASIDMode.FLUSH,
    ASIDMode.TAGGED,
    ASIDMode.PARTITIONED,
)

#: Default timeslice lengths (instructions per scheduling turn).
DEFAULT_QUANTA: Tuple[int, ...] = (1_024, 2_048, 4_096, 8_192, 16_384)

#: Axis labels used in results, CSV rows and reports.
QUANTUM_AXIS = "quantum_instructions"
TENANT_AXIS = "tenant_count"


# -- spec derivation ----------------------------------------------------------


def quantum_variant(spec: ScenarioSpec, quantum: int) -> ScenarioSpec:
    """``spec`` rescheduled with a ``quantum``-instruction timeslice.

    The preset's own quantum returns the preset unchanged, so that sweep cell
    is cache-identical to the plain :mod:`scenario_study` cell.
    """
    if quantum == spec.quantum_instructions:
        return spec
    return replace(spec, name=f"{spec.name}@q{quantum}", quantum_instructions=quantum)


def tenant_count_variant(spec: ScenarioSpec, count: int) -> ScenarioSpec:
    """``spec`` resized to exactly ``count`` tenants.

    Counts up to the preset's tenant list take a prefix (so ``count=1`` is the
    first tenant alone -- the solo anchor of the curve).  Larger counts cycle
    the preset's tenants with ``~N`` suffixed names, modelling more instances
    of the same service mix sharing the machine.  The preset's own size
    returns the preset unchanged (cache-identical to the plain cell).
    """
    require_positive_int(count, "tenant count")
    base = spec.tenants
    if count == len(base):
        return spec
    tenants: List[TenantSpec] = []
    for position in range(count):
        template = base[position % len(base)]
        lap = position // len(base)
        name = template.name if lap == 0 else f"{template.name}~{lap + 1}"
        tenants.append(TenantSpec(name, template.workload, template.weight))
    return replace(spec, name=f"{spec.name}@t{count}", tenants=tuple(tenants))


# -- the sweep ----------------------------------------------------------------


def _config_key(style: BTBStyle, mode: ASIDMode) -> str:
    return f"{style_label(style)}/{mode.value}"


def run(
    scale: ExperimentScale = QUICK_SCALE,
    budget_kib: float = DEFAULT_BUDGET_KIB,
    presets: Sequence[str] | None = None,
    styles: Sequence[BTBStyle] = SWEEP_STYLES,
    asid_modes: Sequence[ASIDMode] = SWEEP_ASID_MODES,
    quanta: Sequence[int] = DEFAULT_QUANTA,
    tenant_counts: Sequence[int] | None = None,
    engine: ExperimentEngine | None = None,
) -> Dict[str, object]:
    """Run both sweep axes for every preset through one pooled engine pass.

    ``tenant_counts=None`` sweeps 1..len(tenants) per preset.  Returns a
    result dict with ``quantum_sweep`` and ``tenant_sweep`` sections, each
    mapping preset -> {"axis": [...], "curves": {"<style>/<mode>": ...}}; a
    curve carries aligned ``aggregate_mpki`` / ``aggregate_ipc`` /
    ``context_switches`` / ``partition_sets`` lists plus ``per_tenant_mpki``
    (one {tenant: mpki} dict per axis point).
    """
    engine = engine or get_active_engine()
    names = list(presets) if presets is not None else scenario_names()
    # A repeated preset would append duplicate points onto the same curves;
    # repeated axis values would duplicate points within one, and repeated
    # styles/modes would append extra points onto one curve key.
    names = list(dict.fromkeys(names))
    quanta = list(dict.fromkeys(quanta))
    styles = list(dict.fromkeys(styles))
    asid_modes = list(dict.fromkeys(asid_modes))
    if tenant_counts is not None:
        tenant_counts = list(dict.fromkeys(tenant_counts))

    # Expand the full (preset x axis x style x mode) grid up front: one
    # run_jobs() call keeps every worker busy across preset boundaries.
    cells: List[Tuple[str, str, int, BTBStyle, ASIDMode]] = []
    jobs: List[ScenarioJob] = []
    axes: Dict[str, Dict[str, List[int]]] = {QUANTUM_AXIS: {}, TENANT_AXIS: {}}
    for name in names:
        spec = get_scenario(name)
        counts = (
            list(tenant_counts)
            if tenant_counts is not None
            else list(range(1, len(spec.tenants) + 1))
        )
        axes[QUANTUM_AXIS][name] = list(quanta)
        axes[TENANT_AXIS][name] = counts
        variants = [(QUANTUM_AXIS, value, quantum_variant(spec, value)) for value in quanta]
        variants += [(TENANT_AXIS, value, tenant_count_variant(spec, value)) for value in counts]
        for axis, value, variant in variants:
            for style in styles:
                for mode in asid_modes:
                    cells.append((axis, name, value, style, mode))
                    jobs.append(
                        ScenarioJob(
                            scenario=variant.name,
                            instructions=scale.instructions,
                            warmup_instructions=scale.warmup_instructions,
                            style=style,
                            asid_mode=mode,
                            fdip_enabled=True,
                            budget_kib=budget_kib,
                            spec=variant,
                        )
                    )
    outcomes = engine.run_jobs(jobs)

    sections: Dict[str, Dict[str, Dict[str, object]]] = {QUANTUM_AXIS: {}, TENANT_AXIS: {}}
    for (axis, preset, _value, style, mode), outcome in zip(cells, outcomes):
        scenario = outcome.scenario
        section = sections[axis].setdefault(
            preset, {"axis": axes[axis][preset], "curves": {}}
        )
        curve = section["curves"].setdefault(
            _config_key(style, mode),
            {
                "aggregate_mpki": [],
                "aggregate_ipc": [],
                "context_switches": [],
                "partition_sets": [],
                "per_tenant_mpki": [],
            },
        )
        curve["aggregate_mpki"].append(scenario.aggregate.btb_mpki)
        curve["aggregate_ipc"].append(scenario.aggregate.ipc)
        curve["context_switches"].append(scenario.context_switches)
        curve["partition_sets"].append(scenario.partition_sets)
        curve["per_tenant_mpki"].append(
            {name: result.btb_mpki for name, result in scenario.per_tenant.items()}
        )
    return {
        "experiment": "scenario_sweep",
        "scale": scale.name,
        "budget_kib": budget_kib,
        "instructions": scale.instructions,
        "presets": names,
        "styles": [style_label(style) for style in styles],
        "asid_modes": [mode.value for mode in asid_modes],
        "quantum_sweep": sections[QUANTUM_AXIS],
        "tenant_sweep": sections[TENANT_AXIS],
    }


# -- output -------------------------------------------------------------------

#: Column order of the flat CSV form (one row per curve point per tenant,
#: plus an ``(aggregate)`` row per point).
CSV_FIELDS = (
    "sweep",
    "preset",
    "axis_value",
    "style",
    "asid_mode",
    "tenant",
    "btb_mpki",
    "ipc",
    "context_switches",
    "partition_sets",
)


def csv_rows(result: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten a sweep result into plot-ready CSV rows (see ``CSV_FIELDS``)."""
    rows: List[Dict[str, object]] = []
    for sweep_name, section_key in (("quantum", "quantum_sweep"), ("tenant_count", "tenant_sweep")):
        for preset, section in result[section_key].items():
            for config, curve in section["curves"].items():
                style, asid_mode = config.split("/", 1)
                for position, value in enumerate(section["axis"]):
                    partitions = curve["partition_sets"][position]
                    base = {
                        "sweep": sweep_name,
                        "preset": preset,
                        "axis_value": value,
                        "style": style,
                        "asid_mode": asid_mode,
                        "context_switches": curve["context_switches"][position],
                        "partition_sets": "" if partitions is None else (
                            ";".join(f"{t}={n}" for t, n in partitions.items())
                        ),
                    }
                    rows.append(
                        {
                            **base,
                            "tenant": "(aggregate)",
                            "btb_mpki": curve["aggregate_mpki"][position],
                            "ipc": curve["aggregate_ipc"][position],
                        }
                    )
                    for tenant, mpki in curve["per_tenant_mpki"][position].items():
                        rows.append({**base, "tenant": tenant, "btb_mpki": mpki, "ipc": ""})
    return rows


def write_csv(result: Dict[str, object], path: str) -> None:
    """Write the flattened sweep to ``path`` as CSV."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(CSV_FIELDS))
        writer.writeheader()
        writer.writerows(csv_rows(result))


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of both sweep axes (aggregate MPKI curves)."""
    lines = [
        f"Scenario sweep at {result['budget_kib']} KB, "
        f"{result['instructions']} instructions per cell "
        f"(styles: {', '.join(result['styles'])}; "
        f"asid modes: {', '.join(result['asid_modes'])})",
    ]
    for title, section_key, unit in (
        ("MPKI vs scheduling quantum", "quantum_sweep", "instr"),
        ("MPKI vs tenant count", "tenant_sweep", "tenants"),
    ):
        lines.append("")
        lines.append(f"  {title}:")
        for preset, section in result[section_key].items():
            axis = section["axis"]
            lines.append(f"    {preset} ({unit}: {', '.join(str(v) for v in axis)})")
            for config, curve in section["curves"].items():
                series = " ".join(f"{value:8.2f}" for value in curve["aggregate_mpki"])
                switches = curve["context_switches"]
                lines.append(
                    f"      {config:<24} {series}   (switches {switches[0]}..{switches[-1]})"
                )
    return "\n".join(lines)

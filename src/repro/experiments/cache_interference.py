"""Cache-interference sweep: per-tenant i-cache MPKI under consolidation.

The paper's central claim is that *instruction supply* -- not just BTB hits --
governs front-end performance.  The scenario engine has long modelled context
switches in the BTB/BPU, but until the hierarchy became ASID-aware the caches
silently stayed shared and untagged across switches, understating the cold
front-end cost of consolidation.  This driver measures exactly that cost:
per-tenant (and aggregate) L1-I and L2 MPKI as scheduling pressure grows,

* **quantum sweep** -- shorter timeslices mean more switches per
  kilo-instruction, so a flush-on-switch hierarchy pays a cold L1-I refill
  every turn while tagged (PIPT-style shared) retention keeps warm lines;
* **tenant-count sweep** -- more tenants sharing the caches means less
  effective capacity each; ``tagged`` shows cold-start plus cross-tenant
  eviction pressure, ``partitioned`` confines each tenant to its own set
  slices, and the gap between the two is the pollution;

for every cache mode (``flush``/``tagged``/``partitioned``) over the scenario
presets.  The BTB itself runs in ``tagged`` retention throughout, so the
curves isolate the *hierarchy's* contribution to consolidation cost.

Every (preset x axis-value x cache-mode) cell is an ordinary cacheable
:class:`~repro.experiments.engine.ScenarioJob` (with ``cache_asid_mode`` set),
submitted in one pooled engine pass like every other grid.
"""

from __future__ import annotations

import csv
from typing import Dict, List, Sequence, Tuple

from repro.common.config import ASIDMode, BTBStyle
from repro.experiments.config import DEFAULT_BUDGET_KIB, ExperimentScale, QUICK_SCALE
from repro.experiments.engine import ExperimentEngine, ScenarioJob, get_active_engine
from repro.experiments.runner import style_label
from repro.experiments.scenario_sweep import (
    DEFAULT_QUANTA,
    QUANTUM_AXIS,
    TENANT_AXIS,
    quantum_variant,
    tenant_count_variant,
)
from repro.scenarios.presets import get_scenario, scenario_names

#: Cache context-switch policies swept by default (the legacy ASID-oblivious
#: hierarchy is deliberately absent: it false-shares lines between tenants,
#: so its per-tenant MPKI is not comparable -- run a scenario study for it).
SWEEP_CACHE_MODES: Tuple[ASIDMode, ...] = (
    ASIDMode.FLUSH,
    ASIDMode.TAGGED,
    ASIDMode.PARTITIONED,
)

#: The organization the sweep runs on (the paper's proposal); the BTB's own
#: retention mode is fixed to ``tagged`` so only the hierarchy varies.
DEFAULT_STYLE = BTBStyle.BTBX
DEFAULT_BTB_ASID_MODE = ASIDMode.TAGGED

def _curve_key(style: BTBStyle, cache_mode: ASIDMode) -> str:
    return f"{style_label(style)}/cache-{cache_mode.value}"


def run(
    scale: ExperimentScale = QUICK_SCALE,
    budget_kib: float = DEFAULT_BUDGET_KIB,
    presets: Sequence[str] | None = None,
    style: BTBStyle = DEFAULT_STYLE,
    btb_asid_mode: ASIDMode = DEFAULT_BTB_ASID_MODE,
    cache_modes: Sequence[ASIDMode] = SWEEP_CACHE_MODES,
    quanta: Sequence[int] = DEFAULT_QUANTA,
    tenant_counts: Sequence[int] | None = None,
    engine: ExperimentEngine | None = None,
) -> Dict[str, object]:
    """Run both sweep axes for every preset through one pooled engine pass.

    ``tenant_counts=None`` sweeps 1..len(tenants) per preset.  Returns a
    result dict with ``quantum_sweep`` and ``tenant_sweep`` sections, each
    mapping preset -> {"axis": [...], "curves": {"<style>/cache-<mode>":
    ...}}; a curve carries aligned ``aggregate_l1i_mpki`` /
    ``aggregate_l2_mpki`` / ``aggregate_ipc`` / ``context_switches`` /
    ``cache_partition_sets`` lists plus ``per_tenant_l1i_mpki`` (one
    {tenant: mpki} dict per axis point).
    """
    engine = engine or get_active_engine()
    names = list(presets) if presets is not None else scenario_names()
    names = list(dict.fromkeys(names))
    quanta = list(dict.fromkeys(quanta))
    cache_modes = list(dict.fromkeys(cache_modes))
    if tenant_counts is not None:
        tenant_counts = list(dict.fromkeys(tenant_counts))

    cells: List[Tuple[str, str, int, ASIDMode]] = []
    jobs: List[ScenarioJob] = []
    axes: Dict[str, Dict[str, List[int]]] = {QUANTUM_AXIS: {}, TENANT_AXIS: {}}
    for name in names:
        spec = get_scenario(name)
        counts = (
            list(tenant_counts)
            if tenant_counts is not None
            else list(range(1, len(spec.tenants) + 1))
        )
        axes[QUANTUM_AXIS][name] = list(quanta)
        axes[TENANT_AXIS][name] = counts
        variants = [(QUANTUM_AXIS, value, quantum_variant(spec, value)) for value in quanta]
        variants += [(TENANT_AXIS, value, tenant_count_variant(spec, value)) for value in counts]
        for axis, value, variant in variants:
            for cache_mode in cache_modes:
                cells.append((axis, name, value, cache_mode))
                jobs.append(
                    ScenarioJob(
                        scenario=variant.name,
                        instructions=scale.instructions,
                        warmup_instructions=scale.warmup_instructions,
                        style=style,
                        asid_mode=btb_asid_mode,
                        fdip_enabled=True,
                        budget_kib=budget_kib,
                        cache_asid_mode=cache_mode,
                        spec=variant,
                    )
                )
    outcomes = engine.run_jobs(jobs)

    sections: Dict[str, Dict[str, Dict[str, object]]] = {QUANTUM_AXIS: {}, TENANT_AXIS: {}}
    for (axis, preset, _value, cache_mode), outcome in zip(cells, outcomes):
        scenario = outcome.scenario
        section = sections[axis].setdefault(
            preset, {"axis": axes[axis][preset], "curves": {}}
        )
        curve = section["curves"].setdefault(
            _curve_key(style, cache_mode),
            {
                "aggregate_l1i_mpki": [],
                "aggregate_l2_mpki": [],
                "aggregate_ipc": [],
                "context_switches": [],
                "cache_partition_sets": [],
                "per_tenant_l1i_mpki": [],
                "per_tenant_l2_mpki": [],
            },
        )
        curve["aggregate_l1i_mpki"].append(scenario.aggregate.l1i_mpki)
        curve["aggregate_l2_mpki"].append(scenario.aggregate.l2_mpki)
        curve["aggregate_ipc"].append(scenario.aggregate.ipc)
        curve["context_switches"].append(scenario.context_switches)
        curve["cache_partition_sets"].append(scenario.cache_partition_sets)
        curve["per_tenant_l1i_mpki"].append(
            {name: result.l1i_mpki for name, result in scenario.per_tenant.items()}
        )
        curve["per_tenant_l2_mpki"].append(
            {name: result.l2_mpki for name, result in scenario.per_tenant.items()}
        )
    return {
        "experiment": "cache_interference",
        "scale": scale.name,
        "budget_kib": budget_kib,
        "instructions": scale.instructions,
        "presets": names,
        "style": style_label(style),
        "btb_asid_mode": btb_asid_mode.value,
        "cache_modes": [mode.value for mode in cache_modes],
        "quantum_sweep": sections[QUANTUM_AXIS],
        "tenant_sweep": sections[TENANT_AXIS],
    }


# -- output -------------------------------------------------------------------

#: Column order of the flat CSV form (one row per curve point per tenant,
#: plus an ``(aggregate)`` row per point).
CSV_FIELDS = (
    "sweep",
    "preset",
    "axis_value",
    "style",
    "cache_mode",
    "tenant",
    "l1i_mpki",
    "l2_mpki",
    "ipc",
    "context_switches",
)


def csv_rows(result: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten a sweep result into plot-ready CSV rows (see ``CSV_FIELDS``)."""
    rows: List[Dict[str, object]] = []
    for sweep_name, section_key in (("quantum", "quantum_sweep"), ("tenant_count", "tenant_sweep")):
        for preset, section in result[section_key].items():
            for config, curve in section["curves"].items():
                style, cache_mode = config.split("/cache-", 1)
                for position, value in enumerate(section["axis"]):
                    base = {
                        "sweep": sweep_name,
                        "preset": preset,
                        "axis_value": value,
                        "style": style,
                        "cache_mode": cache_mode,
                        "context_switches": curve["context_switches"][position],
                    }
                    rows.append(
                        {
                            **base,
                            "tenant": "(aggregate)",
                            "l1i_mpki": curve["aggregate_l1i_mpki"][position],
                            "l2_mpki": curve["aggregate_l2_mpki"][position],
                            "ipc": curve["aggregate_ipc"][position],
                        }
                    )
                    l2_by_tenant = curve["per_tenant_l2_mpki"][position]
                    for tenant, mpki in curve["per_tenant_l1i_mpki"][position].items():
                        rows.append(
                            {
                                **base,
                                "tenant": tenant,
                                "l1i_mpki": mpki,
                                "l2_mpki": l2_by_tenant.get(tenant, ""),
                                "ipc": "",
                            }
                        )
    return rows


def write_csv(result: Dict[str, object], path: str) -> None:
    """Write the flattened sweep to ``path`` as CSV."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(CSV_FIELDS))
        writer.writeheader()
        writer.writerows(csv_rows(result))


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of both sweep axes (aggregate L1-I MPKI curves)."""
    lines = [
        f"Cache-interference sweep at {result['budget_kib']} KB, "
        f"{result['instructions']} instructions per cell "
        f"({result['style']} BTB in {result['btb_asid_mode']} retention; "
        f"cache modes: {', '.join(result['cache_modes'])})",
    ]
    for title, section_key, unit in (
        ("L1-I MPKI vs scheduling quantum", "quantum_sweep", "instr"),
        ("L1-I MPKI vs tenant count", "tenant_sweep", "tenants"),
    ):
        lines.append("")
        lines.append(f"  {title}:")
        for preset, section in result[section_key].items():
            axis = section["axis"]
            lines.append(f"    {preset} ({unit}: {', '.join(str(v) for v in axis)})")
            for config, curve in section["curves"].items():
                series = " ".join(f"{value:8.2f}" for value in curve["aggregate_l1i_mpki"])
                l2 = " ".join(f"{value:6.2f}" for value in curve["aggregate_l2_mpki"])
                lines.append(f"      {config:<24} {series}   (L2: {l2})")
    return "\n".join(lines)

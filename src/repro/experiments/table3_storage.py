"""Table III: BTB-X storage requirements for 256 to 16K entries."""

from __future__ import annotations

from typing import Dict, List

from repro.common.config import ISAStyle
from repro.btb.storage import CANONICAL_BTBX_ENTRIES, BTBStorageModel

#: Storage figures printed in Table III (KB), for checking the reproduction.
PAPER_STORAGE_KIB = (0.9, 1.8, 3.6, 7.25, 14.5, 29.0, 58.0)


def run(scale: object | None = None, isa: ISAStyle = ISAStyle.ARM64) -> Dict[str, object]:
    """Compute BTB-X storage for each canonical entry count."""
    model = BTBStorageModel(isa)
    rows: List[Dict[str, object]] = []
    for entries, paper_kib in zip(CANONICAL_BTBX_ENTRIES, PAPER_STORAGE_KIB):
        row = model.btbx_storage_row(entries)
        rows.append(
            {
                "btbx_entries": row.btbx_entries,
                "companion_entries": row.companion_entries,
                "sets": row.num_sets,
                "set_bits": row.set_bits,
                "storage_kib": row.storage_kib,
                "paper_storage_kib": paper_kib,
            }
        )
    return {"experiment": "table3_storage", "isa": isa.value, "rows": rows}


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of Table III."""
    lines = [
        f"Table III: BTB-X storage requirements ({result['isa']})",
        "",
        "  entries(+XC)   sets   set-bits   storage      paper",
    ]
    for row in result["rows"]:
        lines.append(
            f"  {row['btbx_entries']:>6}(+{row['companion_entries']:<3}) {row['sets']:>6} "
            f"{row['set_bits']:>9} {row['storage_kib']:>8.3f}KB {row['paper_storage_kib']:>8.2f}KB"
        )
    return "\n".join(lines)

"""Table IV: branches trackable by BTB-X, PDede and Conv-BTB per storage budget."""

from __future__ import annotations

from typing import Dict, List

from repro.common.config import ISAStyle
from repro.btb.storage import BTBStorageModel

#: Branch capacities reported in Table IV, for reference in the report.
PAPER_CAPACITIES = {
    "btbx": (256 + 4, 512 + 8, 1024 + 16, 2048 + 32, 4096 + 64, 8192 + 128, 16384 + 256),
    "pdede": (210, 415, 820, 1617, 3190, 6292, 12405),
    "conventional": (116, 232, 464, 928, 1856, 3712, 7424),
}


def run(scale: object | None = None, isa: ISAStyle = ISAStyle.ARM64) -> Dict[str, object]:
    """Compute the capacity table for the given ISA."""
    model = BTBStorageModel(isa)
    rows: List[Dict[str, object]] = []
    for index, capacity in enumerate(model.capacity_table()):
        rows.append(
            {
                "storage_kib": capacity.storage_kib,
                "btbx": capacity.btbx_total_entries,
                "pdede": capacity.pdede_entries,
                "pdede_entry_bits": capacity.pdede_entry_bits,
                "pdede_page_entries": capacity.pdede_page_entries,
                "conventional": capacity.conventional_entries,
                "btbx_over_conventional": capacity.btbx_over_conventional,
                "btbx_over_pdede": capacity.btbx_over_pdede,
                "paper_btbx": PAPER_CAPACITIES["btbx"][index],
                "paper_pdede": PAPER_CAPACITIES["pdede"][index],
                "paper_conventional": PAPER_CAPACITIES["conventional"][index],
            }
        )
    summary = {
        "btbx_over_conventional_min": min(r["btbx_over_conventional"] for r in rows),
        "btbx_over_conventional_max": max(r["btbx_over_conventional"] for r in rows),
        "btbx_over_pdede_min": min(r["btbx_over_pdede"] for r in rows),
        "btbx_over_pdede_max": max(r["btbx_over_pdede"] for r in rows),
    }
    return {"experiment": "table4_capacity", "isa": isa.value, "rows": rows, "summary": summary}


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of Table IV."""
    lines = [
        f"Table IV: branch capacity per storage budget ({result['isa']})",
        "",
        "  budget     BTB-X(paper)      PDede(paper)      Conv(paper)      X/Conv  X/PDede",
    ]
    for row in result["rows"]:
        lines.append(
            f"  {row['storage_kib']:6.2f}KB  {row['btbx']:>6} ({row['paper_btbx']:>6})  "
            f"{row['pdede']:>6} ({row['paper_pdede']:>6})  "
            f"{row['conventional']:>6} ({row['paper_conventional']:>6})   "
            f"{row['btbx_over_conventional']:.2f}x   {row['btbx_over_pdede']:.2f}x"
        )
    summary = result["summary"]
    lines.append("")
    lines.append(
        "  BTB-X capacity advantage: "
        f"{summary['btbx_over_conventional_min']:.2f}-{summary['btbx_over_conventional_max']:.2f}x over Conv-BTB, "
        f"{summary['btbx_over_pdede_min']:.2f}-{summary['btbx_over_pdede_max']:.2f}x over PDede"
    )
    return "\n".join(lines)

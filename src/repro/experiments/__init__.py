"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every driver exposes a ``run(scale)`` function returning a plain dictionary of
rows/summaries (so results are easy to log, test and serialize) and a
``format_report(result)`` helper producing the text table printed by the CLI
and the benchmarks.

========================  ====================================================
module                    reproduces
========================  ====================================================
``table1_exynos``         Table I   -- Samsung Exynos BTB storage trend
``fig04_offsets``         Figure 4  -- target offset distribution (IPC-1-like)
``table3_storage``        Table III -- BTB-X storage requirements
``table4_capacity``       Table IV  -- branch capacity per storage budget
``fig09_mpki``            Figure 9  -- BTB MPKI per workload at 14.5 KB
``fig10_performance``     Figure 10 -- speedup with/without FDIP at 14.5 KB
``table5_energy``         Table V   -- BTB energy, plus the latency analysis
``fig11_sweep``           Figure 11 -- performance vs storage budget sweep
``fig12_cvp``             Figure 12 -- offset distribution on CVP-1-like traces
``fig13_x86``             Figure 13 -- x86 vs Arm64 offset distribution + sizing
``ablation_ways``         (extension) BTB-X way-sizing ablation
``scenario_study``        (extension) multi-tenant consolidation scenarios
``scenario_sweep``        (extension) MPKI vs quantum / tenant-count sweeps
``shared_footprint``      (extension) duplication vs shared-code overlap
``cache_interference``    (extension) per-tenant L1-I/L2 MPKI vs cache ASID mode
========================  ====================================================

The amount of simulated work is controlled by :class:`ExperimentScale`
(``QUICK_SCALE`` for benchmarks/CI, ``FULL_SCALE`` for paper-style runs; the
``REPRO_SCALE`` environment variable selects between them).

Simulation grids execute through :class:`ExperimentEngine`
(:mod:`repro.experiments.engine`): drivers expand their grids into hashable
:class:`SimJob` lists, the engine fans them out over a worker pool and
memoizes each result in an on-disk cache keyed by the job's config hash.
"""

from repro.experiments.config import (
    DEFAULT_BUDGET_KIB,
    FULL_SCALE,
    QUICK_SCALE,
    SMOKE_SCALE,
    ExperimentScale,
    current_scale,
)
from repro.experiments.engine import (
    ExperimentEngine,
    JobOutcome,
    ResultCache,
    ScenarioJob,
    SimJob,
    get_active_engine,
    set_active_engine,
    use_engine,
)

__all__ = [
    "ExperimentScale",
    "QUICK_SCALE",
    "FULL_SCALE",
    "SMOKE_SCALE",
    "DEFAULT_BUDGET_KIB",
    "current_scale",
    "ExperimentEngine",
    "SimJob",
    "ScenarioJob",
    "JobOutcome",
    "ResultCache",
    "get_active_engine",
    "set_active_engine",
    "use_engine",
]

"""Scenario study: does BTB-X's storage advantage survive consolidation?

Sweeps every registered scenario preset across BTB organizations and ASID
modes at the paper's headline 14.5 KB budget, all through the shared
experiment engine (scenario cells are cacheable jobs like any figure cell).
Questions this answers that the paper's single-trace evaluation cannot:

* how much MPKI does timeslicing add over the solo baseline?
* does ASID-tagged retention beat flush-on-switch, and for which tenants?
* does the BTB-X > Conv-BTB ordering hold when capacity is shared?
* is a tenant's damage cross-tenant pollution or its own cold-start misses
  (tagged vs partitioned-capacity retention)?

"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.config import ASIDMode, BTBStyle
from repro.experiments.config import DEFAULT_BUDGET_KIB, ExperimentScale, QUICK_SCALE
from repro.experiments.engine import ExperimentEngine, ScenarioJob, get_active_engine
from repro.experiments.runner import style_label
from repro.scenarios.presets import scenario_names

#: Organizations compared in the scenario study.
STUDY_STYLES: tuple[BTBStyle, ...] = (BTBStyle.CONVENTIONAL, BTBStyle.BTBX)

#: All three context-switch policies (flush, tagged, partitioned-capacity).
STUDY_ASID_MODES: tuple[ASIDMode, ...] = (
    ASIDMode.FLUSH,
    ASIDMode.TAGGED,
    ASIDMode.PARTITIONED,
)


def scenario_jobs(
    scale: ExperimentScale,
    scenarios: Sequence[str],
    styles: Sequence[BTBStyle] = STUDY_STYLES,
    asid_modes: Sequence[ASIDMode] = STUDY_ASID_MODES,
    budget_kib: float = DEFAULT_BUDGET_KIB,
) -> List[ScenarioJob]:
    """Expand the scenario x style x asid_mode grid into its job list."""
    return [
        ScenarioJob(
            scenario=scenario,
            instructions=scale.instructions,
            warmup_instructions=scale.warmup_instructions,
            style=style,
            asid_mode=asid_mode,
            fdip_enabled=True,
            budget_kib=budget_kib,
        )
        for scenario in scenarios
        for style in styles
        for asid_mode in asid_modes
    ]


def run(
    scale: ExperimentScale = QUICK_SCALE,
    budget_kib: float = DEFAULT_BUDGET_KIB,
    scenarios: Sequence[str] | None = None,
    styles: Sequence[BTBStyle] = STUDY_STYLES,
    asid_modes: Sequence[ASIDMode] = STUDY_ASID_MODES,
    engine: ExperimentEngine | None = None,
) -> Dict[str, object]:
    """Run the scenario grid and collect per-tenant and aggregate metrics."""
    engine = engine or get_active_engine()
    names = list(scenarios) if scenarios is not None else scenario_names()
    jobs = scenario_jobs(scale, names, styles, asid_modes, budget_kib)
    outcomes = engine.run_jobs(jobs)

    cells: Dict[str, Dict[str, object]] = {}
    for job, outcome in zip(jobs, outcomes):
        scenario_result = outcome.scenario
        cell = cells.setdefault(job.scenario, {"configs": {}})
        cell["context_switches"] = scenario_result.context_switches
        cell["tenants"] = list(scenario_result.per_tenant)
        cell["configs"][f"{style_label(job.style)}/{job.asid_mode.value}"] = {
            "aggregate": scenario_result.aggregate.to_dict(),
            "per_tenant": {
                name: {"btb_mpki": result.btb_mpki, "ipc": result.ipc}
                for name, result in scenario_result.per_tenant.items()
            },
        }
    return {
        "experiment": "scenario_study",
        "scale": scale.name,
        "budget_kib": budget_kib,
        "styles": [style_label(style) for style in styles],
        "asid_modes": [mode.value for mode in asid_modes],
        "scenarios": cells,
    }


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of the scenario study."""
    lines = [
        f"Scenario study at {result['budget_kib']} KB "
        f"(styles: {', '.join(result['styles'])}; asid modes: {', '.join(result['asid_modes'])})",
    ]
    for scenario, cell in result["scenarios"].items():
        lines.append("")
        lines.append(f"  {scenario} ({cell['context_switches']} context switches)")
        lines.append(f"    {'config':<22} {'agg MPKI':>9} {'agg IPC':>8}  per-tenant MPKI")
        for config, data in cell["configs"].items():
            aggregate = data["aggregate"]
            tenants = "  ".join(
                f"{name}={metrics['btb_mpki']:.1f}"
                for name, metrics in data["per_tenant"].items()
            )
            lines.append(
                f"    {config:<22} {aggregate['btb_mpki']:9.2f} {aggregate['ipc']:8.3f}  {tenants}"
            )
    return "\n".join(lines)

"""Figure 10: speedups of Conv-BTB, PDede and BTB-X with and without FDIP.

All results are normalized to the conventional BTB *without* instruction
prefetching at the same (14.5 KB) storage budget.  For PDede and BTB-X the
gain is split into the part obtained without FDIP (fewer pipeline flushes)
and the additional part contributed by FDIP prefetching, mirroring the
stacked bars of Figure 10.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.aggregate import geometric_mean
from repro.common.config import BTBStyle
from repro.experiments.config import DEFAULT_BUDGET_KIB, ExperimentScale, QUICK_SCALE
from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import (
    EVALUATED_STYLES,
    evaluation_traces,
    is_server_workload,
    simulate_full_grid,
    style_label,
)


def run(
    scale: ExperimentScale = QUICK_SCALE,
    budget_kib: float = DEFAULT_BUDGET_KIB,
    engine: ExperimentEngine | None = None,
) -> Dict[str, object]:
    """Simulate the 3 organizations x {FDIP off, FDIP on} grid."""
    traces = evaluation_traces(scale, suites=("ipc1_client", "ipc1_server"))
    # Both FDIP modes go out in one pooled pass.
    grid = simulate_full_grid(
        traces, EVALUATED_STYLES, (budget_kib,), (False, True), scale, engine=engine
    )
    without_fdip = {
        style: {name: outcome.result for name, outcome in per_style.items()}
        for style, per_style in grid[(budget_kib, False)].items()
    }
    with_fdip = {
        style: {name: outcome.result for name, outcome in per_style.items()}
        for style, per_style in grid[(budget_kib, True)].items()
    }
    baseline = without_fdip[BTBStyle.CONVENTIONAL]

    per_workload: Dict[str, Dict[str, Dict[str, float]]] = {}
    for trace in traces:
        name = trace.name
        base_ipc = baseline[name].ipc
        per_workload[name] = {}
        for style in EVALUATED_STYLES:
            no_fdip_gain = without_fdip[style][name].ipc / base_ipc if base_ipc else 0.0
            total_gain = with_fdip[style][name].ipc / base_ipc if base_ipc else 0.0
            per_workload[name][style_label(style)] = {
                "gain_without_fdip": no_fdip_gain,
                "gain_with_fdip": total_gain,
                "gain_from_prefetching": max(total_gain - no_fdip_gain, 0.0),
            }

    def gmean_over(selector, style, key):
        return geometric_mean(
            per_workload[name][style_label(style)][key]
            for name in per_workload
            if selector(name)
        )

    summary: Dict[str, Dict[str, Dict[str, float]]] = {}
    for group, selector in (("server", is_server_workload),
                            ("client", lambda n: not is_server_workload(n))):
        summary[group] = {
            style_label(style): {
                "gain_with_fdip": gmean_over(selector, style, "gain_with_fdip"),
                "gain_without_fdip": gmean_over(selector, style, "gain_without_fdip"),
            }
            for style in EVALUATED_STYLES
        }
    return {
        "experiment": "fig10_performance",
        "scale": scale.name,
        "budget_kib": budget_kib,
        "per_workload": per_workload,
        "summary": summary,
        "paper_server_gmean_with_fdip": {"Conv-BTB": 1.24, "PDede": 1.33, "BTB-X": 1.39},
        "paper_server_gmean_without_fdip": {"Conv-BTB": 1.00, "PDede": 1.08, "BTB-X": 1.13},
    }


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of the Figure 10 reproduction."""
    lines = [
        f"Figure 10: performance gain over Conv-BTB without FDIP ({result['budget_kib']} KB)",
        "",
        "  group    organization   no-FDIP gain   with-FDIP gain",
    ]
    for group in ("server", "client"):
        for style, values in result["summary"][group].items():
            lines.append(
                f"  {group:<8} {style:<13} {values['gain_without_fdip']:10.3f}   {values['gain_with_fdip']:12.3f}"
            )
    lines.append("")
    lines.append(
        "  paper (server gmean, with FDIP): "
        + ", ".join(f"{k}={v:.2f}" for k, v in result["paper_server_gmean_with_fdip"].items())
    )
    return "\n".join(lines)

"""Perf-trajectory benchmark: throughput of the `sweep scenarios` smoke grid.

The CI pipeline needs a number that moves when the simulation engine gets
slower, not when trace synthesis or the disk cache changes.  This module
times exactly that: the full smoke-scale :mod:`scenario_sweep` grid (every
preset, both sweep axes, every style x ASID mode) executed cell-by-cell on a
fresh in-process engine, with every workload trace pre-generated so the
measured wall time is simulation throughput.

Three decisions keep the number comparable across commits and runners:

* **Fresh engine per repetition** -- no memo, no disk cache; every cell
  simulates.  ``instructions/sec`` is executed cells times the scale's
  instruction count over wall time.
* **Best-of-N repetitions** -- shared CI runners are noisy (30 % swings are
  routine); the *minimum* wall time is the least-contended measurement and
  is what the history records.
* **One leg per configured backend** -- the scalar oracle and (when numpy is
  importable) the batched backend run the same grid, so each history record
  carries both absolute throughputs plus their ratio.

Records append to ``results/bench_history.jsonl`` (one JSON object per
line); :func:`compare` diffs a fresh record against the last committed entry
and fails on a >threshold throughput drop, which is the CI gate.
"""

from __future__ import annotations

import datetime as _datetime
import json
import os
import pathlib
import subprocess
import time
from typing import Dict, List, Sequence

from repro.common.config import BACKEND_ENV_VAR, resolve_backend
from repro.experiments import scenario_sweep
from repro.experiments.config import SMOKE_SCALE, ExperimentScale
from repro.experiments.engine import ExperimentEngine
from repro.obs import JsonlRecorder, get_recorder, use_recorder
from repro.scenarios.presets import get_scenario, scenario_names
from repro.traces.store import TraceStore, default_store

#: Current record schema; bump when fields change meaning.
#: v2: per-backend ``phases`` (decode/compose/simulate seconds aggregated
#: from the telemetry spans of the measured leg).  Additive; ``compare``
#: still gates on ``backends[*].ips`` only, so v1 baselines keep working.
RECORD_FORMAT = 2

#: Span name -> phase field of the per-leg breakdown.
_PHASE_SPANS = {
    "trace.build": "decode_s",
    "trace.decode": "decode_s",
    "scenario.compose": "compose_s",
    # Pipelined SoA decode, emitted from the producer thread *during* the
    # simulate window; it is compose work, so the phase split files it there
    # (phases may sum past wall_s exactly when the pipeline overlaps).
    "scenario.compose.decode": "compose_s",
    "scenario.simulate": "simulate_s",
}


def _phase_seconds(events: List[Dict[str, object]]) -> Dict[str, float]:
    """Sum the recorded span durations into the decode/compose/simulate split."""
    phases = {"decode_s": 0.0, "compose_s": 0.0, "simulate_s": 0.0}
    for event in events:
        if event.get("type") != "span":
            continue
        field = _PHASE_SPANS.get(event.get("name"))
        if field is not None:
            phases[field] += float(event.get("dur", 0.0))
    return {field: round(value, 3) for field, value in phases.items()}

#: The committed perf trajectory (one JSON object per line).
DEFAULT_HISTORY_PATH = "results/bench_history.jsonl"

#: Throughput drop that fails ``bench compare`` (0.2 = 20 %).
DEFAULT_REGRESSION_THRESHOLD = 0.20

#: PR label that documents an accepted regression; the CI workflow skips the
#: compare gate when it is present (see .github/workflows/ci.yml).
OVERRIDE_LABEL = "perf-regression-ok"


def _git_commit() -> str:
    """Current commit hash, falling back to CI metadata or ``unknown``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return os.environ.get("GITHUB_SHA", "unknown")


def available_backends() -> List[str]:
    """Backends this interpreter can run: scalar always, numpy when importable."""
    backends = ["python"]
    try:
        resolve_backend("numpy")
    except Exception:
        return backends
    backends.append("numpy")
    return backends


def warm_traces(scale: ExperimentScale, store: TraceStore | None = None) -> int:
    """Pre-generate every workload trace the sweep grid will replay.

    Returns the number of distinct workloads warmed.  Trace generation is
    deterministic and identical across backends, so excluding it from the
    timed region removes the largest backend-independent term.  Shared-code
    tenant remaps are warmed the same way: the composer memoizes them on the
    source traces (:func:`repro.scenarios.compose.cached_remap`), so warming
    them here keeps the legs symmetric -- whichever backend runs first would
    otherwise pay every cache fill.
    """
    from repro.scenarios.compose import TraceComposer

    store = store or default_store()
    specs = [get_scenario(name) for name in scenario_names()]
    workloads = set()
    for spec in specs:
        for tenant in spec.tenants:
            workloads.add(tenant.workload)
    for workload in sorted(workloads):
        store.get(workload, scale.instructions)
    for spec in specs:
        variants = [
            scenario_sweep.tenant_count_variant(spec, count)
            for count in range(1, len(spec.tenants) + 1)
        ]
        for variant in variants:
            if variant.shared_fraction <= 0.0:
                continue
            traces = {
                tenant.workload: store.get(tenant.workload, scale.instructions)
                for tenant in variant.tenants
            }
            TraceComposer(variant, traces)
    return len(workloads)


def _time_sweep_leg(backend: str, scale: ExperimentScale) -> Dict[str, object]:
    """One timed pass of the smoke sweep grid on a fresh serial engine.

    Every leg runs under its own :class:`~repro.obs.JsonlRecorder`, so the
    record carries a decode/compose/simulate phase split alongside the wall
    time (the span overhead is a few hundred spans against a multi-second
    leg, far inside runner noise).  When an outer recorder is active (the
    CLI's ``--trace-out``), the leg's events are merged into it.
    """
    previous = os.environ.get(BACKEND_ENV_VAR)
    os.environ[BACKEND_ENV_VAR] = backend
    recorder = JsonlRecorder()
    try:
        engine = ExperimentEngine(workers=1)
        with use_recorder(recorder):
            started = time.perf_counter()
            scenario_sweep.run(scale=scale, engine=engine)
            wall_s = time.perf_counter() - started
    finally:
        if previous is None:
            os.environ.pop(BACKEND_ENV_VAR, None)
        else:
            os.environ[BACKEND_ENV_VAR] = previous
    events = recorder.drain()
    outer = get_recorder()
    if outer.enabled:
        outer.merge(events)
    cells = engine.counters.executed
    instructions = cells * scale.instructions
    return {
        "cells": cells,
        "instructions": instructions,
        "wall_s": wall_s,
        "ips": instructions / wall_s if wall_s > 0 else 0.0,
        "phases": _phase_seconds(events),
    }


def run_smoke(
    backends: Sequence[str] | None = None,
    repeats: int = 2,
    scale: ExperimentScale = SMOKE_SCALE,
    store: TraceStore | None = None,
) -> Dict[str, object]:
    """Measure the sweep-scenarios smoke grid and return one history record."""
    if repeats < 1:
        raise ValueError("bench needs at least one repetition")
    legs = list(backends) if backends is not None else available_backends()
    for backend in legs:
        resolve_backend(backend)  # fail fast on unknown/uninstallable backends
    warm_traces(scale, store=store)

    measured: Dict[str, Dict[str, float]] = {}
    for backend in legs:
        best: Dict[str, float] | None = None
        for _ in range(repeats):
            leg = _time_sweep_leg(backend, scale)
            if best is None or leg["wall_s"] < best["wall_s"]:
                best = leg
        measured[backend] = best

    # The backends run the same grid, so every leg must have executed the
    # same cell count; a mismatch means one leg silently hit a cache or ran
    # a different grid, which would make the throughput ratio meaningless.
    cell_counts = {backend: leg["cells"] for backend, leg in measured.items()}
    if len(set(cell_counts.values())) > 1:
        raise RuntimeError(f"bench legs executed different cell counts: {cell_counts}")

    record: Dict[str, object] = {
        "format": RECORD_FORMAT,
        "benchmark": "sweep_scenarios_smoke",
        "commit": _git_commit(),
        "date": _datetime.datetime.now(_datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "scale": scale.name,
        "repeats": repeats,
        "cells": next(iter(measured.values()))["cells"],
        "instructions": next(iter(measured.values()))["instructions"],
        "backends": {
            backend: {
                "cells": leg["cells"],
                "instructions": leg["instructions"],
                "wall_s": round(leg["wall_s"], 3),
                "ips": round(leg["ips"], 1),
                "phases": leg["phases"],
            }
            for backend, leg in measured.items()
        },
    }
    # Guard on the throughputs themselves, not wall_s: a leg that executed
    # zero cells has ips == 0.0 with a perfectly positive wall time, and the
    # ratio below would divide by it.
    if (
        "python" in measured
        and "numpy" in measured
        and measured["python"]["ips"] > 0
        and measured["numpy"]["ips"] > 0
    ):
        record["speedup_numpy_over_python"] = round(
            measured["numpy"]["ips"] / measured["python"]["ips"], 3
        )
    return record


def append_history(record: Dict[str, object], path: str | os.PathLike = DEFAULT_HISTORY_PATH) -> None:
    """Append ``record`` as one line of the JSONL perf trajectory."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_history(path: str | os.PathLike = DEFAULT_HISTORY_PATH) -> List[Dict[str, object]]:
    """Parse the JSONL history; unreadable lines fail loudly (the file is committed)."""
    target = pathlib.Path(path)
    if not target.exists():
        return []
    records = []
    for line_number, line in enumerate(target.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{target}:{line_number}: corrupt bench history line") from exc
    return records


def compare(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> Dict[str, object]:
    """Diff a fresh record against a baseline record, backend by backend.

    A backend regresses when its fresh throughput drops more than
    ``threshold`` below the baseline throughput.  Backends present in only
    one record are reported but never gate (the numpy-free CI leg must not
    fail for lacking a numpy baseline).  Returns a verdict dict with
    ``regressed`` (bool) and per-backend ratios.
    """
    fresh_backends = dict(fresh.get("backends", {}))
    base_backends = dict(baseline.get("backends", {}))
    comparisons: Dict[str, object] = {}
    regressed: List[str] = []
    for backend in sorted(set(fresh_backends) & set(base_backends)):
        fresh_ips = float(fresh_backends[backend]["ips"])
        base_ips = float(base_backends[backend]["ips"])
        ratio = fresh_ips / base_ips if base_ips else 0.0
        failed = ratio < (1.0 - threshold)
        row: Dict[str, object] = {
            "baseline_ips": base_ips,
            "fresh_ips": fresh_ips,
            "ratio": round(ratio, 3),
            "regressed": failed,
        }
        # Informational per-phase deltas (format-v2 records carry a
        # decode/compose/simulate split per leg).  Never gates: phases
        # overlap under the pipelined composer and sum past wall_s, so only
        # the throughput ratio above is a fair regression signal.
        fresh_phases = fresh_backends[backend].get("phases")
        base_phases = base_backends[backend].get("phases")
        if fresh_phases and base_phases:
            row["phase_deltas"] = {
                field: round(
                    float(fresh_phases.get(field, 0.0))
                    - float(base_phases.get(field, 0.0)),
                    3,
                )
                for field in sorted(set(fresh_phases) | set(base_phases))
            }
        comparisons[backend] = row
        if failed:
            regressed.append(backend)
    return {
        "threshold": threshold,
        "baseline_commit": baseline.get("commit"),
        "fresh_commit": fresh.get("commit"),
        "comparisons": comparisons,
        "skipped_backends": sorted(set(fresh_backends) ^ set(base_backends)),
        "regressed": bool(regressed),
        "regressed_backends": regressed,
    }


def format_record(record: Dict[str, object]) -> str:
    """Human-readable one-record report."""
    lines = [
        f"benchmark  : {record['benchmark']} (scale={record['scale']}, "
        f"best of {record['repeats']})",
        f"commit     : {record['commit']}",
        f"cells      : {record['cells']} x {record['instructions'] // max(record['cells'], 1)} "
        "instructions",
    ]
    for backend, leg in record["backends"].items():
        lines.append(
            f"  {backend:<7}: {leg['wall_s']:8.2f} s   {leg['ips']:>12,.0f} instructions/s"
        )
        phases = leg.get("phases")
        if phases:
            lines.append(
                f"           decode {phases['decode_s']:.3f} s / "
                f"compose {phases['compose_s']:.3f} s / "
                f"simulate {phases['simulate_s']:.3f} s"
            )
    if "speedup_numpy_over_python" in record:
        lines.append(f"speedup    : {record['speedup_numpy_over_python']:.2f}x (numpy / python)")
    return "\n".join(lines)


def format_comparison(verdict: Dict[str, object]) -> str:
    """Human-readable compare report."""
    lines = [
        f"baseline commit: {verdict['baseline_commit']}",
        f"fresh commit   : {verdict['fresh_commit']}",
        f"threshold      : -{verdict['threshold'] * 100:.0f}% instructions/s",
    ]
    for backend, row in verdict["comparisons"].items():
        state = "REGRESSED" if row["regressed"] else "ok"
        lines.append(
            f"  {backend:<7}: {row['baseline_ips']:>12,.0f} -> {row['fresh_ips']:>12,.0f} "
            f"({row['ratio']:.2f}x)  {state}"
        )
        deltas = row.get("phase_deltas")
        if deltas:
            rendered = ", ".join(
                f"{name.removesuffix('_s')} {value:+.3f}s"
                for name, value in deltas.items()
            )
            lines.append(f"           phases (informational): {rendered}")
    for backend in verdict["skipped_backends"]:
        lines.append(f"  {backend:<7}: present in only one record (not gated)")
    if verdict["regressed"]:
        lines.append(
            "verdict        : REGRESSION -- apply the "
            f"'{OVERRIDE_LABEL}' label to accept it deliberately"
        )
    else:
        lines.append("verdict        : within threshold")
    return "\n".join(lines)

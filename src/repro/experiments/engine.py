"""Parallel experiment execution engine with an on-disk result cache.

The paper's evaluation is a grid — traces x organizations x budgets x FDIP —
and every cell is an independent simulation.  :class:`ExperimentEngine` turns
that observation into throughput:

* each cell becomes a hashable :class:`SimJob` that fully describes one
  simulation (workload, trace length, warmup, BTB construction, FDIP);
* jobs run either inline (``workers=1``) or on a ``ProcessPoolExecutor``
  (``workers>1``), with worker processes regenerating their traces locally
  from the deterministic workload specs — nothing heavyweight is pickled;
* every finished job is memoized in-process and, when a ``cache_dir`` is
  given, persisted as JSON keyed by a content hash of the job config, so
  reruns and overlapping figures (fig09/fig10/fig11/table5 share most of
  their grid) skip completed work entirely.

Results are bit-identical across worker counts and cache states: the engine
always round-trips :class:`SimulationResult` through the same JSON payload,
whether a job ran inline, in a worker, or was loaded from disk.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Mapping, Sequence

from repro.common.config import ASIDMode, BTBStyle, default_machine_config
from repro.common.errors import ConfigurationError
from repro.common.stats import Stats
from repro.obs import JsonlRecorder, get_recorder, use_recorder
from repro.core.metrics import ScenarioResult, SimulationResult
from repro.core.simulator import FrontEndSimulator
from repro.scenarios.spec import ScenarioSpec
from repro.btb.btbx import BTBX
from repro.btb.storage import make_btb_for_budget
from repro.traces.store import TraceStore, default_store
from repro.traces.trace import Trace

#: Bump when the payload layout or simulation semantics change: stale disk
#: cache entries from an older format then miss instead of corrupting runs.
#: v2: scenario jobs (multi-tenant payloads carry per-tenant results).
#: v3: partitioned ASID mode (scenario payloads carry partition_sets; BTB set
#: indexing gained the partition remap, which shifts some aliasing patterns).
#: v4: shared code footprints (specs carry shared_fraction, payloads carry
#: duplication counters and secondary_partition_sets) and ASID-tagged /
#: partitionable Page-/Region-BTBs, which change PDede and R-BTB results in
#: multi-tenant tagged/partitioned runs.
#: v5: ASID-aware memory hierarchy (scenario jobs carry cache_asid_mode;
#: payloads carry l2_accesses/l2_misses, cache_mode, cache_partition_sets,
#: btb_access_counts and the per-scenario Table V energy report); plain-job
#: access_counts now merge BTB-X's companion traffic (energy_access_counts)
#: and reset it at the warmup boundary, changing Table V inputs.
#: v6: shared_page_split floors over the fraction's decimal value instead of
#: its binary float (0.7 of 10 pages is now 7, not 6), shifting shared-
#: footprint cells at non-binary-exact fractions; binary-exact fractions
#: (0, 0.25, 0.5, 0.75, 1) and all golden cells are unchanged, but entries
#: computed with the truncating split must miss rather than be replayed.
CACHE_FORMAT_VERSION = 6

#: SimulationResult fields carried through the payload (everything but stats).
_RESULT_FIELDS = (
    "workload",
    "btb_style",
    "btb_storage_kib",
    "fdip_enabled",
    "instructions",
    "cycles",
    "base_cycles",
    "flush_cycles",
    "resteer_cycles",
    "icache_stall_cycles",
    "btb_extra_cycles",
    "btb_misses_taken",
    "decode_resteers",
    "execute_flushes",
    "direction_mispredictions",
    "target_mispredictions",
    "taken_branches",
    "branches",
    "l1i_accesses",
    "l1i_misses",
    "l1i_misses_covered",
    "l2_accesses",
    "l2_misses",
)


@dataclass(frozen=True)
class SimJob:
    """One independent simulation: a hashable cell of an experiment grid.

    ``budget_kib`` sizes the BTB through :func:`make_btb_for_budget`; the
    way-sizing ablation instead passes an explicit BTB-X geometry via
    ``btbx_entries``/``way_offset_bits``.  Workers resolve ``workload`` to a
    trace through the deterministic suite specs, so a job is self-contained.
    """

    workload: str
    instructions: int
    warmup_instructions: int
    style: BTBStyle
    fdip_enabled: bool
    budget_kib: float | None = None
    btbx_entries: int | None = None
    way_offset_bits: tuple[int, ...] | None = None
    companion_divisor: int = 64

    def __post_init__(self) -> None:
        if self.budget_kib is None and self.way_offset_bits is None:
            raise ConfigurationError("SimJob needs a budget or an explicit BTB-X geometry")
        if self.way_offset_bits is not None and self.btbx_entries is None:
            raise ConfigurationError("explicit way sizing also needs btbx_entries")

    def config_dict(self) -> Dict[str, object]:
        """Canonical JSON-able description of the job (the cache identity)."""
        config = asdict(self)
        config["style"] = self.style.value
        if self.way_offset_bits is not None:
            config["way_offset_bits"] = list(self.way_offset_bits)
        config["cache_format"] = CACHE_FORMAT_VERSION
        return config

    def config_hash(self) -> str:
        """Content hash of the job config; the on-disk cache key."""
        canonical = json.dumps(self.config_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ScenarioJob:
    """One multi-tenant scenario cell: a hashable, cacheable experiment job.

    Mirrors :class:`SimJob` but runs a scenario spec instead of a single
    workload.  ``scenario`` names a registered preset; the resolved
    :class:`ScenarioSpec` is pinned onto the job at construction time (in the
    submitting process, where user registrations live), so worker processes
    never consult the preset registry -- a job survives ``spawn``-style pools
    even for scenarios registered only in the parent.  Tenant traces are still
    rebuilt locally from the deterministic workload specs, like plain jobs.
    """

    scenario: str
    instructions: int
    warmup_instructions: int
    style: BTBStyle
    asid_mode: ASIDMode
    fdip_enabled: bool = True
    budget_kib: float = 14.5
    #: Context-switch policy of the cache hierarchy; ``None`` is the legacy
    #: ASID-oblivious shared hierarchy (see MachineConfig.cache_asid_mode).
    cache_asid_mode: ASIDMode | None = None
    #: Resolved at construction from ``scenario`` when not given explicitly.
    spec: ScenarioSpec | None = None

    def __post_init__(self) -> None:
        if self.instructions < 1:
            raise ConfigurationError("scenario stream needs at least one instruction")
        if self.budget_kib <= 0:
            raise ConfigurationError("scenario job needs a positive storage budget")
        if self.spec is None:
            from repro.scenarios.presets import get_scenario

            object.__setattr__(self, "spec", get_scenario(self.scenario))

    def config_dict(self) -> Dict[str, object]:
        """Canonical JSON-able description of the job (the cache identity).

        Includes the resolved scenario spec, so re-registering a preset with
        different tenants or scheduling knobs changes the cache key.
        """
        config = asdict(self)
        del config["spec"]
        config["style"] = self.style.value
        config["asid_mode"] = self.asid_mode.value
        config["cache_asid_mode"] = (
            None if self.cache_asid_mode is None else self.cache_asid_mode.value
        )
        config["kind"] = "scenario"
        config["scenario_spec"] = self.spec.config_dict()
        config["cache_format"] = CACHE_FORMAT_VERSION
        return config

    def config_hash(self) -> str:
        """Content hash of the job config; the on-disk cache key."""
        canonical = json.dumps(self.config_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: Anything the engine can execute, memoize and cache.
EngineJob = SimJob | ScenarioJob


@dataclass
class JobOutcome:
    """What one executed (or cache-loaded) job produced.

    ``result`` is always present (for scenario jobs it is the aggregate over
    the whole interleaved stream); ``scenario`` additionally carries the
    per-tenant breakdown when the job was a :class:`ScenarioJob`.
    """

    result: SimulationResult
    access_counts: Dict[str, float] | None = None
    scenario: ScenarioResult | None = None


def grid_jobs(
    traces: Sequence[Trace],
    styles: Sequence[BTBStyle],
    budgets_kib: Sequence[float],
    fdip_modes: Sequence[bool],
    instructions: int,
    warmup_instructions: int,
) -> List[SimJob]:
    """Expand a (budget, fdip, style, trace) grid into its job list."""
    return [
        SimJob(
            workload=trace.name,
            instructions=instructions,
            warmup_instructions=warmup_instructions,
            style=style,
            fdip_enabled=fdip,
            budget_kib=budget,
        )
        for budget in budgets_kib
        for fdip in fdip_modes
        for style in styles
        for trace in traces
    ]


# -- job execution (runs in the parent or in a worker process) ---------------


def _result_to_payload(result: SimulationResult) -> Dict[str, object]:
    return {name: getattr(result, name) for name in _RESULT_FIELDS}


def _payload_to_result(payload: Mapping[str, object]) -> SimulationResult:
    return SimulationResult(stats=Stats(), **{name: payload[name] for name in _RESULT_FIELDS})


def _execute_scenario_job(job: ScenarioJob,
                          trace_store: TraceStore | None = None) -> Dict[str, object]:
    """Run one scenario cell and serialize aggregate + per-tenant results."""
    from repro.scenarios.run import execute_scenario

    scenario_result = execute_scenario(
        job.spec,
        style=job.style,
        asid_mode=job.asid_mode,
        budget_kib=job.budget_kib,
        instructions=job.instructions,
        warmup_instructions=job.warmup_instructions,
        fdip_enabled=job.fdip_enabled,
        trace_store=trace_store,
        cache_mode=job.cache_asid_mode,
    )
    return {
        "result": _result_to_payload(scenario_result.aggregate),
        "scenario": {
            "scenario": scenario_result.scenario,
            "asid_mode": scenario_result.asid_mode,
            "cache_mode": scenario_result.cache_mode,
            "context_switches": scenario_result.context_switches,
            "partition_sets": scenario_result.partition_sets,
            "secondary_partition_sets": scenario_result.secondary_partition_sets,
            "cache_partition_sets": scenario_result.cache_partition_sets,
            "duplication": scenario_result.duplication,
            "btb_access_counts": scenario_result.btb_access_counts,
            "energy": scenario_result.energy,
            "per_tenant": {
                name: _result_to_payload(result)
                for name, result in scenario_result.per_tenant.items()
            },
        },
    }


def _payload_to_scenario(payload: Mapping[str, object]) -> ScenarioResult:
    scenario = payload["scenario"]
    return ScenarioResult(
        scenario=scenario["scenario"],
        asid_mode=scenario["asid_mode"],
        context_switches=scenario["context_switches"],
        aggregate=_payload_to_result(payload["result"]),
        per_tenant={
            name: _payload_to_result(tenant)
            for name, tenant in scenario["per_tenant"].items()
        },
        partition_sets=scenario.get("partition_sets"),
        secondary_partition_sets=scenario.get("secondary_partition_sets"),
        duplication=scenario.get("duplication"),
        cache_mode=scenario.get("cache_mode"),
        cache_partition_sets=scenario.get("cache_partition_sets"),
        btb_access_counts=scenario.get("btb_access_counts"),
        energy=scenario.get("energy"),
    )


def execute_job(job: "EngineJob", trace: Trace | None = None,
                trace_store: TraceStore | None = None) -> Dict[str, object]:
    """Run one simulation and return its serialized payload.

    The serialized form (not the live objects) is the engine's currency: it is
    what workers return, what the disk cache stores and what every caller gets
    rehydrated from, which is how serial, parallel and cached runs stay
    bit-identical.  Scenario jobs compose their own tenant traces, so the
    ``trace`` shortcut only applies to plain single-trace jobs.
    """
    if isinstance(job, ScenarioJob):
        return _execute_scenario_job(job, trace_store=trace_store)
    recorder = get_recorder()
    if trace is None:
        trace = (trace_store or default_store()).get(job.workload, job.instructions)
    machine = default_machine_config(
        btb_style=job.style, fdip_enabled=job.fdip_enabled, isa=trace.isa
    )
    if job.way_offset_bits is not None:
        btb = BTBX(
            job.btbx_entries,
            way_offset_bits=list(job.way_offset_bits),
            companion_divisor=job.companion_divisor,
            isa=trace.isa,
        )
    else:
        btb = make_btb_for_budget(job.style, job.budget_kib, isa=trace.isa)
    with recorder.span(
        "job.simulate",
        workload=job.workload,
        style=job.style.value,
        instructions=job.instructions,
    ):
        result = FrontEndSimulator(machine, btb=btb).run(
            trace, warmup_instructions=job.warmup_instructions
        )
    # Access counters are maintained unconditionally by every BTB and are tiny
    # next to the result, so they ride along in every payload; that keeps the
    # energy analysis (Table V) on the same cached cells as the MPKI and
    # performance figures instead of forking the cache key.
    # energy_access_counts() is the same merge point the scenario runner and
    # BTBEnergyModel use, so BTB-X's companion traffic is priced identically
    # whichever path computes Table V.
    return {
        "result": _result_to_payload(result),
        "access_counts": btb.energy_access_counts(),
    }


def _worker_execute(
    job: "EngineJob", record: bool = False
) -> tuple[str, Dict[str, object], List[Dict[str, object]] | None]:
    """Pool entry point: regenerate the trace(s) locally and run the job.

    With ``record`` set (the parent's recorder is enabled), the worker buffers
    its own telemetry in a pid-origin :class:`~repro.obs.JsonlRecorder` and
    ships the events back pickled with the result; the parent merges them so a
    single trace file covers the whole pool.  Telemetry never enters the
    payload itself, so disk-cache entries stay identical with recording on.
    """
    config_hash = job.config_hash()
    if not record:
        return config_hash, execute_job(job), None
    recorder = JsonlRecorder()
    with use_recorder(recorder):
        with recorder.span(
            "engine.execute", job=config_hash[:12], kind=type(job).__name__
        ):
            payload = execute_job(job)
    return config_hash, payload, recorder.drain()


def _payload_to_outcome(payload: Mapping[str, object]) -> JobOutcome:
    return JobOutcome(
        result=_payload_to_result(payload["result"]),
        access_counts=payload.get("access_counts"),
        scenario=_payload_to_scenario(payload) if "scenario" in payload else None,
    )


# -- on-disk result cache ----------------------------------------------------


class ResultCache:
    """Content-addressed JSON store of finished job payloads.

    One file per job, named by the job's config hash and sharded into
    subdirectories by the hash's leading hex byte (``ab/<hash>.json``), so a
    service-scale cache of tens of thousands of entries never piles every
    file into one directory (directory scans stay cheap, and concurrent
    writers spread their ``os.replace`` traffic across 256 directories).
    Writes go through a temp file in the entry's shard plus
    :func:`os.replace`, so concurrent processes sharing a cache directory
    never observe partial entries.  Pre-sharding caches are still readable:
    lookups fall back to the legacy flat path, and maintenance walks both
    layouts.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _shard_dir(self, config_hash: str) -> str:
        return os.path.join(self.directory, config_hash[:2])

    def _path(self, config_hash: str) -> str:
        return os.path.join(self._shard_dir(config_hash), f"{config_hash}.json")

    def _legacy_path(self, config_hash: str) -> str:
        return os.path.join(self.directory, f"{config_hash}.json")

    def get(self, job: "EngineJob") -> Dict[str, object] | None:
        """Load the payload of ``job`` or None on a miss/corrupt entry.

        Any unreadable entry — missing, corrupt, permission-denied on a
        shared cache directory — is a miss: the job simply re-simulates.
        Entries written before sharding are found at the legacy flat path.
        """
        config_hash = job.config_hash()
        for path in (self._path(config_hash), self._legacy_path(config_hash)):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            payload = entry.get("payload")
            if not isinstance(payload, dict) or "result" not in payload:
                continue
            return payload
        return None

    def put(self, job: "EngineJob", payload: Mapping[str, object]) -> None:
        """Persist the payload of ``job`` atomically (into its shard)."""
        entry = {"job": job.config_dict(), "payload": payload}
        config_hash = job.config_hash()
        shard = self._shard_dir(config_hash)
        os.makedirs(shard, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=shard, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp_path, self._path(config_hash))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_path)
            raise

    def __len__(self) -> int:
        return len(self._entry_paths())

    def _scan_dirs(self) -> List[str]:
        """The flat directory plus every shard subdirectory, scan order fixed.

        Shards that vanish mid-scan (a concurrent ``clear``) simply drop out.
        """
        dirs = [self.directory]
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return dirs
        for name in names:
            path = os.path.join(self.directory, name)
            if len(name) == 2 and os.path.isdir(path):
                dirs.append(path)
        return dirs

    def _entry_paths(self) -> List[str]:
        paths: List[str] = []
        for directory in self._scan_dirs():
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            paths.extend(
                os.path.join(directory, name) for name in names if name.endswith(".json")
            )
        return paths

    def stats(self) -> Dict[str, object]:
        """Entry count, total bytes and age range of the cached payloads.

        Entries that vanish mid-scan (a concurrent prune or run) are simply
        skipped, mirroring how :meth:`get` treats unreadable files.
        """
        entries = 0
        total_bytes = 0
        oldest: float | None = None
        newest: float | None = None
        for path in self._entry_paths():
            try:
                info = os.stat(path)
            except OSError:
                continue
            entries += 1
            total_bytes += info.st_size
            oldest = info.st_mtime if oldest is None else min(oldest, info.st_mtime)
            newest = info.st_mtime if newest is None else max(newest, info.st_mtime)
        return {
            "directory": self.directory,
            "entries": entries,
            "total_bytes": total_bytes,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
        }

    def _entry_format_versions(self) -> Iterator[int]:
        """Format version of each readable entry, lazily.

        Every entry records the ``cache_format`` its job config was hashed
        under; pre-versioning entries report as 0, unreadable ones are
        skipped (like :meth:`get`).
        """
        for path in self._entry_paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            job = entry.get("job")
            version = job.get("cache_format", 0) if isinstance(job, dict) else 0
            yield version if isinstance(version, int) else 0

    def format_versions(self) -> List[int]:
        """Sorted distinct on-disk format versions of the cached entries.

        A full-content scan, which is fine for the informational ``cache
        stats`` path (result caches are thousands of small JSON files).
        """
        return sorted(set(self._entry_format_versions()))

    def newer_format_than(self, version: int) -> int | None:
        """First on-disk format newer than ``version``, or None.

        Stops at the first offending entry, so guarding ``prune`` against a
        newer tool's cache does not pay a whole-directory parse when the
        very first entry already answers the question.
        """
        return next(
            (found for found in self._entry_format_versions() if found > version),
            None,
        )

    #: A ``.tmp`` file younger than this is an in-flight atomic write of a
    #: concurrent run, not a crash orphan; prune leaves it alone.
    _TMP_GRACE_SECONDS = 3600.0

    def prune(self, max_age_seconds: float | None = None) -> int:
        """Delete cached entries older than ``max_age_seconds`` (all when None).

        Returns the number of entries removed.  Crash-orphaned ``.tmp`` files
        are swept too, but only once they are comfortably older than any
        in-flight write could be, so pruning a cache directory a concurrent
        run is writing to never breaks that run's atomic replace.
        """
        now = time.time()
        cutoff = None if max_age_seconds is None else now - max_age_seconds
        removed = 0
        for path in self._entry_paths():
            try:
                if cutoff is not None and os.stat(path).st_mtime >= cutoff:
                    continue
                os.unlink(path)
                removed += 1
            except OSError:
                continue
        tmp_cutoff = now - self._TMP_GRACE_SECONDS
        for directory in self._scan_dirs():
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if name.endswith(".tmp"):
                    path = os.path.join(directory, name)
                    with contextlib.suppress(OSError):
                        if os.stat(path).st_mtime < tmp_cutoff:
                            os.unlink(path)
        return removed

    def clear(self) -> None:
        """Delete every cached entry (and any crash-orphaned temp file)."""
        for directory in self._scan_dirs():
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if name.endswith((".json", ".tmp")):
                    with contextlib.suppress(OSError):
                        os.unlink(os.path.join(directory, name))


# -- the engine ---------------------------------------------------------------


@dataclass
class EngineCounters:
    """Where each submitted job's result came from (for tests and reports)."""

    submitted: int = 0
    executed: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    #: Stream instructions actually simulated (executed jobs only -- memo and
    #: disk hits re-use results without simulating, so they add nothing).
    instructions_simulated: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "instructions_simulated": self.instructions_simulated,
        }


class ExperimentEngine:
    """Executes :class:`SimJob` lists with pooling and memoization.

    ``workers=1`` runs jobs inline (no subprocess overhead, still memoized);
    ``workers>1`` fans the cache misses out over a process pool.  One engine
    is meant to be shared across experiment drivers — its in-memory memo is
    what lets ``run-all`` simulate each overlapping grid cell exactly once.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: str | os.PathLike | None = None,
        trace_store: TraceStore | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("engine needs at least one worker")
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.trace_store = trace_store or default_store()
        self.counters = EngineCounters()
        # LRU-bounded so a long-lived library process cannot grow the memo
        # forever (payloads are small; the bound comfortably covers a full-
        # scale sweep of 43 traces x 3 styles x 7 budgets x 2 FDIP modes).
        self._memo: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._memo_limit = 4096

    # -- execution ----------------------------------------------------------

    def run_jobs(
        self,
        jobs: Sequence["EngineJob"],
        traces: Mapping[str, Trace] | None = None,
    ) -> List[JobOutcome]:
        """Execute ``jobs`` and return their outcomes in submission order.

        ``traces`` optionally supplies already-built :class:`Trace` objects by
        workload name; inline execution uses them directly, worker processes
        always regenerate deterministically from the workload specs.
        """
        recorder = get_recorder()
        self.counters.submitted += len(jobs)
        recorder.count("engine.submitted", len(jobs))
        recorder.gauge("engine.workers", self.workers)
        hashes = [job.config_hash() for job in jobs]

        with recorder.span("engine.run_jobs", jobs=len(jobs), workers=self.workers):
            # Resolve duplicates and cache hits first; collect the true misses.
            # ``resolved`` is the call-local view, immune to memo LRU eviction.
            resolved: Dict[str, Dict[str, object]] = {}
            misses: List[tuple[str, SimJob]] = []
            with recorder.span("engine.memo_lookup", jobs=len(jobs)):
                for job, config_hash in zip(jobs, hashes):
                    if config_hash in resolved:
                        continue
                    payload = self.lookup(job, config_hash)
                    if payload is not None:
                        resolved[config_hash] = payload
                        continue
                    resolved[config_hash] = {}  # placeholder; filled by execution
                    misses.append((config_hash, job))

            for config_hash, payload in self._execute(misses, traces or {}):
                self.counters.executed += 1
                recorder.count("engine.executed")
                job = self._job_by_hash(misses, config_hash)
                self.counters.instructions_simulated += job.instructions
                recorder.count("engine.instructions_simulated", job.instructions)
                self._memoize(config_hash, payload)
                resolved[config_hash] = payload
                if self.cache is not None:
                    with recorder.span("engine.cache_write", job=config_hash[:12]):
                        self.cache.put(job, payload)

        return [_payload_to_outcome(resolved[config_hash]) for config_hash in hashes]

    def run_job(self, job: "EngineJob", trace: Trace | None = None) -> JobOutcome:
        """Convenience wrapper for a single job."""
        traces = {trace.name: trace} if trace is not None else None
        return self.run_jobs([job], traces=traces)[0]

    def lookup(
        self, job: "EngineJob", config_hash: str | None = None
    ) -> Dict[str, object] | None:
        """Resolve ``job`` from the memo or disk cache without executing it.

        Counts the hit (and promotes disk hits into the memo) exactly like
        :meth:`run_jobs` does, so callers that schedule their own execution —
        the sweep service resolves cache hits before admission control — keep
        the counters meaningful.  Returns None on a true miss.
        """
        recorder = get_recorder()
        if config_hash is None:
            config_hash = job.config_hash()
        if config_hash in self._memo:
            self.counters.memo_hits += 1
            recorder.count("engine.memo_hits")
            self._memo.move_to_end(config_hash)
            return self._memo[config_hash]
        if self.cache is not None:
            with recorder.span("engine.cache_read", job=config_hash[:12]):
                payload = self.cache.get(job)
            if payload is not None:
                self.counters.disk_hits += 1
                recorder.count("engine.disk_hits")
                self._memoize(config_hash, payload)
                return payload
        return None

    def record_executed(self, job: "EngineJob", payload: Dict[str, object]) -> None:
        """Absorb a payload executed outside :meth:`run_jobs` (service path).

        Memoizes, persists to the disk cache and advances the executed /
        instructions-simulated counters, so external executors (the sweep
        service runs cells on its own pool) look identical in ``stats()``.
        """
        recorder = get_recorder()
        config_hash = job.config_hash()
        self.counters.executed += 1
        recorder.count("engine.executed")
        self.counters.instructions_simulated += job.instructions
        recorder.count("engine.instructions_simulated", job.instructions)
        self._memoize(config_hash, payload)
        if self.cache is not None:
            with recorder.span("engine.cache_write", job=config_hash[:12]):
                self.cache.put(job, payload)

    def _execute(
        self,
        misses: Sequence[tuple[str, "EngineJob"]],
        traces: Mapping[str, Trace],
    ) -> Iterator[tuple[str, Dict[str, object]]]:
        if not misses:
            return
        recorder = get_recorder()
        if self.workers == 1 or len(misses) == 1:
            for config_hash, job in misses:
                # Scenario jobs have no single workload; they compose their own
                # tenant traces from the store.
                trace = traces.get(getattr(job, "workload", None))
                with recorder.span(
                    "engine.execute", job=config_hash[:12], kind=type(job).__name__
                ):
                    payload = execute_job(job, trace=trace, trace_store=self.trace_store)
                yield config_hash, payload
            return
        max_workers = min(self.workers, len(misses))
        record = bool(recorder.enabled)
        parent_id = recorder.current_span_id() if record else None
        submit_ts = time.time()
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            results = pool.map(
                _worker_execute, [job for _, job in misses], [record] * len(misses)
            )
            for config_hash, payload, events in results:
                if events:
                    # The worker's root span is its engine.execute; its wall-
                    # clock start minus our submit time is the queue wait.
                    root = next(
                        (
                            e
                            for e in events
                            if e.get("type") == "span" and e.get("parent_id") is None
                        ),
                        None,
                    )
                    if root is not None:
                        recorder.emit_span(
                            "engine.queue_wait",
                            ts=submit_ts,
                            dur=max(0.0, root["ts"] - submit_ts),
                            parent_id=parent_id,
                            job=config_hash[:12],
                        )
                    recorder.merge(events, parent_id=parent_id)
                yield config_hash, payload

    @staticmethod
    def _job_by_hash(misses: Sequence[tuple[str, "EngineJob"]], config_hash: str) -> "EngineJob":
        for candidate_hash, job in misses:
            if candidate_hash == config_hash:
                return job
        raise KeyError(config_hash)  # pragma: no cover - executor invariant

    # -- bookkeeping ---------------------------------------------------------

    def _memoize(self, config_hash: str, payload: Dict[str, object]) -> None:
        self._memo[config_hash] = payload
        self._memo.move_to_end(config_hash)
        while len(self._memo) > self._memo_limit:
            self._memo.popitem(last=False)

    def clear_memo(self) -> None:
        """Drop the in-memory memo (the disk cache, if any, is kept)."""
        self._memo.clear()

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: submitted/executed/memo_hits/disk_hits."""
        return self.counters.as_dict()


# -- active-engine plumbing ---------------------------------------------------

_ACTIVE_ENGINE: ExperimentEngine | None = None


def get_active_engine() -> ExperimentEngine:
    """The engine drivers submit to when not handed one explicitly.

    Defaults to a serial, disk-cache-less engine so library users who never
    touch the CLI see the historical single-process behavior.
    """
    global _ACTIVE_ENGINE
    if _ACTIVE_ENGINE is None:
        _ACTIVE_ENGINE = ExperimentEngine(workers=1)
    return _ACTIVE_ENGINE


def set_active_engine(engine: ExperimentEngine | None) -> None:
    """Install (or with None, reset) the process-wide active engine."""
    global _ACTIVE_ENGINE
    _ACTIVE_ENGINE = engine


def clear_active_memo() -> None:
    """Clear the active engine's in-memory memo, if an engine exists.

    Does not lazily create an engine; ``clear_trace_cache`` calls this so
    "drop the caches" keeps meaning every in-process cache.
    """
    if _ACTIVE_ENGINE is not None:
        _ACTIVE_ENGINE.clear_memo()


@contextlib.contextmanager
def use_engine(engine: ExperimentEngine) -> Iterator[ExperimentEngine]:
    """Scope ``engine`` as the active engine (the CLI wraps runs in this)."""
    previous = _ACTIVE_ENGINE
    set_active_engine(engine)
    try:
        yield engine
    finally:
        set_active_engine(previous)

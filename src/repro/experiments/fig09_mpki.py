"""Figure 9: BTB MPKI of Conv-BTB, PDede and BTB-X at the 14.5 KB budget.

MPKI counts misses for *taken* branches only (misses for not-taken branches do
not hurt performance).  The paper reports per-workload bars plus client and
server averages; the shape to reproduce is: server MPKI >> client MPKI, and
Conv-BTB > PDede >= BTB-X on servers.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.aggregate import arithmetic_mean
from repro.experiments.config import DEFAULT_BUDGET_KIB, ExperimentScale, QUICK_SCALE
from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import (
    EVALUATED_STYLES,
    evaluation_traces,
    is_server_workload,
    simulate_grid,
    style_label,
)


def run(
    scale: ExperimentScale = QUICK_SCALE,
    budget_kib: float = DEFAULT_BUDGET_KIB,
    engine: ExperimentEngine | None = None,
) -> Dict[str, object]:
    """Simulate every workload with the three organizations and collect MPKI."""
    traces = evaluation_traces(scale, suites=("ipc1_client", "ipc1_server"))
    grid = simulate_grid(
        traces, EVALUATED_STYLES, budget_kib, fdip_enabled=True, scale=scale, engine=engine
    )

    per_workload: Dict[str, Dict[str, float]] = {}
    for trace in traces:
        per_workload[trace.name] = {
            style_label(style): grid[style][trace.name].btb_mpki for style in EVALUATED_STYLES
        }

    averages: Dict[str, Dict[str, float]] = {}
    for group, selector in (("client", lambda n: not is_server_workload(n)),
                            ("server", is_server_workload)):
        averages[group] = {
            style_label(style): arithmetic_mean(
                grid[style][name].btb_mpki for name in per_workload if selector(name)
            )
            for style in EVALUATED_STYLES
        }
    return {
        "experiment": "fig09_mpki",
        "scale": scale.name,
        "budget_kib": budget_kib,
        "per_workload": per_workload,
        "averages": averages,
        "paper_server_averages": {"Conv-BTB": 25.0, "PDede": 13.7, "BTB-X": 9.5},
    }


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of the Figure 9 reproduction."""
    lines = [
        f"Figure 9: BTB MPKI at {result['budget_kib']} KB (taken-branch misses only)",
        "",
        "  workload          Conv-BTB   PDede    BTB-X",
    ]
    for workload, row in result["per_workload"].items():
        lines.append(
            f"  {workload:<16} {row['Conv-BTB']:8.2f} {row['PDede']:8.2f} {row['BTB-X']:8.2f}"
        )
    lines.append("")
    for group in ("client", "server"):
        row = result["averages"][group]
        lines.append(
            f"  {group + ' avg':<16} {row['Conv-BTB']:8.2f} {row['PDede']:8.2f} {row['BTB-X']:8.2f}"
        )
    paper = result["paper_server_averages"]
    lines.append(
        f"  paper server avg {paper['Conv-BTB']:8.2f} {paper['PDede']:8.2f} {paper['BTB-X']:8.2f}"
    )
    return "\n".join(lines)

"""Shared machinery for the experiment drivers.

The drivers need the same building blocks:

* building the evaluation traces once (trace generation is seeded, so traces
  are identical across drivers using the same scale) through the bounded,
  process-safe :class:`~repro.traces.store.TraceStore`, and
* simulating (trace, style, budget, fdip) grid cells, which is delegated to
  the :class:`~repro.experiments.engine.ExperimentEngine` so grids fan out
  over worker processes and memoize into the on-disk result cache.

Both are provided here so each figure/table driver stays small and readable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.config import BTBStyle
from repro.core.metrics import SimulationResult
from repro.experiments.config import ExperimentScale
from repro.common.errors import WorkloadError
from repro.experiments.engine import (
    ExperimentEngine,
    JobOutcome,
    SimJob,
    _payload_to_outcome,
    clear_active_memo,
    execute_job,
    get_active_engine,
    grid_jobs,
)
from repro.traces.store import default_store
from repro.traces.trace import Trace
from repro.workloads.suites import selected_workload_names, workload_spec_by_name

#: The three organizations compared throughout the evaluation.
EVALUATED_STYLES: tuple[BTBStyle, ...] = (
    BTBStyle.CONVENTIONAL,
    BTBStyle.PDEDE,
    BTBStyle.BTBX,
)


def style_label(style: BTBStyle) -> str:
    """Human label used in reports ("Conv-BTB", "PDede", "BTB-X")."""
    return {
        BTBStyle.CONVENTIONAL: "Conv-BTB",
        BTBStyle.PDEDE: "PDede",
        BTBStyle.BTBX: "BTB-X",
        BTBStyle.REDUCED: "R-BTB",
        BTBStyle.IDEAL: "Ideal",
    }[style]


def suite_limits(scale: ExperimentScale) -> Dict[str, int | None]:
    """Per-suite workload caps implied by ``scale``."""
    return {
        "ipc1_client": scale.client_workloads,
        "ipc1_server": scale.server_workloads,
        "cvp1_server": scale.cvp_workloads,
        "x86_server": scale.x86_workloads,
    }


def evaluation_traces(
    scale: ExperimentScale,
    suites: Sequence[str] = ("ipc1_client", "ipc1_server"),
) -> List[Trace]:
    """Build (and cache) the traces of the requested suites at ``scale``."""
    limits = suite_limits(scale)
    store = default_store()
    return [
        store.get(name, scale.instructions)
        for suite in suites
        for name in selected_workload_names(suite, limits.get(suite))
    ]


def clear_trace_cache() -> None:
    """Drop cached traces and the active engine's memo (bounds memory)."""
    default_store().clear()
    clear_active_memo()


def _is_canonical_trace(trace: Trace, scale: ExperimentScale) -> bool:
    """True when ``trace`` is exactly what its name and ``scale`` describe.

    The engine's caches are keyed by ``(workload name, scale)``, which is only
    sound for traces regenerable from those two facts.  Sliced, windowed or
    custom-named traces must bypass the caches entirely.
    """
    if len(trace) != scale.instructions:
        return False
    try:
        workload_spec_by_name(trace.name)
    except WorkloadError:
        return False
    return True


def simulate(
    trace: Trace,
    style: BTBStyle,
    budget_kib: float,
    fdip_enabled: bool,
    scale: ExperimentScale,
    engine: ExperimentEngine | None = None,
) -> SimulationResult:
    """Simulate one trace with one BTB organization sized for ``budget_kib``.

    Canonical suite traces go through the (memoizing) engine; anything else —
    custom names, non-``scale`` lengths, sliced traces — simulates directly so
    a stale cache entry can never stand in for the trace actually passed.
    """
    job = SimJob(
        workload=trace.name,
        instructions=scale.instructions,
        warmup_instructions=scale.warmup_instructions,
        style=style,
        fdip_enabled=fdip_enabled,
        budget_kib=budget_kib,
    )
    if not _is_canonical_trace(trace, scale):
        return _payload_to_outcome(execute_job(job, trace=trace)).result
    engine = engine or get_active_engine()
    return engine.run_job(job, trace=trace).result


def simulate_full_grid(
    traces: Sequence[Trace],
    styles: Sequence[BTBStyle],
    budgets_kib: Sequence[float],
    fdip_modes: Sequence[bool],
    scale: ExperimentScale,
    engine: ExperimentEngine | None = None,
) -> Dict[Tuple[float, bool], Dict[BTBStyle, Dict[str, JobOutcome]]]:
    """Run a whole (budget, fdip, style, trace) grid in one pooled pass.

    Returns ``outcomes[(budget, fdip)][style][workload]``.  Submitting the
    full grid at once (rather than per budget) is what lets a sweep saturate
    the worker pool.  ``traces`` must be canonical suite traces (as produced
    by :func:`evaluation_traces`): the engine caches by workload name.
    """
    engine = engine or get_active_engine()
    jobs = grid_jobs(
        traces,
        styles,
        budgets_kib,
        fdip_modes,
        instructions=scale.instructions,
        warmup_instructions=scale.warmup_instructions,
    )
    outcomes = engine.run_jobs(jobs, traces={trace.name: trace for trace in traces})
    nested: Dict[Tuple[float, bool], Dict[BTBStyle, Dict[str, JobOutcome]]] = {}
    cursor = iter(outcomes)
    for budget in budgets_kib:
        for fdip in fdip_modes:
            cell = nested.setdefault((budget, fdip), {})
            for style in styles:
                per_style = cell.setdefault(style, {})
                for trace in traces:
                    per_style[trace.name] = next(cursor)
    return nested


def simulate_grid(
    traces: Sequence[Trace],
    styles: Sequence[BTBStyle],
    budget_kib: float,
    fdip_enabled: bool,
    scale: ExperimentScale,
    engine: ExperimentEngine | None = None,
) -> Dict[BTBStyle, Dict[str, SimulationResult]]:
    """Simulate every (style, trace) pair; returns results[style][workload]."""
    nested = simulate_full_grid(
        traces, styles, (budget_kib,), (fdip_enabled,), scale, engine=engine
    )
    cell = nested[(budget_kib, fdip_enabled)]
    return {
        style: {name: outcome.result for name, outcome in cell[style].items()}
        for style in styles
    }


def is_server_workload(name: str) -> bool:
    """True for server-class workload names (used to split suite averages)."""
    return "server" in name or name in ("wordpress", "mediawiki", "drupal", "kafka", "finagle_http")

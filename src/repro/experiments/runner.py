"""Shared machinery for the experiment drivers.

The drivers need the same two building blocks:

* building the evaluation traces once (trace generation is seeded, so traces
  are identical across drivers using the same scale), and
* simulating a trace on a machine whose BTB organization is sized for a given
  storage budget, with or without FDIP.

Both are provided here so each figure/table driver stays small and readable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.common.config import BTBStyle, default_machine_config
from repro.core.metrics import SimulationResult
from repro.core.simulator import FrontEndSimulator
from repro.btb.storage import make_btb_for_budget
from repro.experiments.config import ExperimentScale
from repro.traces.trace import Trace
from repro.workloads.suites import build_suite

#: The three organizations compared throughout the evaluation.
EVALUATED_STYLES: tuple[BTBStyle, ...] = (
    BTBStyle.CONVENTIONAL,
    BTBStyle.PDEDE,
    BTBStyle.BTBX,
)

_TRACE_CACHE: Dict[tuple, List[Trace]] = {}


def style_label(style: BTBStyle) -> str:
    """Human label used in reports ("Conv-BTB", "PDede", "BTB-X")."""
    return {
        BTBStyle.CONVENTIONAL: "Conv-BTB",
        BTBStyle.PDEDE: "PDede",
        BTBStyle.BTBX: "BTB-X",
        BTBStyle.REDUCED: "R-BTB",
        BTBStyle.IDEAL: "Ideal",
    }[style]


def evaluation_traces(
    scale: ExperimentScale,
    suites: Sequence[str] = ("ipc1_client", "ipc1_server"),
) -> List[Trace]:
    """Build (and cache) the traces of the requested suites at ``scale``."""
    limits = {
        "ipc1_client": scale.client_workloads,
        "ipc1_server": scale.server_workloads,
        "cvp1_server": scale.cvp_workloads,
        "x86_server": scale.x86_workloads,
    }
    traces: List[Trace] = []
    for suite in suites:
        key = (suite, scale.instructions, limits.get(suite))
        if key not in _TRACE_CACHE:
            _TRACE_CACHE[key] = list(
                build_suite(suite, scale.instructions, limit=limits.get(suite))
            )
        traces.extend(_TRACE_CACHE[key])
    return traces


def clear_trace_cache() -> None:
    """Drop cached traces (tests use this to bound memory)."""
    _TRACE_CACHE.clear()


def simulate(
    trace: Trace,
    style: BTBStyle,
    budget_kib: float,
    fdip_enabled: bool,
    scale: ExperimentScale,
) -> SimulationResult:
    """Simulate one trace with one BTB organization sized for ``budget_kib``."""
    machine = default_machine_config(
        btb_style=style, fdip_enabled=fdip_enabled, isa=trace.isa
    )
    btb = make_btb_for_budget(style, budget_kib, isa=trace.isa)
    simulator = FrontEndSimulator(machine, btb=btb)
    return simulator.run(trace, warmup_instructions=scale.warmup_instructions)


def simulate_grid(
    traces: Iterable[Trace],
    styles: Sequence[BTBStyle],
    budget_kib: float,
    fdip_enabled: bool,
    scale: ExperimentScale,
) -> Dict[BTBStyle, Dict[str, SimulationResult]]:
    """Simulate every (style, trace) pair; returns results[style][workload]."""
    results: Dict[BTBStyle, Dict[str, SimulationResult]] = {style: {} for style in styles}
    for trace in traces:
        for style in styles:
            results[style][trace.name] = simulate(trace, style, budget_kib, fdip_enabled, scale)
    return results


def is_server_workload(name: str) -> bool:
    """True for server-class workload names (used to split suite averages)."""
    return "server" in name or name in ("wordpress", "mediawiki", "drupal", "kafka", "finagle_http")

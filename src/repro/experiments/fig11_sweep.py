"""Figure 11: performance versus BTB storage budget (0.9 KB to 58 KB).

All three organizations are swept across the seven canonical budgets with
FDIP enabled everywhere; results are normalized to the conventional BTB at
the smallest (0.9 KB) budget, separately for server and client workloads.
The headline shape: BTB-X at budget B matches or beats Conv-BTB at budget 2B,
and the curves converge once branch working sets fit.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.aggregate import geometric_mean
from repro.common.config import BTBStyle
from repro.experiments.config import BUDGETS_KIB, ExperimentScale, QUICK_SCALE
from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import (
    EVALUATED_STYLES,
    evaluation_traces,
    is_server_workload,
    simulate_full_grid,
    style_label,
)


def run(
    scale: ExperimentScale = QUICK_SCALE,
    budgets_kib: tuple[float, ...] = BUDGETS_KIB,
    engine: ExperimentEngine | None = None,
) -> Dict[str, object]:
    """Sweep the storage budgets for the three organizations."""
    traces = evaluation_traces(scale, suites=("ipc1_client", "ipc1_server"))

    # The whole budget sweep is one grid; submitting it in a single pooled
    # pass keeps every engine worker busy across budget boundaries.
    grid = simulate_full_grid(
        traces, EVALUATED_STYLES, budgets_kib, (True,), scale, engine=engine
    )
    # results[budget][style][workload] -> SimulationResult
    results = {
        budget: {
            style: {name: outcome.result for name, outcome in per_style.items()}
            for style, per_style in grid[(budget, True)].items()
        }
        for budget in budgets_kib
    }
    baseline = results[budgets_kib[0]][BTBStyle.CONVENTIONAL]

    curves: Dict[str, Dict[str, List[float]]] = {"server": {}, "client": {}}
    for group, selector in (("server", is_server_workload),
                            ("client", lambda n: not is_server_workload(n))):
        for style in EVALUATED_STYLES:
            series = []
            for budget in budgets_kib:
                speedups = [
                    results[budget][style][t.name].ipc / baseline[t.name].ipc
                    for t in traces
                    if selector(t.name) and baseline[t.name].ipc > 0
                ]
                series.append(geometric_mean(speedups))
            curves[group][style_label(style)] = series
    return {
        "experiment": "fig11_sweep",
        "scale": scale.name,
        "budgets_kib": list(budgets_kib),
        "curves": curves,
    }


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of the Figure 11 reproduction."""
    budgets = result["budgets_kib"]
    lines = ["Figure 11: performance vs storage budget (normalized to 0.9 KB Conv-BTB)", ""]
    header = "  group   organization  " + " ".join(f"{b:>7.2f}K" for b in budgets)
    lines.append(header)
    for group in ("server", "client"):
        for style, series in result["curves"][group].items():
            lines.append(
                f"  {group:<7} {style:<13} " + " ".join(f"{value:8.3f}" for value in series)
            )
    return "\n".join(lines)

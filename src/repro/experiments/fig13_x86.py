"""Figure 13 / Section VI-G: x86 offset distribution and BTB-X way sizing.

x86 instructions are variable-length, so offsets are byte-granular and need
one or two more bits than Arm64 for the same branch coverage.  The paper
resizes the BTB-X ways for x86 (0, 5, 6, 7, 9, 12, 20, 27 bits), which shrinks
its storage advantage slightly: 2.18x over Conv-BTB (2.24x on Arm64) and
1.21-1.31x over PDede.
"""

from __future__ import annotations

from typing import Dict

from repro.common.config import ISAStyle
from repro.analysis.offset_analysis import combined_distribution
from repro.btb.btbx import BTBX_WAY_OFFSET_BITS_X86
from repro.btb.storage import BTBStorageModel
from repro.experiments.config import ExperimentScale, QUICK_SCALE
from repro.experiments.runner import evaluation_traces


def run(scale: ExperimentScale = QUICK_SCALE) -> Dict[str, object]:
    """Compare Arm64 vs x86 offset CDFs and the resulting capacity ratios."""
    arm_traces = evaluation_traces(scale, suites=("ipc1_server",))
    x86_traces = evaluation_traces(scale, suites=("x86_server",))
    arm = combined_distribution(arm_traces, name="arm64_servers")
    x86 = combined_distribution(x86_traces, name="x86_servers")

    arm_model = BTBStorageModel(ISAStyle.ARM64)
    x86_model = BTBStorageModel(ISAStyle.X86)
    arm_rows = arm_model.capacity_table()
    x86_rows = x86_model.capacity_table()

    points = (4, 6, 8, 10, 12, 20, 25, 27)
    return {
        "experiment": "fig13_x86",
        "scale": scale.name,
        "bits": list(points),
        "arm64_cdf": [arm.fraction_covered(b) for b in points],
        "x86_cdf": [x86.fraction_covered(b) for b in points],
        "x86_way_sizing_paper": list(BTBX_WAY_OFFSET_BITS_X86),
        "x86_way_sizing_measured": x86.way_sizing(8),
        "x86_set_bits": x86_model.btbx_set_bits(),
        "arm64_set_bits": arm_model.btbx_set_bits(),
        "capacity_ratio_vs_conventional": {
            "arm64": arm_rows[0].btbx_over_conventional,
            "x86": x86_rows[0].btbx_over_conventional,
        },
        "capacity_ratio_vs_pdede": {
            "arm64": (arm_rows[0].btbx_over_pdede, arm_rows[-1].btbx_over_pdede),
            "x86": (x86_rows[0].btbx_over_pdede, x86_rows[-1].btbx_over_pdede),
        },
        "paper": {
            "x86_over_conventional": 2.18,
            "arm64_over_conventional": 2.24,
            "x86_over_pdede": (1.21, 1.31),
            "arm64_over_pdede": (1.24, 1.34),
        },
    }


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of the Figure 13 / Section VI-G reproduction."""
    lines = [
        "Figure 13: x86 vs Arm64 offset distribution and BTB-X sizing",
        "",
        "  bits  : " + " ".join(f"{b:>5d}" for b in result["bits"]),
        "  arm64 : " + " ".join(f"{v:5.2f}" for v in result["arm64_cdf"]),
        "  x86   : " + " ".join(f"{v:5.2f}" for v in result["x86_cdf"]),
        "",
        f"  x86 way sizing: paper {result['x86_way_sizing_paper']}, "
        f"measured-from-suite {result['x86_way_sizing_measured']}",
        f"  set bits: arm64 {result['arm64_set_bits']}, x86 {result['x86_set_bits']}",
        f"  capacity vs Conv-BTB: arm64 {result['capacity_ratio_vs_conventional']['arm64']:.2f}x, "
        f"x86 {result['capacity_ratio_vs_conventional']['x86']:.2f}x "
        f"(paper: {result['paper']['arm64_over_conventional']}, {result['paper']['x86_over_conventional']})",
    ]
    return "\n".join(lines)

"""Shared-footprint sweep: MPKI and duplication versus code-overlap fraction.

The paper's storage-effectiveness argument is about how much front-end state a
budget actually buys.  In a consolidated server, tenants that map the same
shared libraries make ASID tagging pay a measurable *duplication* cost: the
same branch (and, for the page-deduplicating organizations, the same target
page) lives once per address space.  This driver quantifies that cost instead
of assuming it away: it sweeps a scenario's
:attr:`~repro.scenarios.spec.ScenarioSpec.shared_fraction` from fully-private
to fully-shared footprints and reports, per BTB organization and ASID mode,

* the aggregate BTB MPKI and IPC (does sharing help or hurt performance?);
* the duplication counters of every structure -- ``distinct`` contents ever
  allocated versus ``tag_distinct`` ``(asid, content)`` pairs, whose gap is
  the capacity tagging spends on storing shared code once per tenant.  For
  PDede's Page-/Region-BTB and R-BTB's Page-BTB (now ASID-tagged themselves)
  this is exactly the deduplication the hardware loses to tagging;
* the partition maps of main and secondary structures under ``partitioned``.

Every (fraction x organization x ASID-mode) cell is an ordinary cacheable
:class:`~repro.experiments.engine.ScenarioJob` submitted in one pooled engine
pass, so the sweep parallelizes and memoizes like every other grid.  The
fraction-zero cell is the preset's historical, remap-free layout; note that
tenants replaying the same binary then overlap *incidentally* (every workload
image starts at the same base address), so duplication is monotone in the
overlap fraction over the remapped (``fraction > 0``) cells, where private
pages are genuinely disjoint.
"""

from __future__ import annotations

import csv
from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.common.config import ASIDMode, BTBStyle
from repro.common.errors import ConfigurationError
from repro.experiments.config import DEFAULT_BUDGET_KIB, ExperimentScale, QUICK_SCALE
from repro.experiments.engine import ExperimentEngine, ScenarioJob, get_active_engine
from repro.experiments.runner import style_label
from repro.scenarios.presets import get_scenario
from repro.scenarios.spec import ScenarioSpec

#: The preset swept by default: three instances of one service binary.
DEFAULT_PRESET = "shared_services"

#: Overlap fractions swept by default (0.0 is the historical remap-free cell).
DEFAULT_FRACTIONS: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Organizations swept by default: the baseline plus both page-deduplicating
#: organizations, whose secondary structures carry the duplication story.
SWEEP_STYLES: Tuple[BTBStyle, ...] = (
    BTBStyle.CONVENTIONAL,
    BTBStyle.PDEDE,
    BTBStyle.REDUCED,
)

#: All three context-switch policies: flush pays cold-start, tagged pays
#: duplication, partitioned pays duplication inside private slices.
SWEEP_ASID_MODES: Tuple[ASIDMode, ...] = (
    ASIDMode.FLUSH,
    ASIDMode.TAGGED,
    ASIDMode.PARTITIONED,
)


def shared_variant(spec: ScenarioSpec, fraction: float) -> ScenarioSpec:
    """``spec`` with its shared-code fraction replaced by ``fraction``.

    The preset's own fraction returns the preset unchanged, so that sweep
    cell is cache-identical to the plain scenario_study cell.
    """
    if (
        isinstance(fraction, bool)
        or not isinstance(fraction, (int, float))
        or not 0.0 <= fraction <= 1.0
    ):
        raise ConfigurationError(
            f"shared fraction must be a number within [0, 1], got {fraction!r}"
        )
    if float(fraction) == spec.shared_fraction:
        return spec
    return replace(spec, name=f"{spec.name}@s{fraction:g}", shared_fraction=float(fraction))


def _config_key(style: BTBStyle, mode: ASIDMode) -> str:
    return f"{style_label(style)}/{mode.value}"


def run(
    scale: ExperimentScale = QUICK_SCALE,
    budget_kib: float = DEFAULT_BUDGET_KIB,
    preset: str = DEFAULT_PRESET,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    styles: Sequence[BTBStyle] = SWEEP_STYLES,
    asid_modes: Sequence[ASIDMode] = SWEEP_ASID_MODES,
    engine: ExperimentEngine | None = None,
) -> Dict[str, object]:
    """Sweep the overlap fraction for one preset through a pooled engine pass.

    Returns ``{"axis": [...fractions...], "curves": {"<style>/<mode>": ...}}``
    where each curve carries aligned ``aggregate_mpki`` / ``aggregate_ipc`` /
    ``context_switches`` / ``partition_sets`` / ``secondary_partition_sets``
    lists, a ``duplication`` list (one per-structure counter dict per axis
    point) and ``per_tenant_mpki``.
    """
    engine = engine or get_active_engine()
    spec = get_scenario(preset)
    axis = list(dict.fromkeys(float(f) for f in fractions))
    # Duplicate styles/modes would append extra points onto one curve and
    # silently misalign it against the axis; dedupe like the fractions.
    styles = list(dict.fromkeys(styles))
    asid_modes = list(dict.fromkeys(asid_modes))

    cells: List[Tuple[float, BTBStyle, ASIDMode]] = []
    jobs: List[ScenarioJob] = []
    for fraction in axis:
        variant = shared_variant(spec, fraction)
        for style in styles:
            for mode in asid_modes:
                cells.append((fraction, style, mode))
                jobs.append(
                    ScenarioJob(
                        scenario=variant.name,
                        instructions=scale.instructions,
                        warmup_instructions=scale.warmup_instructions,
                        style=style,
                        asid_mode=mode,
                        fdip_enabled=True,
                        budget_kib=budget_kib,
                        spec=variant,
                    )
                )
    outcomes = engine.run_jobs(jobs)

    curves: Dict[str, Dict[str, List[object]]] = {}
    for (_fraction, style, mode), outcome in zip(cells, outcomes):
        scenario = outcome.scenario
        curve = curves.setdefault(
            _config_key(style, mode),
            {
                "aggregate_mpki": [],
                "aggregate_ipc": [],
                "context_switches": [],
                "partition_sets": [],
                "secondary_partition_sets": [],
                "duplication": [],
                "per_tenant_mpki": [],
            },
        )
        curve["aggregate_mpki"].append(scenario.aggregate.btb_mpki)
        curve["aggregate_ipc"].append(scenario.aggregate.ipc)
        curve["context_switches"].append(scenario.context_switches)
        curve["partition_sets"].append(scenario.partition_sets)
        curve["secondary_partition_sets"].append(scenario.secondary_partition_sets)
        curve["duplication"].append(scenario.duplication)
        curve["per_tenant_mpki"].append(
            {name: result.btb_mpki for name, result in scenario.per_tenant.items()}
        )
    return {
        "experiment": "shared_footprint",
        "scale": scale.name,
        "budget_kib": budget_kib,
        "instructions": scale.instructions,
        "preset": preset,
        "styles": [style_label(style) for style in styles],
        "asid_modes": [mode.value for mode in asid_modes],
        "axis": axis,
        "curves": curves,
    }


# -- output -------------------------------------------------------------------

#: Column order of the flat CSV form.  One ``(aggregate)`` row per curve
#: point, one row per tenant, and one ``dup:<structure>`` row per structure
#: with the duplication counters filled in.
CSV_FIELDS = (
    "preset",
    "shared_fraction",
    "style",
    "asid_mode",
    "record",
    "btb_mpki",
    "ipc",
    "context_switches",
    "distinct",
    "tag_distinct",
    "duplicated",
)


def csv_rows(result: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten a sweep result into plot-ready CSV rows (see ``CSV_FIELDS``)."""
    rows: List[Dict[str, object]] = []
    for config, curve in result["curves"].items():
        style, asid_mode = config.split("/", 1)
        for position, fraction in enumerate(result["axis"]):
            base = {
                "preset": result["preset"],
                "shared_fraction": fraction,
                "style": style,
                "asid_mode": asid_mode,
                "context_switches": curve["context_switches"][position],
            }
            rows.append(
                {
                    **base,
                    "record": "(aggregate)",
                    "btb_mpki": curve["aggregate_mpki"][position],
                    "ipc": curve["aggregate_ipc"][position],
                }
            )
            for tenant, mpki in curve["per_tenant_mpki"][position].items():
                rows.append({**base, "record": tenant, "btb_mpki": mpki})
            duplication = curve["duplication"][position] or {}
            for structure, counters in duplication.items():
                rows.append(
                    {
                        **base,
                        "record": f"dup:{structure}",
                        "distinct": counters["distinct"],
                        "tag_distinct": counters["tag_distinct"],
                        "duplicated": counters["duplicated"],
                    }
                )
    return rows


def write_csv(result: Dict[str, object], path: str) -> None:
    """Write the flattened sweep to ``path`` as CSV."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(CSV_FIELDS), restval="")
        writer.writeheader()
        writer.writerows(csv_rows(result))


def format_report(result: Dict[str, object]) -> str:
    """Text rendering: MPKI curves plus the page/main duplication gaps."""
    axis = result["axis"]
    lines = [
        f"Shared-footprint sweep of {result['preset']} at {result['budget_kib']} KB, "
        f"{result['instructions']} instructions per cell "
        f"(styles: {', '.join(result['styles'])}; "
        f"asid modes: {', '.join(result['asid_modes'])})",
        "",
        f"  overlap fraction: {', '.join(f'{value:g}' for value in axis)}",
        "",
        "  aggregate MPKI:",
    ]
    for config, curve in result["curves"].items():
        series = " ".join(f"{value:8.2f}" for value in curve["aggregate_mpki"])
        lines.append(f"    {config:<24} {series}")
    lines.append("")
    lines.append("  duplicated allocations (tag-distinct minus distinct):")
    for config, curve in result["curves"].items():
        structures: List[str] = []
        for structure in ("main", "page", "region", "companion"):
            if any(structure in (point or {}) for point in curve["duplication"]):
                structures.append(structure)
        for structure in structures:
            series = " ".join(
                f"{(point or {}).get(structure, {}).get('duplicated', 0):8d}"
                for point in curve["duplication"]
            )
            lines.append(f"    {config + ' ' + structure:<24} {series}")
    return "\n".join(lines)

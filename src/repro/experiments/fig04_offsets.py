"""Figure 4: distribution of branch target offsets in the IPC-1-like workloads.

Computes the cumulative fraction of dynamic branches (client + server, taken
and not-taken, with returns counted as 0-bit) covered by each stored-offset
width, plus the summary statistics the paper quotes in Section III
(54 % <= 6 bits, 22 % in 7-10 bits, 23 % in 11-25 bits, ~1 % above 25 bits).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.offset_analysis import combined_distribution, offset_distribution
from repro.experiments.config import ExperimentScale, QUICK_SCALE
from repro.experiments.runner import evaluation_traces


def run(scale: ExperimentScale = QUICK_SCALE) -> Dict[str, object]:
    """Compute the offset CDF over the client+server suites."""
    traces = evaluation_traces(scale, suites=("ipc1_client", "ipc1_server"))
    per_workload = [offset_distribution(trace) for trace in traces]
    combined = combined_distribution(traces, name="ipc1_avg")
    cdf = combined.cdf(46)
    bands = {
        "le_6_bits": combined.fraction_covered(6),
        "7_to_10_bits": combined.fraction_covered(10) - combined.fraction_covered(6),
        "11_to_25_bits": combined.fraction_covered(25) - combined.fraction_covered(10),
        "gt_25_bits": 1.0 - combined.fraction_covered(25),
    }
    return {
        "experiment": "fig04_offsets",
        "scale": scale.name,
        "cdf": cdf,
        "bands": bands,
        "paper_bands": {
            "le_6_bits": 0.54,
            "7_to_10_bits": 0.22,
            "11_to_25_bits": 0.23,
            "gt_25_bits": 0.01,
        },
        "per_workload": {
            dist.name: [round(dist.fraction_covered(b), 4) for b in (6, 10, 25)]
            for dist in per_workload
        },
        "total_branches": combined.total_branches,
    }


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of the Figure 4 reproduction."""
    cdf = result["cdf"]
    lines = [
        "Figure 4: branch target offset distribution (fraction of dynamic branches covered)",
        "",
        "  bits : " + " ".join(f"{b:>4d}" for b in range(0, 28, 2)),
        "  frac : " + " ".join(f"{cdf[b]:4.2f}" for b in range(0, 28, 2)),
        "",
        "  band            measured   paper",
    ]
    for band, value in result["bands"].items():
        paper = result["paper_bands"][band]
        lines.append(f"  {band:<14} {value:8.2%} {paper:8.2%}")
    return "\n".join(lines)

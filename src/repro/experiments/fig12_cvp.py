"""Figure 12: target offset distribution in the CVP-1-like server traces.

The paper cross-checks the IPC-1 offset distribution (Figure 4) against 750+
CVP-1 server traces and finds them nearly identical, confirming the
distribution is a property of how server software is written.  Here the same
comparison runs over the independently-seeded ``cvp1_server`` synthetic suite.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.offset_analysis import combined_distribution
from repro.experiments.config import ExperimentScale, QUICK_SCALE
from repro.experiments.runner import evaluation_traces


def run(scale: ExperimentScale = QUICK_SCALE) -> Dict[str, object]:
    """Compare the CVP-1-like offset CDF with the IPC-1-like one."""
    ipc_traces = evaluation_traces(scale, suites=("ipc1_client", "ipc1_server"))
    cvp_traces = evaluation_traces(scale, suites=("cvp1_server",))
    ipc = combined_distribution(ipc_traces, name="ipc1_avg")
    cvp = combined_distribution(cvp_traces, name="cvp1_avg")
    points = list(range(0, 47, 2))
    max_gap = max(abs(ipc.fraction_covered(b) - cvp.fraction_covered(b)) for b in range(0, 47))
    return {
        "experiment": "fig12_cvp",
        "scale": scale.name,
        "bits": points,
        "ipc1_cdf": [ipc.fraction_covered(b) for b in points],
        "cvp1_cdf": [cvp.fraction_covered(b) for b in points],
        "max_cdf_gap": max_gap,
    }


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of the Figure 12 reproduction."""
    lines = [
        "Figure 12: offset distribution, CVP-1-like vs IPC-1-like traces",
        "",
        "  bits : " + " ".join(f"{b:>4d}" for b in result["bits"][:14]),
        "  IPC-1: " + " ".join(f"{v:4.2f}" for v in result["ipc1_cdf"][:14]),
        "  CVP-1: " + " ".join(f"{v:4.2f}" for v in result["cvp1_cdf"][:14]),
        "",
        f"  maximum CDF gap between the suites: {result['max_cdf_gap']:.3f}",
    ]
    return "\n".join(lines)

"""Table I: BTB storage cost in Samsung Exynos processors.

This table is literature data (Grayson et al., ISCA 2020) that the paper
reproduces verbatim to motivate the storage problem; it involves no
simulation.  It is included so every table of the paper has a driver and so
the growth-rate claim ("nearly six fold over about eight years") can be
checked programmatically.
"""

from __future__ import annotations

from typing import Dict, List

#: (CPU generation, BTB storage in KB) as reported in Table I.
EXYNOS_BTB_STORAGE_KB: tuple[tuple[str, float], ...] = (
    ("M1/M2", 98.9),
    ("M3", 175.8),
    ("M4", 288.0),
    ("M5", 310.8),
    ("M6", 561.5),
)


def run(scale: object | None = None) -> Dict[str, object]:
    """Return the Table I rows plus the derived growth factor."""
    rows: List[Dict[str, object]] = [
        {"cpu": cpu, "btb_storage_kb": storage} for cpu, storage in EXYNOS_BTB_STORAGE_KB
    ]
    first = EXYNOS_BTB_STORAGE_KB[0][1]
    last = EXYNOS_BTB_STORAGE_KB[-1][1]
    return {
        "experiment": "table1_exynos",
        "rows": rows,
        "growth_factor_m1_to_m6": last / first,
    }


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of Table I."""
    lines = ["Table I: BTB storage cost in Samsung Exynos processors", ""]
    for row in result["rows"]:
        lines.append(f"  {row['cpu']:<6} {row['btb_storage_kb']:8.1f} KB")
    lines.append("")
    lines.append(f"  M1->M6 growth: {result['growth_factor_m1_to_m6']:.2f}x")
    return "\n".join(lines)

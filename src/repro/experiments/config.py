"""Experiment scaling knobs.

The paper simulates 43 traces for 100 M instructions each; a pure-Python model
cannot do that in interactive time, so every experiment driver accepts an
:class:`ExperimentScale` that controls trace length, warmup fraction and how
many workloads of each suite are simulated.  Three presets are provided:

* ``SMOKE_SCALE`` -- seconds; used by the unit/integration tests;
* ``QUICK_SCALE`` -- minutes; used by the benchmark harness (default);
* ``FULL_SCALE``  -- the full workload lists at the longest trace length this
  model supports; intended for unattended runs.

Set the environment variable ``REPRO_SCALE`` to ``smoke``, ``quick`` or
``full`` to choose the preset picked up by :func:`current_scale`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: The paper's headline storage budget (Sections VI-C/D/E use 14.5 KB).
DEFAULT_BUDGET_KIB = 14.5

#: The seven storage budgets of Table III / Figure 11, in KiB.
BUDGETS_KIB = (0.90625, 1.8125, 3.625, 7.25, 14.5, 29.0, 58.0)


@dataclass(frozen=True)
class ExperimentScale:
    """How much work an experiment driver performs."""

    name: str
    instructions: int
    warmup_fraction: float
    server_workloads: int | None
    client_workloads: int | None
    cvp_workloads: int | None = 6
    x86_workloads: int | None = None

    @property
    def warmup_instructions(self) -> int:
        """Warmup length implied by the trace length and warmup fraction."""
        return int(self.instructions * self.warmup_fraction)


SMOKE_SCALE = ExperimentScale(
    name="smoke",
    instructions=20_000,
    warmup_fraction=0.4,
    server_workloads=2,
    client_workloads=1,
    cvp_workloads=2,
    x86_workloads=2,
)

QUICK_SCALE = ExperimentScale(
    name="quick",
    instructions=160_000,
    warmup_fraction=0.5,
    server_workloads=6,
    client_workloads=3,
    cvp_workloads=4,
    x86_workloads=3,
)

FULL_SCALE = ExperimentScale(
    name="full",
    instructions=300_000,
    warmup_fraction=0.5,
    server_workloads=None,
    client_workloads=None,
    cvp_workloads=None,
    x86_workloads=None,
)

_PRESETS = {"smoke": SMOKE_SCALE, "quick": QUICK_SCALE, "full": FULL_SCALE}


def current_scale(default: ExperimentScale = QUICK_SCALE) -> ExperimentScale:
    """Return the preset selected by the ``REPRO_SCALE`` environment variable."""
    name = os.environ.get("REPRO_SCALE", "").strip().lower()
    return _PRESETS.get(name, default)

"""Tenant-count scaling study on generated consolidation scenarios.

Where :mod:`~repro.experiments.scenario_sweep` resizes the four-tenant
presets, this driver asks the consolidation question at server scale: what
happens to a BTB organization as tenant count grows 4 -> 1024 on one
machine?  Scenarios come from a seeded :class:`~repro.scenarios.generate.
ScenarioRecipe` -- every tenant count is the same recipe expanded at a
different size, so the workload population (and hence the trace set in
memory) is identical along the whole axis and the curves isolate tenant
count.

Per (tenant count x BTB ASID mode x cache ASID mode) cell the driver
reports aggregate MPKI/IPC, nearest-rank percentiles of per-tenant MPKI
(over the tenants actually scheduled at the cell's scale), and a
*partition-fallback* summary: which partition-candidate structures accepted
a per-tenant slice and which fell back to ASID-tagged sharing because they
have fewer sets than tenants (a 512-set BTB cannot give 1024 tenants a set
each).  The fallback occupancy -- fraction of candidates that fell back --
is the headline: it quantifies how much of the machine's capacity isolation
survives at each consolidation level.

Every cell is an ordinary cacheable :class:`~repro.experiments.engine.
ScenarioJob` with the generated spec pinned in the job, so pooled workers
never need a scenario registry and the whole grid memoizes like any other
experiment.
"""

from __future__ import annotations

import csv
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import ASIDMode, BTBStyle, ISAStyle
from repro.experiments.config import DEFAULT_BUDGET_KIB, ExperimentScale, QUICK_SCALE
from repro.experiments.engine import ExperimentEngine, ScenarioJob, get_active_engine
from repro.experiments.runner import style_label
from repro.scenarios.generate import ScenarioRecipe, generate_scenario

#: Tenant counts swept by default; 1024 is the headline consolidation point.
DEFAULT_TENANT_COUNTS: Tuple[int, ...] = (4, 16, 64, 256, 1024)

#: All three BTB context-switch policies.
SWEEP_ASID_MODES: Tuple[ASIDMode, ...] = (
    ASIDMode.FLUSH,
    ASIDMode.TAGGED,
    ASIDMode.PARTITIONED,
)

#: Cache hierarchy modes: legacy shared hierarchy and set-partitioned.
SWEEP_CACHE_MODES: Tuple[Optional[ASIDMode], ...] = (None, ASIDMode.PARTITIONED)

#: Default recipe seed; one seed = one population = one comparable axis.
DEFAULT_SEED = 2023

#: Default scheduling quantum.  Small enough that hundreds of tenants get a
#: turn within a smoke-scale instruction budget.
DEFAULT_QUANTUM = 256

#: Structures that take a per-tenant slice under ``ASIDMode.PARTITIONED``,
#: per organization (the denominators of the fallback occupancy).
BTB_PARTITION_CANDIDATES: Dict[BTBStyle, Tuple[str, ...]] = {
    BTBStyle.CONVENTIONAL: ("main",),
    BTBStyle.BTBX: ("main", "companion"),
    BTBStyle.REDUCED: ("main", "page"),
    BTBStyle.PDEDE: ("main", "page", "region"),
    BTBStyle.IDEAL: (),
}

#: Cache levels that take a per-tenant slice under a partitioned hierarchy.
CACHE_PARTITION_CANDIDATES: Tuple[str, ...] = ("l1i", "l1d", "l2", "llc")

#: Per-tenant MPKI percentiles reported per cell.
PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
)


def recipe_for(
    tenants: int,
    seed: int = DEFAULT_SEED,
    isa: ISAStyle = ISAStyle.ARM64,
    quantum_instructions: int = DEFAULT_QUANTUM,
    shared_fraction: float = 0.0,
) -> ScenarioRecipe:
    """The sweep's recipe at one tenant count.

    Only ``tenants`` (and the derived name) varies along the axis; the seed
    and every statistical knob stay fixed, so each size draws the identical
    workload population and the axis compares like with like.
    """
    return ScenarioRecipe(
        name=f"gen_tenants_{seed}_t{tenants}",
        tenants=tenants,
        seed=seed,
        isa=isa,
        quantum_instructions=quantum_instructions,
        shared_fraction=shared_fraction,
    )


def _nearest_rank(sorted_values: List[float], fraction: float) -> Optional[float]:
    if not sorted_values:
        return None
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[rank - 1]


def _fallback_summary(
    style: BTBStyle,
    asid_mode: ASIDMode,
    cache_mode: Optional[ASIDMode],
    scenario,
) -> Dict[str, object]:
    """Which partition candidates took a slice, which fell back to sharing."""
    candidates: List[str] = []
    partitioned: List[str] = []
    if asid_mode is ASIDMode.PARTITIONED:
        candidates += list(BTB_PARTITION_CANDIDATES[style])
        if scenario.partition_sets is not None:
            partitioned.append("main")
        partitioned += sorted(scenario.secondary_partition_sets or {})
    if cache_mode is ASIDMode.PARTITIONED:
        candidates += [f"cache.{level}" for level in CACHE_PARTITION_CANDIDATES]
        partitioned += [f"cache.{level}" for level in sorted(scenario.cache_partition_sets or {})]
    fallback = [name for name in candidates if name not in partitioned]
    return {
        "candidates": candidates,
        "partitioned": partitioned,
        "fallback": fallback,
        "fallback_occupancy": (len(fallback) / len(candidates)) if candidates else 0.0,
    }


def _config_key(asid_mode: ASIDMode, cache_mode: Optional[ASIDMode]) -> str:
    cache = "shared" if cache_mode is None else cache_mode.value
    return f"{asid_mode.value}/cache-{cache}"


def run(
    scale: ExperimentScale = QUICK_SCALE,
    budget_kib: float = DEFAULT_BUDGET_KIB,
    tenant_counts: Sequence[int] = DEFAULT_TENANT_COUNTS,
    asid_modes: Sequence[ASIDMode] = SWEEP_ASID_MODES,
    cache_modes: Sequence[Optional[ASIDMode]] = SWEEP_CACHE_MODES,
    style: BTBStyle = BTBStyle.BTBX,
    seed: int = DEFAULT_SEED,
    isa: ISAStyle = ISAStyle.ARM64,
    quantum_instructions: int = DEFAULT_QUANTUM,
    shared_fraction: float = 0.0,
    engine: ExperimentEngine | None = None,
) -> Dict[str, object]:
    """Sweep tenant count x ASID mode x cache mode on generated scenarios.

    Returns ``{"axis": [...tenant counts...], "curves": {"<mode>/cache-<mode>":
    {...aligned lists...}}}`` plus run metadata.  A curve carries
    ``aggregate_mpki`` / ``aggregate_ipc`` / ``context_switches``, the
    per-tenant MPKI percentiles (``mpki_p50``/``p90``/``p99``/``mpki_max``
    over scheduled tenants, with ``scheduled_tenants`` recording the
    denominator), and one ``partition`` fallback summary per point.
    """
    engine = engine or get_active_engine()
    tenant_counts = list(dict.fromkeys(tenant_counts))
    asid_modes = list(dict.fromkeys(asid_modes))
    cache_modes = list(dict.fromkeys(cache_modes))

    specs = {
        count: generate_scenario(
            recipe_for(
                count,
                seed=seed,
                isa=isa,
                quantum_instructions=quantum_instructions,
                shared_fraction=shared_fraction,
            )
        )
        for count in tenant_counts
    }
    cells: List[Tuple[int, ASIDMode, Optional[ASIDMode]]] = []
    jobs: List[ScenarioJob] = []
    for count in tenant_counts:
        for asid_mode in asid_modes:
            for cache_mode in cache_modes:
                cells.append((count, asid_mode, cache_mode))
                jobs.append(
                    ScenarioJob(
                        scenario=specs[count].name,
                        instructions=scale.instructions,
                        warmup_instructions=scale.warmup_instructions,
                        style=style,
                        asid_mode=asid_mode,
                        fdip_enabled=True,
                        budget_kib=budget_kib,
                        cache_asid_mode=cache_mode,
                        spec=specs[count],
                    )
                )
    outcomes = engine.run_jobs(jobs)

    curves: Dict[str, Dict[str, List[object]]] = {}
    for (count, asid_mode, cache_mode), outcome in zip(cells, outcomes):
        scenario = outcome.scenario
        curve = curves.setdefault(
            _config_key(asid_mode, cache_mode),
            {
                "aggregate_mpki": [],
                "aggregate_ipc": [],
                "context_switches": [],
                "scheduled_tenants": [],
                "mpki_p50": [],
                "mpki_p90": [],
                "mpki_p99": [],
                "mpki_max": [],
                "partition": [],
            },
        )
        per_tenant = sorted(
            result.btb_mpki for result in scenario.per_tenant.values()
        )
        curve["aggregate_mpki"].append(scenario.aggregate.btb_mpki)
        curve["aggregate_ipc"].append(scenario.aggregate.ipc)
        curve["context_switches"].append(scenario.context_switches)
        curve["scheduled_tenants"].append(len(per_tenant))
        for label, fraction in PERCENTILES:
            curve[f"mpki_{label}"].append(_nearest_rank(per_tenant, fraction))
        curve["mpki_max"].append(per_tenant[-1] if per_tenant else None)
        curve["partition"].append(_fallback_summary(style, asid_mode, cache_mode, scenario))
    return {
        "experiment": "tenant_scale",
        "scale": scale.name,
        "budget_kib": budget_kib,
        "instructions": scale.instructions,
        "style": style_label(style),
        "seed": seed,
        "isa": isa.value,
        "quantum_instructions": quantum_instructions,
        "shared_fraction": float(shared_fraction),
        "asid_modes": [mode.value for mode in asid_modes],
        "cache_modes": ["shared" if mode is None else mode.value for mode in cache_modes],
        "axis": tenant_counts,
        "scenarios": {count: specs[count].name for count in tenant_counts},
        "curves": curves,
    }


# -- output -------------------------------------------------------------------

#: Column order of the flat CSV form (one row per curve point).
CSV_FIELDS = (
    "tenant_count",
    "asid_mode",
    "cache_mode",
    "btb_mpki",
    "ipc",
    "context_switches",
    "scheduled_tenants",
    "mpki_p50",
    "mpki_p90",
    "mpki_p99",
    "mpki_max",
    "partitioned",
    "fallback",
    "fallback_occupancy",
)


def csv_rows(result: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten a tenant-scale result into plot-ready CSV rows."""
    rows: List[Dict[str, object]] = []
    for config, curve in result["curves"].items():
        asid_mode, cache = config.split("/cache-", 1)
        for position, count in enumerate(result["axis"]):
            partition = curve["partition"][position]
            rows.append(
                {
                    "tenant_count": count,
                    "asid_mode": asid_mode,
                    "cache_mode": cache,
                    "btb_mpki": curve["aggregate_mpki"][position],
                    "ipc": curve["aggregate_ipc"][position],
                    "context_switches": curve["context_switches"][position],
                    "scheduled_tenants": curve["scheduled_tenants"][position],
                    "mpki_p50": curve["mpki_p50"][position],
                    "mpki_p90": curve["mpki_p90"][position],
                    "mpki_p99": curve["mpki_p99"][position],
                    "mpki_max": curve["mpki_max"][position],
                    "partitioned": ";".join(partition["partitioned"]),
                    "fallback": ";".join(partition["fallback"]),
                    "fallback_occupancy": partition["fallback_occupancy"],
                }
            )
    return rows


def write_csv(result: Dict[str, object], path: str) -> None:
    """Write the flattened sweep to ``path`` as CSV."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(CSV_FIELDS))
        writer.writeheader()
        writer.writerows(csv_rows(result))


def format_report(result: Dict[str, object]) -> str:
    """Text rendering: one MPKI curve per configuration plus fallback notes."""
    axis = result["axis"]
    lines = [
        f"Tenant scaling on {result['style']} at {result['budget_kib']} KB, "
        f"{result['instructions']} instructions per cell "
        f"(seed {result['seed']}, quantum {result['quantum_instructions']}, "
        f"tenants: {', '.join(str(v) for v in axis)})",
    ]
    for config, curve in result["curves"].items():
        series = " ".join(f"{value:8.2f}" for value in curve["aggregate_mpki"])
        lines.append(f"  {config:<28} {series}")
        tails = " ".join(
            "   (n/a)" if value is None else f"{value:8.2f}" for value in curve["mpki_p99"]
        )
        lines.append(f"    {'p99 per-tenant':<26} {tails}")
        notes = []
        for position, count in enumerate(axis):
            partition = curve["partition"][position]
            if partition["fallback"]:
                notes.append(
                    f"t={count}: {', '.join(partition['fallback'])} shared "
                    f"({partition['fallback_occupancy']:.0%} of candidates)"
                )
        if notes:
            lines.append(f"    fallback: {'; '.join(notes)}")
    return "\n".join(lines)

"""Table V and the Section VI-E latency analysis: BTB energy and access delay.

Per-access read/write energies come from the calibrated SRAM model; total
energies multiply them by the access counts the simulator records while
running the server workloads at the 14.5 KB budget (wrong-path lookups are
included implicitly because every BPU lookup counts, hit or miss).
"""

from __future__ import annotations

from typing import Dict

from repro.energy.btb_energy import BTBEnergyModel
from repro.experiments.config import DEFAULT_BUDGET_KIB, ExperimentScale, QUICK_SCALE
from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import (
    EVALUATED_STYLES,
    evaluation_traces,
    simulate_full_grid,
    style_label,
)

#: Per-access numbers reported in Table V / Section VI-E for reference.
PAPER_PER_ACCESS = {
    "Conv-BTB": {"read_pj": 13.2, "write_pj": 25.2, "latency_ns": 0.36},
    "PDede": {"read_pj": 8.4, "write_pj": 12.5, "latency_ns": 0.47},
    "BTB-X": {"read_pj": 8.5, "write_pj": 11.4, "latency_ns": 0.33},
}


def run(
    scale: ExperimentScale = QUICK_SCALE,
    budget_kib: float = DEFAULT_BUDGET_KIB,
    engine: ExperimentEngine | None = None,
) -> Dict[str, object]:
    """Simulate the server workloads per organization and evaluate energy."""
    traces = evaluation_traces(scale, suites=("ipc1_server",))
    model = BTBEnergyModel(budget_kib)
    grid = simulate_full_grid(
        traces, EVALUATED_STYLES, (budget_kib,), (True,), scale, engine=engine
    )
    designs: Dict[str, Dict[str, object]] = {}
    for style in EVALUATED_STYLES:
        label = style_label(style)
        aggregated: Dict[str, float] = {}
        for trace in traces:
            outcome = grid[(budget_kib, True)][style][trace.name]
            for key, value in (outcome.access_counts or {}).items():
                aggregated[key] = aggregated.get(key, 0.0) + value
        # Average the access counts over the workloads, as Table V does.
        averaged = {key: value / max(len(traces), 1) for key, value in aggregated.items()}
        design_name = {"Conv-BTB": "conventional", "PDede": "pdede", "BTB-X": "btbx"}[label]
        report = model.design_energy(design_name, averaged)
        designs[label] = {
            "per_access": {
                structure: {
                    "read_pj": entry.read_energy_pj,
                    "write_pj": entry.write_energy_pj,
                    "latency_ns": entry.access_latency_ns,
                    "reads": entry.reads,
                    "writes": entry.writes,
                    "searches": entry.searches,
                    "total_uj": entry.total_energy_uj,
                }
                for structure, entry in report.structures.items()
            },
            "total_energy_uj": report.total_energy_uj,
            "lookup_latency_ns": report.lookup_latency_ns,
        }
    return {
        "experiment": "table5_energy",
        "scale": scale.name,
        "budget_kib": budget_kib,
        "designs": designs,
        "paper_per_access": PAPER_PER_ACCESS,
        "paper_total_uj": {"Conv-BTB": 2232.0, "PDede": 1058.0, "BTB-X": 999.0},
    }


def format_report(result: Dict[str, object]) -> str:
    """Text rendering of Table V."""
    lines = [
        f"Table V: BTB energy at {result['budget_kib']} KB (access counts averaged over server workloads)",
        "",
    ]
    for design, data in result["designs"].items():
        lines.append(f"  {design}: total {data['total_energy_uj']:.1f} uJ, "
                     f"lookup latency {data['lookup_latency_ns']:.2f} ns")
        for structure, entry in data["per_access"].items():
            lines.append(
                f"     {structure:<10} read {entry['read_pj']:5.1f} pJ x {entry['reads']:>10.0f}   "
                f"write {entry['write_pj']:5.1f} pJ x {entry['writes']:>8.0f}   -> {entry['total_uj']:.1f} uJ"
            )
    lines.append("")
    lines.append("  paper totals: " + ", ".join(f"{k}={v:.0f}uJ" for k, v in result["paper_total_uj"].items()))
    return "\n".join(lines)

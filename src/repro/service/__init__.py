"""Long-running sweep service: an asyncio job API over the experiment engine.

The package turns :class:`~repro.experiments.engine.ExperimentEngine` into a
multi-client service (ROADMAP item 2): clients submit grids of simulation
jobs over a newline-delimited JSON protocol (unix socket or localhost TCP),
share one warm :class:`~repro.traces.store.TraceStore` and one sharded
on-disk result cache, and are admission-controlled by a per-client
instruction budget (the CostGuard pattern).  In-flight jobs are deduplicated
by config hash, so N clients submitting M overlapping sweeps simulate every
distinct cell exactly once.

* :mod:`repro.service.protocol` -- the wire format and the job codec;
* :mod:`repro.service.budget`   -- per-client windowed instruction budgets;
* :mod:`repro.service.server`   -- the asyncio :class:`SweepService`;
* :mod:`repro.service.client`   -- the blocking :class:`ServiceClient`;
* :mod:`repro.service.loadtest` -- the N-clients x M-sweeps proof harness.
"""

from repro.service.budget import BudgetDecision, InstructionBudget
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import job_from_wire, job_to_wire
from repro.service.server import ServiceConfig, ServiceThread, SweepService

__all__ = [
    "BudgetDecision",
    "InstructionBudget",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceThread",
    "SweepService",
    "job_from_wire",
    "job_to_wire",
]

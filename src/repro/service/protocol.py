"""Wire format of the sweep service: newline-delimited JSON messages.

Every request and reply is one JSON object on one line (UTF-8, ``\\n``
terminated), so the protocol is trivially inspectable with ``nc``/``socat``
and needs no framing beyond ``readline``.  Requests carry an ``op`` field;
replies always carry ``ok`` (bool) and echo the ``op``.

Jobs travel as plain dicts produced by :func:`job_to_wire` and rebuilt by
:func:`job_from_wire`.  Scenario jobs embed the *resolved*
:class:`~repro.scenarios.spec.ScenarioSpec` (its canonical ``config_dict``
form), not just a preset name, so sweep variants that exist only in the
client process (quantum/tenant-count rewrites) survive the trip and hash to
exactly the same cache key on the server.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping

from repro.common.config import ASIDMode, BTBStyle
from repro.common.errors import ConfigurationError
from repro.experiments.engine import EngineJob, ScenarioJob, SimJob
from repro.scenarios.spec import ScenarioSpec, TenantSpec

#: Protocol revision; servers reject requests from a different major version.
PROTOCOL_VERSION = 1

#: Operations a server understands.
OPS = ("ping", "submit", "status", "result", "cancel", "stats", "shutdown")

#: Hard cap on one request line; a longer line is a protocol error, not an
#: out-of-memory event (a full-scale sweep grid serializes well under this).
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed message, unknown op, or unbuildable wire job."""


def encode(message: Mapping[str, object]) -> bytes:
    """Serialize one message as a single NDJSON line."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes | str) -> Dict[str, object]:
    """Parse one NDJSON line into a message dict."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"expected a JSON object, got {type(message).__name__}")
    return message


def error_reply(op: str, code: str, message: str, **extra: object) -> Dict[str, object]:
    """Build the standard failure reply shape."""
    reply: Dict[str, object] = {"ok": False, "op": op, "error": code, "message": message}
    reply.update(extra)
    return reply


# -- job codec ----------------------------------------------------------------


def job_to_wire(job: EngineJob) -> Dict[str, object]:
    """Serialize an engine job for transport (JSON-able, version-free)."""
    if isinstance(job, ScenarioJob):
        return {
            "kind": "scenario",
            "scenario": job.scenario,
            "instructions": job.instructions,
            "warmup_instructions": job.warmup_instructions,
            "style": job.style.value,
            "asid_mode": job.asid_mode.value,
            "fdip_enabled": job.fdip_enabled,
            "budget_kib": job.budget_kib,
            "cache_asid_mode": (
                None if job.cache_asid_mode is None else job.cache_asid_mode.value
            ),
            "spec": job.spec.config_dict(),
        }
    return {
        "kind": "sim",
        "workload": job.workload,
        "instructions": job.instructions,
        "warmup_instructions": job.warmup_instructions,
        "style": job.style.value,
        "fdip_enabled": job.fdip_enabled,
        "budget_kib": job.budget_kib,
        "btbx_entries": job.btbx_entries,
        "way_offset_bits": (
            None if job.way_offset_bits is None else list(job.way_offset_bits)
        ),
        "companion_divisor": job.companion_divisor,
    }


def spec_from_wire(payload: Mapping[str, object]) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from its canonical ``config_dict`` form."""
    try:
        tenants = tuple(
            TenantSpec(
                name=tenant["name"],
                workload=tenant["workload"],
                weight=int(tenant.get("weight", 1)),
            )
            for tenant in payload["tenants"]
        )
        return ScenarioSpec(
            name=payload["name"],
            tenants=tenants,
            quantum_instructions=int(payload["quantum_instructions"]),
            policy=payload.get("policy", "round_robin"),
            switch_semantics=payload.get("switch_semantics", "warm"),
            shared_fraction=float(payload.get("shared_fraction", 0.0)),
        )
    except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
        raise ProtocolError(f"bad scenario spec: {exc}") from None


def job_from_wire(payload: Mapping[str, object]) -> EngineJob:
    """Rebuild an engine job from its wire form (:func:`job_to_wire`)."""
    kind = payload.get("kind")
    try:
        if kind == "scenario":
            spec = spec_from_wire(payload["spec"])
            cache_mode = payload.get("cache_asid_mode")
            return ScenarioJob(
                scenario=payload.get("scenario", spec.name),
                instructions=int(payload["instructions"]),
                warmup_instructions=int(payload["warmup_instructions"]),
                style=BTBStyle(payload["style"]),
                asid_mode=ASIDMode(payload["asid_mode"]),
                fdip_enabled=bool(payload.get("fdip_enabled", True)),
                budget_kib=float(payload.get("budget_kib", 14.5)),
                cache_asid_mode=None if cache_mode is None else ASIDMode(cache_mode),
                spec=spec,
            )
        if kind == "sim":
            way_bits = payload.get("way_offset_bits")
            return SimJob(
                workload=payload["workload"],
                instructions=int(payload["instructions"]),
                warmup_instructions=int(payload["warmup_instructions"]),
                style=BTBStyle(payload["style"]),
                fdip_enabled=bool(payload["fdip_enabled"]),
                budget_kib=payload.get("budget_kib"),
                btbx_entries=payload.get("btbx_entries"),
                way_offset_bits=None if way_bits is None else tuple(way_bits),
                companion_divisor=int(payload.get("companion_divisor", 64)),
            )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
        raise ProtocolError(f"bad {kind!r} job: {exc}") from None
    raise ProtocolError(f"unknown job kind {kind!r} (expected 'sim' or 'scenario')")


def jobs_from_wire(payloads: object) -> List[EngineJob]:
    """Rebuild a submitted grid; the request's ``jobs`` must be a list."""
    if not isinstance(payloads, list) or not payloads:
        raise ProtocolError("submit needs a non-empty 'jobs' list")
    return [job_from_wire(payload) for payload in payloads]

"""Per-client admission control: windowed instruction budgets.

The service's unit of cost is the *simulated instruction* — it is what wall
time is proportional to and what the engine already counts
(``instructions_simulated``).  Each client gets a rolling window budget;
submitting a grid whose un-cached cells would exceed the remaining budget is
rejected **before** any simulation runs, with a concrete suggestion of the
largest scale preset that would still fit (the CostGuard pattern: reject
early, suggest a cheaper shape, never burn compute to discover a refusal).

Charges are recorded per accepted grid at admission time and expire as the
window slides, so a client that waits recovers its budget without any
server-side reset.  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.experiments.config import ExperimentScale, FULL_SCALE, QUICK_SCALE, SMOKE_SCALE

#: Default budget: enough for several full-scale smoke sweeps per window but
#: small enough that an unthrottled full-scale grid spree trips it.
DEFAULT_BUDGET_INSTRUCTIONS = 50_000_000

#: Default window length (seconds) over which charges expire.
DEFAULT_WINDOW_SECONDS = 3600.0

#: Scales offered by the rejection suggestion, cheapest last.
_SUGGESTION_SCALES: Tuple[ExperimentScale, ...] = (FULL_SCALE, QUICK_SCALE, SMOKE_SCALE)


@dataclass(frozen=True)
class BudgetDecision:
    """Outcome of one admission check (JSON-able via :meth:`as_dict`)."""

    allowed: bool
    client: str
    estimated_instructions: int
    used_instructions: int
    remaining_instructions: int
    budget_instructions: int
    window_seconds: float
    #: When rejected: the largest scale whose per-cell cost would fit the
    #: same grid into the remaining budget, or None when not even the
    #: cheapest scale fits (then ``max_cells`` says how many smoke cells do).
    suggestion: Dict[str, object] | None = None
    message: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "allowed": self.allowed,
            "client": self.client,
            "estimated_instructions": self.estimated_instructions,
            "used_instructions": self.used_instructions,
            "remaining_instructions": self.remaining_instructions,
            "budget_instructions": self.budget_instructions,
            "window_seconds": self.window_seconds,
            "suggestion": self.suggestion,
            "message": self.message,
        }


def suggest_scale(cells: int, remaining: int) -> Dict[str, object] | None:
    """The largest preset scale at which ``cells`` cells fit in ``remaining``.

    Returns ``{"scale", "cell_instructions", "estimated_instructions"}`` for
    the suggestion, or ``{"scale": None, "max_cells": n}`` when even smoke
    scale cannot fit the whole grid (n smoke cells would fit).
    """
    if cells < 1:
        return None
    for scale in sorted(_SUGGESTION_SCALES, key=lambda s: -s.instructions):
        cost = cells * scale.instructions
        if cost <= remaining:
            return {
                "scale": scale.name,
                "cell_instructions": scale.instructions,
                "estimated_instructions": cost,
            }
    return {
        "scale": None,
        "max_cells": remaining // SMOKE_SCALE.instructions,
        "cell_instructions": SMOKE_SCALE.instructions,
    }


@dataclass
class InstructionBudget:
    """Sliding-window instruction accounting for many clients.

    Not thread-safe by itself; the service mutates it only from the event
    loop thread.  ``clock`` is injectable so tests can advance time manually.
    """

    budget_instructions: int = DEFAULT_BUDGET_INSTRUCTIONS
    window_seconds: float = DEFAULT_WINDOW_SECONDS
    clock: Callable[[], float] = time.monotonic
    _grants: Dict[str, List[Tuple[float, int]]] = field(default_factory=dict)

    def _used(self, client: str, now: float) -> int:
        """Un-expired charges of ``client``; prunes expired grants in place."""
        grants = self._grants.get(client, [])
        cutoff = now - self.window_seconds
        live = [(ts, cost) for ts, cost in grants if ts > cutoff]
        if live:
            self._grants[client] = live
        else:
            self._grants.pop(client, None)
        return sum(cost for _, cost in live)

    def check(self, client: str, estimated_instructions: int, cells: int = 0) -> BudgetDecision:
        """Admission-check a grid costing ``estimated_instructions``.

        ``cells`` (the number of not-yet-cached cells behind the estimate)
        shapes the rejection suggestion; pass 0 to skip the suggestion.
        """
        now = self.clock()
        used = self._used(client, now)
        remaining = max(0, self.budget_instructions - used)
        if estimated_instructions <= remaining:
            return BudgetDecision(
                allowed=True,
                client=client,
                estimated_instructions=estimated_instructions,
                used_instructions=used,
                remaining_instructions=remaining - estimated_instructions,
                budget_instructions=self.budget_instructions,
                window_seconds=self.window_seconds,
            )
        suggestion = suggest_scale(cells, remaining)
        if suggestion and suggestion.get("scale"):
            hint = (
                f"resubmit at scale '{suggestion['scale']}' "
                f"({cells} cells x {suggestion['cell_instructions']:,} = "
                f"{suggestion['estimated_instructions']:,} instructions)"
            )
        elif suggestion:
            hint = (
                f"at most {suggestion['max_cells']} smoke-scale cells fit; "
                "shrink the grid or wait for the window to reset"
            )
        else:
            hint = "wait for the window to reset"
        return BudgetDecision(
            allowed=False,
            client=client,
            estimated_instructions=estimated_instructions,
            used_instructions=used,
            remaining_instructions=remaining,
            budget_instructions=self.budget_instructions,
            window_seconds=self.window_seconds,
            suggestion=suggestion,
            message=(
                f"grid needs {estimated_instructions:,} instructions but only "
                f"{remaining:,} of {self.budget_instructions:,} remain in this "
                f"{self.window_seconds:.0f}s window; {hint}"
            ),
        )

    def charge(self, client: str, instructions: int) -> None:
        """Record an accepted grid's cost against ``client``'s window."""
        if instructions <= 0:
            return
        self._grants.setdefault(client, []).append((self.clock(), instructions))

    def usage(self) -> Dict[str, int]:
        """Live per-client usage snapshot (for the ``stats`` op)."""
        now = self.clock()
        return {client: self._used(client, now) for client in list(self._grants)}

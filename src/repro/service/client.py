"""Blocking client for the sweep service.

:class:`ServiceClient` speaks the NDJSON protocol over a unix socket or TCP
on a single persistent connection; every method is one request/one reply.
Thread-safe per *instance* is explicitly not a goal — the loadtest gives
each thread its own client, which is also the pattern real callers want
(connections are cheap, the service multiplexes them).
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.engine import EngineJob
from repro.service import protocol

Address = Union[str, Tuple[str, int], Sequence[object]]

#: Socket-level timeout (seconds) used when a call does not pass its own.
DEFAULT_TIMEOUT = 600.0


class ServiceError(RuntimeError):
    """A reply with ``ok: false`` (or a broken connection).

    Carries the whole reply dict so callers can inspect the error code and —
    for ``over_budget`` rejections — the budget decision and its suggestion.
    """

    def __init__(self, reply: Dict[str, object]):
        super().__init__(str(reply.get("message") or reply.get("error") or reply))
        self.reply = reply

    @property
    def code(self) -> Optional[str]:
        return self.reply.get("error")


class ServiceClient:
    """One connection to a :class:`~repro.service.server.SweepService`.

    ``address`` is a unix-socket path (str) or a ``(host, port)`` pair.
    Usable as a context manager; ``client`` names this caller for budget
    accounting (defaults to a pid-derived name on connect).
    """

    def __init__(
        self,
        address: Address,
        client: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        if client is None:
            import os

            client = f"pid{os.getpid()}"
        self.client = client

    # -- connection plumbing -------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.address)
        else:
            host, port = self.address
            sock = socket.create_connection((host, int(port)), timeout=self.timeout)
        self._sock = sock
        self._file = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            finally:
                self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def _call(self, request: Dict[str, object], timeout: Optional[float] = None) -> Dict[str, object]:
        self.connect()
        request.setdefault("v", protocol.PROTOCOL_VERSION)
        request.setdefault("client", self.client)
        self._sock.settimeout(timeout if timeout is not None else self.timeout)
        self._sock.sendall(protocol.encode(request))
        line = self._file.readline()
        if not line:
            self.close()
            raise ServiceError({"error": "disconnected",
                                "message": "service closed the connection"})
        reply = protocol.decode(line)
        if not reply.get("ok"):
            raise ServiceError(reply)
        return reply

    # -- operations ----------------------------------------------------------

    def ping(self) -> Dict[str, object]:
        return self._call({"op": "ping"})

    def submit(self, jobs: Sequence[EngineJob]) -> Dict[str, object]:
        """Submit a grid of engine jobs; returns the submit reply.

        Raises :class:`ServiceError` with ``code == "over_budget"`` (and the
        budget decision in ``.reply["budget"]``) when admission rejects it.
        """
        wire = [protocol.job_to_wire(job) for job in jobs]
        return self._call({"op": "submit", "jobs": wire})

    def status(self, job_id: str) -> Dict[str, object]:
        return self._call({"op": "status", "job_id": job_id})

    def result(self, job_id: str, timeout: float = DEFAULT_TIMEOUT) -> Dict[str, object]:
        """Block until ``job_id`` finishes and return its payload dict."""
        reply = self._call(
            {"op": "result", "job_id": job_id, "timeout": timeout},
            # The socket must outlive the server-side wait.
            timeout=timeout + 30.0,
        )
        return reply["payload"]

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._call({"op": "cancel", "job_id": job_id})

    def stats(self) -> Dict[str, object]:
        return self._call({"op": "stats"})

    def shutdown(self) -> Dict[str, object]:
        return self._call({"op": "shutdown"})

    # -- conveniences --------------------------------------------------------

    def run_jobs(self, jobs: Sequence[EngineJob]) -> List[Dict[str, object]]:
        """Submit ``jobs`` and wait for every payload, in submission order.

        The service-side analogue of ``ExperimentEngine.run_jobs`` returning
        raw payload dicts (callers rehydrate with the engine's helpers).
        """
        reply = self.submit(jobs)
        return [self.result(descr["job_id"]) for descr in reply["jobs"]]

"""Load-test harness: N clients x M overlapping sweeps, exactly once.

The proof the sweep service exists to give: many clients concurrently
submitting heavily-overlapping grids cause each *distinct* cell to be
simulated exactly once, every client still gets byte-identical payloads, and
an over-budget grid is rejected up front with a usable suggestion.

:func:`run_load_test` drives a running service (any address) and returns a
report dict; it raises :class:`LoadTestFailure` when an invariant breaks, so
both CI and the tests can treat a zero exit / clean return as the proof.
Run standalone with ``python -m repro.service.loadtest`` (spawns an
in-process service when no address is given).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from typing import Dict, List, Optional

from repro.common.config import ASIDMode, BTBStyle
from repro.experiments.engine import EngineJob, ScenarioJob
from repro.scenarios.presets import PRESET_NAMES
from repro.service.client import Address, ServiceClient, ServiceError

#: Smoke-sized cells keep the whole load test in seconds.
LOADTEST_INSTRUCTIONS = 4_000
LOADTEST_WARMUP = 1_000

#: Budgets that distinguish the per-sweep extra cells (Table III points).
_EXTRA_BUDGETS_KIB = (29.0, 7.25, 3.625, 58.0)


class LoadTestFailure(AssertionError):
    """An exactly-once / byte-identity / admission invariant was violated."""


def build_sweep(
    sweep: int,
    instructions: int = LOADTEST_INSTRUCTIONS,
    warmup: int = LOADTEST_WARMUP,
) -> List[EngineJob]:
    """One sweep grid; all sweeps share a common core so they overlap.

    The core (every preset x {Conv-BTB, BTB-X} x {flush, tagged} at the
    headline budget) is identical across sweeps — that is the overlap the
    dedup must absorb.  Each sweep adds one sweep-specific budget cell so the
    grids are overlapping but not identical.
    """
    core: List[EngineJob] = [
        ScenarioJob(
            scenario=preset,
            instructions=instructions,
            warmup_instructions=warmup,
            style=style,
            asid_mode=mode,
        )
        for preset in PRESET_NAMES
        for style in (BTBStyle.CONVENTIONAL, BTBStyle.BTBX)
        for mode in (ASIDMode.FLUSH, ASIDMode.TAGGED)
    ]
    extra_budget = _EXTRA_BUDGETS_KIB[sweep % len(_EXTRA_BUDGETS_KIB)]
    core.append(
        ScenarioJob(
            scenario=PRESET_NAMES[0],
            instructions=instructions,
            warmup_instructions=warmup,
            style=BTBStyle.BTBX,
            asid_mode=ASIDMode.TAGGED,
            budget_kib=extra_budget,
        )
    )
    return core


def _client_worker(
    address: Address,
    name: str,
    sweeps: int,
    instructions: int,
    warmup: int,
    timeout: float,
    out: Dict[str, object],
) -> None:
    """One client thread: submit every sweep, then collect every payload."""
    payloads: Dict[str, str] = {}
    sources: List[Dict[str, object]] = []
    try:
        with ServiceClient(address, client=name) as client:
            descriptors = []
            for sweep in range(sweeps):
                reply = client.submit(build_sweep(sweep, instructions, warmup))
                descriptors.extend(reply["jobs"])
            for descr in descriptors:
                payload = client.result(descr["job_id"], timeout=timeout)
                status = client.status(descr["job_id"])
                sources.append(status)
                payloads[descr["config_hash"]] = json.dumps(payload, sort_keys=True)
    except Exception as exc:  # surfaced by the coordinator
        out["error"] = f"{type(exc).__name__}: {exc}"
        return
    out["payloads"] = payloads
    out["sources"] = sources


def _probe_over_budget(address: Address, budget_instructions: int) -> Dict[str, object]:
    """Submit a grid that cannot fit the window; it must bounce, with advice."""
    monster = ScenarioJob(
        scenario=PRESET_NAMES[0],
        instructions=budget_instructions + 1,
        warmup_instructions=0,
        style=BTBStyle.BTBX,
        asid_mode=ASIDMode.FLUSH,
    )
    with ServiceClient(address, client="loadtest-greedy") as client:
        try:
            client.submit([monster])
        except ServiceError as exc:
            if exc.code != "over_budget":
                raise LoadTestFailure(
                    f"over-budget probe bounced with {exc.code!r}, not 'over_budget'"
                )
            budget = exc.reply.get("budget") or {}
            if not budget.get("suggestion"):
                raise LoadTestFailure(
                    "over-budget rejection carried no scale suggestion"
                )
            return budget
    raise LoadTestFailure(
        "over-budget probe was admitted; admission control is not working"
    )


def run_load_test(
    address: Address,
    clients: int = 2,
    sweeps: int = 2,
    instructions: int = LOADTEST_INSTRUCTIONS,
    warmup: int = LOADTEST_WARMUP,
    timeout: float = 600.0,
) -> Dict[str, object]:
    """Drive the service at ``address`` and verify its core invariants.

    Returns a report dict on success; raises :class:`LoadTestFailure` when
    any invariant breaks (duplicate execution, payload divergence, admission
    failure) and :class:`ServiceError` when the service itself misbehaves.
    """
    if clients < 2 or sweeps < 2:
        raise ValueError("the proof needs at least 2 clients and 2 sweeps")
    with ServiceClient(address, client="loadtest-coordinator") as coordinator:
        before = coordinator.stats()

        results: List[Dict[str, object]] = [{} for _ in range(clients)]
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(address, f"loadtest-{i}", sweeps, instructions, warmup,
                      timeout, results[i]),
                daemon=True,
            )
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout)
        errors = [out["error"] for out in results if "error" in out]
        if errors:
            raise LoadTestFailure(f"client thread(s) failed: {errors}")
        if any("payloads" not in out for out in results):
            raise LoadTestFailure("client thread(s) timed out")

        # Invariant 1: byte-identical payloads across clients, per cell.
        merged: Dict[str, str] = {}
        mismatches = []
        for out in results:
            for config_hash, blob in out["payloads"].items():
                if merged.setdefault(config_hash, blob) != blob:
                    mismatches.append(config_hash)
        if mismatches:
            raise LoadTestFailure(
                f"payloads diverged across clients for cells {sorted(set(mismatches))}"
            )

        # Invariant 2: each distinct cell executed exactly once.  Every job
        # record reports its source; a cell may appear as 'executed' at most
        # once across all clients and sweeps, and the engine's executed
        # counter must have advanced by exactly the number of such cells.
        executed_per_cell: Dict[str, int] = {}
        for out in results:
            for status in out["sources"]:
                if status.get("source") == "executed":
                    h = status["config_hash"]
                    executed_per_cell[h] = executed_per_cell.get(h, 0) + 1
        duplicated = sorted(h for h, n in executed_per_cell.items() if n > 1)
        if duplicated:
            raise LoadTestFailure(f"cells executed more than once: {duplicated}")
        after = coordinator.stats()
        executed_delta = after["engine"]["executed"] - before["engine"]["executed"]
        if executed_delta != len(executed_per_cell):
            raise LoadTestFailure(
                f"engine executed {executed_delta} cells but clients saw "
                f"{len(executed_per_cell)} distinct executions"
            )
        unique_cells = len(merged)
        if executed_delta > unique_cells:
            raise LoadTestFailure(
                f"executed {executed_delta} cells for only {unique_cells} distinct submissions"
            )

        # Invariant 3: an over-budget grid bounces with a usable suggestion.
        rejection = _probe_over_budget(
            address, after["budget"]["budget_instructions"]
        )
        after = coordinator.stats()

    return {
        "clients": clients,
        "sweeps": sweeps,
        "unique_cells": unique_cells,
        "executed": executed_delta,
        "dedup_hits": after["service"]["dedup_hits"],
        "rejected": after["service"]["rejected"],
        "duplicates": 0,
        "payload_mismatches": 0,
        "over_budget_probe": rejection,
        "engine": after["engine"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Prove the sweep service's exactly-once and admission invariants."
    )
    parser.add_argument("--socket", help="unix socket path of a running service")
    parser.add_argument("--host", help="TCP host of a running service")
    parser.add_argument("--port", type=int, help="TCP port of a running service")
    parser.add_argument("--clients", type=int, default=2)
    parser.add_argument("--sweeps", type=int, default=2)
    parser.add_argument("--instructions", type=int, default=LOADTEST_INSTRUCTIONS)
    parser.add_argument("--warmup", type=int, default=LOADTEST_WARMUP)
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args(argv)

    spawned = None
    if args.socket:
        address: Address = args.socket
    elif args.host or args.port:
        address = (args.host or "127.0.0.1", args.port or 0)
    else:
        # No address: spawn a throwaway in-process service to test against.
        import tempfile

        from repro.service.server import ServiceConfig, ServiceThread

        tmp = tempfile.mkdtemp(prefix="btbx-loadtest-")
        spawned = ServiceThread(ServiceConfig(
            socket_path=f"{tmp}/service.sock", cache_dir=f"{tmp}/cache"
        ))
        address = spawned.start()
    try:
        report = run_load_test(
            address,
            clients=args.clients,
            sweeps=args.sweeps,
            instructions=args.instructions,
            warmup=args.warmup,
            timeout=args.timeout,
        )
    except (LoadTestFailure, ServiceError) as exc:
        print(f"LOADTEST FAILED: {exc}", file=sys.stderr)
        return 1
    finally:
        if spawned is not None:
            spawned.stop()
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

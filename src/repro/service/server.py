"""The asyncio sweep service: many clients, one engine, exactly-once cells.

:class:`SweepService` wraps one :class:`~repro.experiments.engine.ExperimentEngine`
(one warm trace store, one in-memory memo, one sharded disk cache) behind the
NDJSON protocol of :mod:`repro.service.protocol`.  All bookkeeping — job
records, the in-flight table, budget accounting — lives on the event-loop
thread, so there are no locks; simulations run on a shared
``ProcessPoolExecutor`` via :func:`_service_worker`.

Exactly-once semantics by config hash:

* a submitted cell already in the memo or disk cache resolves instantly
  (engine counters record the memo/disk hit);
* a cell another client is *currently* simulating attaches to the same
  in-flight entry (``service.dedup_hits``) instead of re-running;
* only true misses are scheduled on the pool, and their results flow back
  through :meth:`ExperimentEngine.record_executed`, so the engine's
  ``executed`` counter equals the number of distinct cells simulated no
  matter how many clients raced.

Admission control happens before anything is scheduled: the un-cached,
un-inflight remainder of a grid is priced in instructions against the
client's :class:`~repro.service.budget.InstructionBudget`; over-budget grids
are rejected with a scale suggestion and no simulation runs.

A janitor task periodically prunes the disk cache (age-bounded) in a thread
so the loop never blocks on directory walks.  Telemetry: connections emit
``service.accept`` spans, submissions ``service.submit``, result waits
``service.wait``, janitor sweeps ``service.janitor``; pool workers ship
their spans back exactly like the engine's own pool path.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Set

from repro.common.config import BACKEND_ENV_VAR, resolve_backend
from repro.common.errors import ConfigurationError
from repro.experiments.engine import EngineJob, ExperimentEngine, _worker_execute
from repro.obs import get_recorder
from repro.service import protocol
from repro.service.budget import (
    DEFAULT_BUDGET_INSTRUCTIONS,
    DEFAULT_WINDOW_SECONDS,
    InstructionBudget,
)

#: How long a ``result`` op waits for an in-flight cell by default.
DEFAULT_RESULT_TIMEOUT = 600.0


def _service_worker(
    job: EngineJob, backend: Optional[str], record: bool
) -> tuple:
    """Pool entry point: run one cell with the backend threaded explicitly.

    The service never relies on ambient ``REPRO_BACKEND`` mutations in the
    parent (the bug class this PR removes from the CLI): the chosen backend
    rides along as an argument and is scoped to the job inside the worker
    process, restored even on failure.
    """
    if backend is None:
        return _worker_execute(job, record)
    previous = os.environ.get(BACKEND_ENV_VAR)
    os.environ[BACKEND_ENV_VAR] = backend
    try:
        return _worker_execute(job, record)
    finally:
        if previous is None:
            os.environ.pop(BACKEND_ENV_VAR, None)
        else:
            os.environ[BACKEND_ENV_VAR] = previous


@dataclass
class ServiceConfig:
    """Everything a :class:`SweepService` needs to listen and execute."""

    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    cache_dir: Optional[str] = None
    backend: Optional[str] = None
    budget_instructions: int = DEFAULT_BUDGET_INSTRUCTIONS
    budget_window_seconds: float = DEFAULT_WINDOW_SECONDS
    janitor_interval_seconds: float = 300.0
    #: Entries older than this are pruned by the janitor; None keeps all.
    max_age_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("service needs at least one worker")
        if self.backend is not None:
            # Normalize (and validate) once, up front, like the CLI does.
            self.backend = resolve_backend(self.backend)


@dataclass
class JobRecord:
    """One submitted cell as one client sees it."""

    job_id: str
    client: str
    config_hash: str
    job: EngineJob
    state: str = "queued"  # queued | running | done | failed | cancelled
    source: Optional[str] = None  # executed | memo | disk | deduped
    payload: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    submitted_ts: float = field(default_factory=time.time)
    finished_ts: Optional[float] = None

    def describe(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "config_hash": self.config_hash,
            "state": self.state,
            "source": self.source,
            "error": self.error,
        }


class _Inflight:
    """One distinct cell being simulated right now, shared by its records."""

    __slots__ = ("future", "aio", "records")

    def __init__(self, future: asyncio.Future, aio: asyncio.Future):
        self.future = future  # resolves to the payload dict
        self.aio = aio  # the run_in_executor future (cancellation handle)
        self.records: List[JobRecord] = []


class SweepService:
    """The service state machine; construct, then :meth:`run` (or use
    :class:`ServiceThread`, which does both on a background thread)."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        engine: ExperimentEngine | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.engine = engine or ExperimentEngine(
            workers=self.config.workers, cache_dir=self.config.cache_dir
        )
        self.budget = InstructionBudget(
            budget_instructions=self.config.budget_instructions,
            window_seconds=self.config.budget_window_seconds,
        )
        self.address: Optional[object] = None  # socket path or (host, port)
        self.started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._stopping: Optional[asyncio.Event] = None
        self._janitor: Optional[asyncio.Task] = None
        self._jobs: Dict[str, JobRecord] = {}
        self._entries: Dict[str, _Inflight] = {}
        self._conn_tasks: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._job_seq = itertools.count(1)
        self._conn_seq = itertools.count(1)
        self._connections = 0
        self.service_counters: Dict[str, int] = {
            "requests": 0,
            "submissions": 0,
            "rejected": 0,
            "dedup_hits": 0,
            "cells_scheduled": 0,
            "janitor_runs": 0,
            "janitor_removed": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    async def run(self) -> None:
        """Listen, serve until :meth:`request_shutdown`, then tear down."""
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
        if self.config.socket_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket_path
            )
            self.address = self.config.socket_path
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.config.host, port=self.config.port
            )
            self.address = self._server.sockets[0].getsockname()[:2]
        if self.config.max_age_seconds is not None and self.engine.cache is not None:
            self._janitor = self._loop.create_task(self._janitor_loop())
        self.started.set()
        try:
            await self._stopping.wait()
        finally:
            if self._janitor is not None:
                self._janitor.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await self._janitor
            self._server.close()
            await self._server.wait_closed()
            # Close idle connections so their handler tasks end on EOF rather
            # than being cancelled mid-readline when the loop shuts down
            # (which 3.11's stream machinery logs as callback exceptions).
            for writer in list(self._writers):
                with contextlib.suppress(Exception):
                    writer.close()
            if self._conn_tasks:
                await asyncio.wait(list(self._conn_tasks), timeout=5.0)
            for entry in list(self._entries.values()):
                entry.aio.cancel()
            self._pool.shutdown(wait=True, cancel_futures=True)
            if self.config.socket_path:
                with contextlib.suppress(OSError):
                    os.unlink(self.config.socket_path)

    def request_shutdown(self) -> None:
        """Ask the service to stop; safe from any thread."""
        if self._loop is None or self._stopping is None:
            return
        self._loop.call_soon_threadsafe(self._stopping.set)

    async def _janitor_loop(self) -> None:
        """Periodically prune age-expired cache entries off the loop thread."""
        recorder = get_recorder()
        interval = self.config.janitor_interval_seconds
        while True:
            await asyncio.sleep(interval)
            ts = time.time()
            t0 = time.perf_counter()
            removed = await self._loop.run_in_executor(
                None, self.engine.cache.prune, self.config.max_age_seconds
            )
            self.service_counters["janitor_runs"] += 1
            self.service_counters["janitor_removed"] += removed
            recorder.count("service.janitor_runs")
            if emit := getattr(recorder, "emit_span", None):
                emit("service.janitor", ts=ts, dur=time.perf_counter() - t0,
                     removed=removed)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        recorder = get_recorder()
        conn = f"c{next(self._conn_seq)}"
        self._connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        ts = time.time()
        t0 = time.perf_counter()
        requests = 0
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if len(line) > protocol.MAX_LINE_BYTES:
                    writer.write(protocol.encode(protocol.error_reply(
                        "?", "protocol", "request line too long")))
                    await writer.drain()
                    break
                requests += 1
                self.service_counters["requests"] += 1
                recorder.count("service.requests")
                reply = await self._dispatch(line, conn)
                writer.write(protocol.encode(reply))
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
        finally:
            self._connections -= 1
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()
            if emit := getattr(recorder, "emit_span", None):
                emit("service.accept", ts=ts, dur=time.perf_counter() - t0,
                     conn=conn, requests=requests)

    async def _dispatch(self, line: bytes, conn: str) -> Dict[str, object]:
        try:
            request = protocol.decode(line)
        except protocol.ProtocolError as exc:
            return protocol.error_reply("?", "protocol", str(exc))
        op = request.get("op")
        version = request.get("v", protocol.PROTOCOL_VERSION)
        if version != protocol.PROTOCOL_VERSION:
            return protocol.error_reply(
                str(op), "version",
                f"protocol {version} unsupported (server speaks {protocol.PROTOCOL_VERSION})",
            )
        client = str(request.get("client") or conn)
        try:
            if op == "ping":
                return {
                    "ok": True, "op": "ping",
                    "version": protocol.PROTOCOL_VERSION, "pid": os.getpid(),
                }
            if op == "submit":
                return self._handle_submit(request, client)
            if op == "status":
                return self._handle_status(request)
            if op == "result":
                return await self._handle_result(request)
            if op == "cancel":
                return self._handle_cancel(request)
            if op == "stats":
                return self._handle_stats()
            if op == "shutdown":
                self._stopping.set()
                return {"ok": True, "op": "shutdown"}
        except protocol.ProtocolError as exc:
            return protocol.error_reply(str(op), "bad_request", str(exc))
        except Exception as exc:  # a bad request must not kill the connection
            return protocol.error_reply(
                str(op), "internal", f"{type(exc).__name__}: {exc}"
            )
        return protocol.error_reply(
            str(op), "unknown_op", f"unknown op {op!r} (expected one of {protocol.OPS})"
        )

    # -- submit / admission --------------------------------------------------

    def _handle_submit(self, request: Dict[str, object], client: str) -> Dict[str, object]:
        recorder = get_recorder()
        with recorder.span("service.submit", client=client):
            jobs = protocol.jobs_from_wire(request.get("jobs"))
            hashes = [job.config_hash() for job in jobs]

            # Classify each distinct cell before touching the budget: cached
            # and in-flight cells are free, only true misses cost budget.
            cached: Dict[str, Dict[str, object]] = {}
            new_cells: Dict[str, EngineJob] = {}
            for job, config_hash in zip(jobs, hashes):
                if (config_hash in cached or config_hash in new_cells
                        or config_hash in self._entries):
                    continue
                payload = self.engine.lookup(job, config_hash)
                if payload is not None:
                    cached[config_hash] = payload
                else:
                    new_cells[config_hash] = job
            estimate = sum(job.instructions for job in new_cells.values())
            decision = self.budget.check(client, estimate, cells=len(new_cells))
            if not decision.allowed:
                self.service_counters["rejected"] += 1
                recorder.count("service.rejected")
                return protocol.error_reply(
                    "submit", "over_budget", decision.message,
                    budget=decision.as_dict(),
                )
            self.budget.charge(client, estimate)

            self.service_counters["submissions"] += 1
            self.engine.counters.submitted += len(jobs)
            recorder.count("engine.submitted", len(jobs))
            recorder.count("service.submitted", len(jobs))

            # Schedule the misses, then attach a record per submitted job.
            for config_hash, job in new_cells.items():
                self._schedule_cell(config_hash, job)
            self.service_counters["cells_scheduled"] += len(new_cells)
            seen: Set[str] = set()
            records = []
            for job, config_hash in zip(jobs, hashes):
                record = JobRecord(
                    job_id=f"j{next(self._job_seq)}",
                    client=client,
                    config_hash=config_hash,
                    job=job,
                )
                if config_hash in cached:
                    record.state = "done"
                    record.source = "cached"  # engine counters say which kind
                    record.payload = cached[config_hash]
                    record.finished_ts = time.time()
                else:
                    entry = self._entries[config_hash]
                    entry.records.append(record)
                    record.state = "running"
                    if config_hash in new_cells and config_hash not in seen:
                        record.source = "executed"
                    else:
                        record.source = "deduped"
                        self.service_counters["dedup_hits"] += 1
                        recorder.count("service.dedup_hits")
                seen.add(config_hash)
                self._jobs[record.job_id] = record
                records.append(record)
            return {
                "ok": True,
                "op": "submit",
                "client": client,
                "jobs": [record.describe() for record in records],
                "budget": decision.as_dict(),
                "scheduled": len(new_cells),
            }

    def _schedule_cell(self, config_hash: str, job: EngineJob) -> None:
        recorder = get_recorder()
        record_telemetry = bool(recorder.enabled)
        aio = self._loop.run_in_executor(
            self._pool, _service_worker, job, self.config.backend, record_telemetry
        )
        entry = _Inflight(future=self._loop.create_future(), aio=aio)
        self._entries[config_hash] = entry
        self._loop.create_task(self._finish_cell(config_hash, job, entry, time.time()))

    async def _finish_cell(
        self, config_hash: str, job: EngineJob, entry: _Inflight, submit_ts: float
    ) -> None:
        recorder = get_recorder()
        try:
            _, payload, events = await entry.aio
        except asyncio.CancelledError:
            self._settle(entry, config_hash, state="cancelled", error="cancelled")
            if not entry.future.done():
                entry.future.cancel()
            return
        except Exception as exc:  # worker crashed or raised
            self._settle(entry, config_hash, state="failed", error=str(exc))
            if not entry.future.done():
                entry.future.set_exception(exc)
            return
        if events:
            recorder.merge(events, parent_id=None)
        self.engine.record_executed(job, payload)
        if emit := getattr(recorder, "emit_span", None):
            emit("service.execute", ts=submit_ts,
                 dur=time.time() - submit_ts, job=config_hash[:12])
        self._settle(entry, config_hash, state="done", payload=payload)
        if not entry.future.done():
            entry.future.set_result(payload)

    def _settle(
        self,
        entry: _Inflight,
        config_hash: str,
        state: str,
        payload: Optional[Dict[str, object]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Finalize every record attached to a cell and retire its entry."""
        now = time.time()
        for record in entry.records:
            if record.state == "cancelled":
                continue
            record.state = state
            record.payload = payload
            record.error = error
            record.finished_ts = now
        self._entries.pop(config_hash, None)

    # -- status / result / cancel -------------------------------------------

    def _record_or_error(self, request: Dict[str, object], op: str):
        job_id = request.get("job_id")
        record = self._jobs.get(job_id) if isinstance(job_id, str) else None
        if record is None:
            return None, protocol.error_reply(op, "unknown_job", f"unknown job_id {job_id!r}")
        return record, None

    def _handle_status(self, request: Dict[str, object]) -> Dict[str, object]:
        record, err = self._record_or_error(request, "status")
        if err:
            return err
        return {"ok": True, "op": "status", **record.describe()}

    async def _handle_result(self, request: Dict[str, object]) -> Dict[str, object]:
        record, err = self._record_or_error(request, "result")
        if err:
            return err
        timeout = float(request.get("timeout", DEFAULT_RESULT_TIMEOUT))
        recorder = get_recorder()
        if record.state in ("queued", "running"):
            entry = self._entries.get(record.config_hash)
            if entry is not None:
                ts = time.time()
                t0 = time.perf_counter()
                try:
                    # shield(): a timed-out waiter must not cancel the shared
                    # future other clients (and the cache write) depend on.
                    await asyncio.wait_for(asyncio.shield(entry.future), timeout)
                except asyncio.TimeoutError:
                    return protocol.error_reply(
                        "result", "timeout",
                        f"job {record.job_id} still running after {timeout:.0f}s",
                        state=record.state,
                    )
                except (asyncio.CancelledError, Exception):
                    pass  # record state carries the failure below
                finally:
                    if emit := getattr(recorder, "emit_span", None):
                        emit("service.wait", ts=ts, dur=time.perf_counter() - t0,
                             job_id=record.job_id, job=record.config_hash[:12])
        if record.state == "done":
            return {
                "ok": True, "op": "result", **record.describe(),
                "payload": record.payload,
            }
        descr = record.describe()
        descr.pop("error", None)  # must not clobber the reply's error *code*
        return protocol.error_reply(
            "result", record.state or "pending",
            record.error or f"job {record.job_id} is {record.state}",
            **descr,
        )

    def _handle_cancel(self, request: Dict[str, object]) -> Dict[str, object]:
        record, err = self._record_or_error(request, "cancel")
        if err:
            return err
        if record.state in ("done", "failed", "cancelled"):
            return {"ok": True, "op": "cancel", **record.describe()}
        record.state = "cancelled"
        record.finished_ts = time.time()
        entry = self._entries.get(record.config_hash)
        if entry is not None:
            entry.records = [r for r in entry.records if r.job_id != record.job_id]
            # Only abandon the simulation when nobody else wants it; a
            # started pool future ignores cancel() and still warms the cache.
            if not entry.records:
                entry.aio.cancel()
        return {"ok": True, "op": "cancel", **record.describe()}

    # -- stats ---------------------------------------------------------------

    def _handle_stats(self) -> Dict[str, object]:
        states: Dict[str, int] = {}
        for record in self._jobs.values():
            states[record.state] = states.get(record.state, 0) + 1
        return {
            "ok": True,
            "op": "stats",
            "engine": self.engine.stats(),
            "cache": None if self.engine.cache is None else self.engine.cache.stats(),
            "trace_store_entries": len(self.engine.trace_store),
            "jobs": states,
            "inflight": len(self._entries),
            "connections": self._connections,
            "service": dict(self.service_counters),
            "budget": {
                "budget_instructions": self.budget.budget_instructions,
                "window_seconds": self.budget.window_seconds,
                "usage": self.budget.usage(),
            },
        }


class ServiceThread:
    """Run a :class:`SweepService` on a daemon thread (tests, loadtest).

    ``start()`` blocks until the server is listening and returns the bound
    address (socket path, or ``(host, port)`` for TCP); ``stop()`` shuts the
    service down and joins the thread.  Usable as a context manager.
    """

    def __init__(self, config: ServiceConfig | None = None,
                 engine: ExperimentEngine | None = None) -> None:
        self.service = SweepService(config, engine=engine)
        self._thread: Optional[threading.Thread] = None

    def start(self, timeout: float = 30.0):
        self._thread = threading.Thread(
            target=asyncio.run, args=(self.service.run(),), daemon=True
        )
        self._thread.start()
        if not self.service.started.wait(timeout):
            raise RuntimeError("sweep service failed to start listening")
        return self.service.address

    def stop(self, timeout: float = 30.0) -> None:
        self.service.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False

"""Reproduction of "A Storage-Effective BTB Organization for Servers" (BTB-X).

The package is organised bottom-up:

* :mod:`repro.common`      -- bit utilities, configuration, statistics, LRU state;
* :mod:`repro.isa`         -- branch classes and the retired-instruction record;
* :mod:`repro.traces`      -- trace containers, binary/text formats, slicing;
* :mod:`repro.workloads`   -- synthetic server/client workload generation;
* :mod:`repro.btb`         -- BTB organizations (Conv, R-BTB, PDede, BTB-X + BTB-XC)
  and the storage accounting behind Tables III/IV;
* :mod:`repro.predictor`   -- direction predictors and the return address stack;
* :mod:`repro.memory`      -- the L1-I/L2/LLC cache hierarchy;
* :mod:`repro.frontend`    -- branch prediction unit, FTQ and FDIP;
* :mod:`repro.core`        -- the trace-driven front-end simulator and timing model;
* :mod:`repro.energy`      -- the calibrated SRAM energy/latency model (Table V);
* :mod:`repro.analysis`    -- offset-distribution and aggregation helpers;
* :mod:`repro.scenarios`   -- multi-tenant trace composition with context
  switches and ASID-aware front-end state (an axis the paper does not explore);
* :mod:`repro.experiments` -- one driver per table/figure of the evaluation,
  plus the consolidation scenario study.

Quickstart::

    from repro import BTBStyle, build_workload, simulate_trace

    trace = build_workload("server_030", 100_000)
    result = simulate_trace(trace, btb_style=BTBStyle.BTBX, btb_entries=4096)
    print(result.btb_mpki, result.ipc)
"""

from repro.common.config import (
    ASIDMode,
    BTBConfig,
    BTBStyle,
    ISAStyle,
    MachineConfig,
    SimulationConfig,
    default_machine_config,
)
from repro.core.metrics import ScenarioResult, SimulationResult
from repro.core.simulator import FrontEndSimulator, simulate_trace
from repro.scenarios import ScenarioSpec, TenantSpec, execute_scenario
from repro.btb import (
    BTBX,
    BTBXC,
    ConventionalBTB,
    IdealBTB,
    PDedeBTB,
    ReducedBTB,
    make_btb,
)
from repro.btb.storage import make_btb_for_budget
from repro.traces.trace import Trace
from repro.workloads.suites import build_suite, build_workload

__version__ = "1.0.0"

__all__ = [
    "ASIDMode",
    "BTBConfig",
    "BTBStyle",
    "ISAStyle",
    "MachineConfig",
    "SimulationConfig",
    "default_machine_config",
    "ScenarioResult",
    "ScenarioSpec",
    "SimulationResult",
    "TenantSpec",
    "execute_scenario",
    "FrontEndSimulator",
    "simulate_trace",
    "BTBX",
    "BTBXC",
    "ConventionalBTB",
    "IdealBTB",
    "PDedeBTB",
    "ReducedBTB",
    "make_btb",
    "make_btb_for_budget",
    "Trace",
    "build_suite",
    "build_workload",
    "__version__",
]

#!/usr/bin/env python3
"""Quickstart: simulate one synthetic server workload with three BTB designs.

Generates a small server-class trace, runs it through the front-end simulator
with the conventional BTB, PDede and BTB-X sized for the same 14.5 KB storage
budget, and prints the BTB MPKI and speedup of each organization.

Run with::

    python examples/quickstart.py
"""

from repro import BTBStyle, FrontEndSimulator, build_workload, default_machine_config
from repro.btb.storage import make_btb_for_budget

BUDGET_KIB = 14.5
INSTRUCTIONS = 120_000
WARMUP = 60_000


def main() -> None:
    trace = build_workload("server_030", INSTRUCTIONS)
    summary = trace.summary()
    print(f"workload {trace.name}: {len(trace)} instructions, "
          f"{summary.branch_count} branches, "
          f"{summary.unique_branch_pcs} static branch sites, "
          f"{summary.instruction_footprint_bytes // 1024} KB code footprint")
    print()

    baseline_ipc = None
    for style in (BTBStyle.CONVENTIONAL, BTBStyle.PDEDE, BTBStyle.BTBX):
        machine = default_machine_config(btb_style=style, fdip_enabled=True, isa=trace.isa)
        btb = make_btb_for_budget(style, BUDGET_KIB, isa=trace.isa)
        result = FrontEndSimulator(machine, btb=btb).run(trace, warmup_instructions=WARMUP)
        if baseline_ipc is None:
            baseline_ipc = result.ipc
        print(f"{style.value:>13}: {btb.capacity_entries():>5} entries in {BUDGET_KIB} KB | "
              f"BTB MPKI {result.btb_mpki:6.2f} | IPC {result.ipc:5.3f} | "
              f"speedup vs Conv-BTB {result.ipc / baseline_ipc:5.2f}x")


if __name__ == "__main__":
    main()

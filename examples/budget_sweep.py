#!/usr/bin/env python3
"""Storage-budget sweep on a server workload (a miniature Figure 11).

Sweeps the conventional BTB and BTB-X across four storage budgets on a single
large-footprint server workload, demonstrating the paper's headline claim that
BTB-X outperforms a conventional BTB of twice its size.

Run with::

    python examples/budget_sweep.py
"""

from repro import BTBStyle, FrontEndSimulator, build_workload, default_machine_config
from repro.btb.storage import make_btb_for_budget

BUDGETS_KIB = (1.8125, 3.625, 7.25, 14.5)
INSTRUCTIONS = 150_000
WARMUP = 75_000


def main() -> None:
    trace = build_workload("server_032", INSTRUCTIONS)
    print(f"workload {trace.name}: {len(trace)} instructions")
    print()
    print("  budget     Conv-BTB              BTB-X")
    print("             entries  MPKI  IPC    entries  MPKI  IPC")

    for budget in BUDGETS_KIB:
        row = [f"  {budget:6.2f}KB"]
        for style in (BTBStyle.CONVENTIONAL, BTBStyle.BTBX):
            machine = default_machine_config(btb_style=style, fdip_enabled=True, isa=trace.isa)
            btb = make_btb_for_budget(style, budget, isa=trace.isa)
            result = FrontEndSimulator(machine, btb=btb).run(trace, warmup_instructions=WARMUP)
            row.append(f"  {btb.capacity_entries():>6} {result.btb_mpki:6.2f} {result.ipc:5.3f}")
        print("".join(row))

    print()
    print("Compare BTB-X at budget B against Conv-BTB at budget 2B: the paper's")
    print("claim is that BTB-X wins even with half the storage (Section VI-F).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Offset-distribution study (the analysis behind Figures 4, 12 and 13).

Generates small client, server and x86-server workloads, computes the
cumulative distribution of stored target-offset bits for each, and shows how
the paper's 12.5 %-per-way methodology would size the eight BTB-X ways for
each suite.

Run with::

    python examples/offset_study.py
"""

from repro.analysis.offset_analysis import combined_distribution, distribution_table
from repro.workloads.suites import build_suite

INSTRUCTIONS = 60_000


def main() -> None:
    suites = {
        "client (Arm64)": build_suite("ipc1_client", INSTRUCTIONS, limit=2),
        "server (Arm64)": build_suite("ipc1_server", INSTRUCTIONS, limit=3),
        "server (x86)": build_suite("x86_server", INSTRUCTIONS, limit=2),
    }
    distributions = []
    for label, suite in suites.items():
        dist = combined_distribution(list(suite), name=label)
        distributions.append(dist)

    print("Cumulative fraction of dynamic branches per stored offset width:")
    for row in distribution_table(distributions):
        printable = {k: v for k, v in row.items()}
        print(f"  {printable}")
    print()

    print("BTB-X way sizing derived from each suite (12.5% of branches per way):")
    for dist in distributions:
        print(f"  {dist.name:<16} -> {dist.way_sizing(8)}")
    print()
    print("Paper's way sizing: Arm64 (0, 4, 5, 7, 9, 11, 19, 25), x86 (0, 5, 6, 7, 9, 12, 20, 27)")


if __name__ == "__main__":
    main()

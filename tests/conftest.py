"""Shared fixtures for the test suite.

Workload generation and simulation are the expensive parts of the tests, so
the fixtures that build traces are session-scoped: the same small traces are
reused by every test that needs one.
"""

from __future__ import annotations

import pytest

from repro.common.config import ISAStyle
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.traces.trace import Trace
from repro.workloads.execution import generate_trace
from repro.workloads.spec import client_spec, server_spec


@pytest.fixture(scope="session")
def small_server_trace() -> Trace:
    """A small server-class trace (deterministic, ~30k instructions)."""
    spec = server_spec("test_server", seed=1234, footprint_scale=0.4)
    return generate_trace(spec, 30_000)


@pytest.fixture(scope="session")
def small_client_trace() -> Trace:
    """A small client-class trace (deterministic, ~20k instructions)."""
    spec = client_spec("test_client", seed=99, footprint_scale=0.5)
    return generate_trace(spec, 20_000)


@pytest.fixture(scope="session")
def small_x86_trace() -> Trace:
    """A small x86-flavoured server trace."""
    spec = server_spec("test_x86", seed=7, footprint_scale=0.3, isa=ISAStyle.X86)
    return generate_trace(spec, 20_000)


@pytest.fixture
def handmade_branches() -> list[Instruction]:
    """A handful of hand-written branches covering every branch class."""
    return [
        Instruction.branch(0x401000, BranchType.CONDITIONAL, True, 0x401040),
        Instruction.branch(0x401100, BranchType.CONDITIONAL, False, 0x401180),
        Instruction.branch(0x402000, BranchType.UNCONDITIONAL, True, 0x402800),
        Instruction.branch(0x403000, BranchType.CALL, True, 0x7F00_0000_1000),
        Instruction.branch(0x7F00_0000_1040, BranchType.RETURN, True, 0x403004),
        Instruction.branch(0x404000, BranchType.INDIRECT, True, 0x480000),
        Instruction.branch(0x405000, BranchType.INDIRECT_CALL, True, 0x440000),
    ]

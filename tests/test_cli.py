"""Tests for the command-line interface.

Covers argument parsing, ``REPRO_SCALE`` override precedence, exit codes, the
``scenario list|run`` subcommands, the ``cache stats|prune`` subcommands, and
run-all's continue-past-failure behavior with ok/failed statuses in the
``--timings`` JSON.
"""

from __future__ import annotations

import json
import sys
import types

import pytest

from repro.cli import build_parser, main, resolve_scale, run_all
from repro.common.config import BTBStyle
from repro.experiments.config import FULL_SCALE, QUICK_SCALE, SMOKE_SCALE
from repro.experiments.engine import ExperimentEngine, ResultCache, SimJob
from repro.experiments.runner import clear_trace_cache


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    yield
    clear_trace_cache()


def _seed_cache(cache_dir) -> int:
    """Run a couple of tiny jobs into a cache directory; returns entry count."""
    jobs = [
        SimJob(
            workload="client_001",
            instructions=4_000,
            warmup_instructions=1_000,
            style=style,
            fdip_enabled=True,
            budget_kib=0.90625,
        )
        for style in (BTBStyle.BTBX, BTBStyle.CONVENTIONAL)
    ]
    ExperimentEngine(workers=1, cache_dir=cache_dir).run_jobs(jobs)
    return len(jobs)


class TestArgumentParsing:
    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "fig09_mpki", "--scale", "smoke", "--workers", "3",
             "--cache-dir", "/tmp/c", "--json", "out.json"]
        )
        assert args.command == "run"
        assert args.experiment == "fig09_mpki"
        assert args.scale == "smoke"
        assert args.workers == 3
        assert args.cache_dir == "/tmp/c"
        assert args.json_path == "out.json"

    def test_unknown_experiment_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "fig99_nope"])
        assert excinfo.value.code == 2

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "fig09_mpki", "--workers", "0"])
        assert excinfo.value.code == 2

    def test_missing_command_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([])
        assert excinfo.value.code == 2

    def test_scenario_run_arguments(self):
        args = build_parser().parse_args(
            ["scenario", "run", "noisy_neighbor", "--asid-mode", "tagged",
             "--scale", "smoke", "--json", "s.json"]
        )
        assert args.command == "scenario"
        assert args.scenario_command == "run"
        assert args.scenario == "noisy_neighbor"
        assert args.asid_mode == "tagged"
        assert args.json_path == "s.json"

    def test_cache_commands_require_cache_dir(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["cache", "stats"])
        assert excinfo.value.code == 2
        args = build_parser().parse_args(
            ["cache", "prune", "--cache-dir", "/tmp/c", "--max-age-days", "7"]
        )
        assert args.cache_command == "prune"
        assert args.max_age_days == 7.0


class TestScaleResolution:
    def test_env_overrides_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert resolve_scale("smoke") is FULL_SCALE

    def test_flag_used_without_env(self):
        assert resolve_scale("smoke") is SMOKE_SCALE

    def test_unknown_env_value_falls_back_to_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        assert resolve_scale("quick") is QUICK_SCALE


class TestListCommands:
    def test_list_prints_every_experiment_and_exits_0(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig09_mpki" in out
        assert "scenario_study" in out

    def test_scenario_list_prints_presets(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for preset in ("solo_baseline", "consolidated_server",
                       "microservice_churn", "noisy_neighbor"):
            assert preset in out


class TestScenarioRun:
    def test_scenario_run_writes_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        json_path = tmp_path / "scenario.json"
        exit_code = main(
            ["scenario", "run", "solo_baseline", "--asid-mode", "flush",
             "--json", str(json_path)]
        )
        assert exit_code == 0
        assert "solo_baseline" in capsys.readouterr().out
        record = json.loads(json_path.read_text())
        assert record["experiment"] == "scenario_study"
        assert record["scale"] == "smoke"
        assert set(record["scenarios"]) == {"solo_baseline"}

    def test_unknown_scenario_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario", "run", "no_such_scenario"])
        assert excinfo.value.code == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "scenarios", "--preset", "consolidated_server",
             "--preset", "noisy_neighbor", "--quanta", "1024,4096",
             "--tenant-counts", "1,2", "--styles", "btbx",
             "--asid-modes", "flush,partitioned", "--budget-kib", "7.25",
             "--json", "sweep.json", "--csv", "sweep.csv"]
        )
        assert args.command == "sweep"
        assert args.sweep_command == "scenarios"
        assert args.presets == ["consolidated_server", "noisy_neighbor"]
        assert args.quanta == "1024,4096"
        assert args.tenant_counts == "1,2"
        assert args.budget_kib == 7.25
        assert args.json_path == "sweep.json"
        assert args.csv_path == "sweep.csv"

    def test_unknown_preset_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "scenarios", "--preset", "no_such_preset"])
        assert excinfo.value.code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_quanta_exit_2(self, capsys):
        for flags in (["--quanta", "1024,banana"], ["--quanta", "0"],
                      ["--tenant-counts", "-2"], ["--styles", "warp-drive"],
                      ["--asid-modes", "lukewarm"], ["--budget-kib", "-1"],
                      ["--budget-kib", "0"]):
            with pytest.raises(SystemExit) as excinfo:
                main(["sweep", "scenarios", "--preset", "solo_baseline"] + flags)
            assert excinfo.value.code == 2

    def test_sweep_end_to_end_writes_json_and_csv(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        json_path, csv_path = tmp_path / "sweep.json", tmp_path / "sweep.csv"
        exit_code = main(
            ["sweep", "scenarios", "--preset", "solo_baseline",
             "--quanta", "1024,4096", "--tenant-counts", "1",
             "--styles", "btbx", "--asid-modes", "flush,tagged",
             "--json", str(json_path), "--csv", str(csv_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "MPKI vs scheduling quantum" in out
        record = json.loads(json_path.read_text())
        assert record["experiment"] == "scenario_sweep"
        assert record["quantum_sweep"]["solo_baseline"]["axis"] == [1024, 4096]
        assert set(record["quantum_sweep"]["solo_baseline"]["curves"]) == {
            "BTB-X/flush", "BTB-X/tagged"
        }
        assert csv_path.read_text().startswith("sweep,preset,axis_value")


class TestSharedSweepCommand:
    def test_shared_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "shared", "--preset", "shared_services",
             "--fractions", "0,0.5,1", "--styles", "pdede,rbtb",
             "--asid-modes", "tagged", "--budget-kib", "7.25",
             "--json", "shared.json", "--csv", "shared.csv"]
        )
        assert args.command == "sweep"
        assert args.sweep_command == "shared"
        assert args.preset == "shared_services"
        assert args.fractions == "0,0.5,1"
        assert args.json_path == "shared.json"
        assert args.csv_path == "shared.csv"

    def test_bad_shared_sweep_flags_exit_2(self, capsys):
        for flags in (["--fractions", "0.5,banana"], ["--fractions", "1.5"],
                      ["--fractions", "-0.25"], ["--styles", "warp-drive"],
                      ["--asid-modes", "lukewarm"], ["--budget-kib", "0"],
                      ["--preset", "no_such_preset"]):
            with pytest.raises(SystemExit) as excinfo:
                main(["sweep", "shared"] + flags)
            assert excinfo.value.code == 2

    def test_shared_sweep_end_to_end_writes_json_and_csv(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        json_path, csv_path = tmp_path / "shared.json", tmp_path / "shared.csv"
        exit_code = main(
            ["sweep", "shared", "--fractions", "0.5,1",
             "--styles", "rbtb", "--asid-modes", "flush,tagged",
             "--json", str(json_path), "--csv", str(csv_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Shared-footprint sweep" in out
        assert "duplicated allocations" in out
        record = json.loads(json_path.read_text())
        assert record["experiment"] == "shared_footprint"
        assert record["axis"] == [0.5, 1.0]
        assert set(record["curves"]) == {"R-BTB/flush", "R-BTB/tagged"}
        tagged = record["curves"]["R-BTB/tagged"]
        for point in tagged["duplication"]:
            assert point["page"]["tag_distinct"] > point["page"]["distinct"]
        assert csv_path.read_text().startswith("preset,shared_fraction,style")


class TestCacheSweepCommand:
    def test_cache_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "caches", "--preset", "consolidated_server",
             "--quanta", "1024,4096", "--tenant-counts", "1,2",
             "--style", "btbx", "--cache-modes", "flush,tagged",
             "--budget-kib", "7.25", "--json", "c.json", "--csv", "c.csv"]
        )
        assert args.command == "sweep"
        assert args.sweep_command == "caches"
        assert args.presets == ["consolidated_server"]
        assert args.cache_modes == "flush,tagged"
        assert args.json_path == "c.json"
        assert args.csv_path == "c.csv"

    def test_bad_cache_sweep_flags_exit_2(self, capsys):
        for flags in (["--quanta", "0"], ["--cache-modes", "lukewarm"],
                      ["--style", "warp-drive"], ["--budget-kib", "0"],
                      ["--preset", "no_such_preset"]):
            with pytest.raises(SystemExit) as excinfo:
                main(["sweep", "caches"] + flags)
            assert excinfo.value.code == 2

    def test_multiple_styles_rejected_not_silently_truncated(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "caches", "--style", "conventional,btbx"])
        assert excinfo.value.code == 2
        assert "exactly one BTB style" in capsys.readouterr().err

    def test_bad_cache_modes_error_names_the_right_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "caches", "--cache-modes", "lukewarm"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--cache-modes" in err
        assert "--asid-modes" not in err

    def test_cache_sweep_end_to_end_writes_json_and_csv(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        json_path, csv_path = tmp_path / "caches.json", tmp_path / "caches.csv"
        exit_code = main(
            ["sweep", "caches", "--preset", "consolidated_server",
             "--quanta", "1024,4096", "--tenant-counts", "1",
             "--cache-modes", "flush,tagged",
             "--json", str(json_path), "--csv", str(csv_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Cache-interference sweep" in out
        assert "L1-I MPKI vs scheduling quantum" in out
        record = json.loads(json_path.read_text())
        assert record["experiment"] == "cache_interference"
        section = record["quantum_sweep"]["consolidated_server"]
        assert section["axis"] == [1024, 4096]
        assert set(section["curves"]) == {"BTB-X/cache-flush", "BTB-X/cache-tagged"}
        flush = section["curves"]["BTB-X/cache-flush"]["aggregate_l1i_mpki"]
        tagged = section["curves"]["BTB-X/cache-tagged"]["aggregate_l1i_mpki"]
        assert all(f >= t for f, t in zip(flush, tagged)), (flush, tagged)
        assert csv_path.read_text().startswith("sweep,preset,axis_value")


class TestPlotCommand:
    def test_plot_missing_file_exits_2(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["plot", str(tmp_path / "missing.csv")])
        assert excinfo.value.code == 2
        assert "no such CSV file" in capsys.readouterr().err

    def test_plot_unrecognised_csv_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.csv"
        bogus.write_text("foo,bar\n1,2\n", encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["plot", str(bogus)])
        assert excinfo.value.code == 2
        assert "unrecognised" in capsys.readouterr().err

    def test_plot_renders_committed_smoke_csv(self, tmp_path, capsys):
        import pathlib

        smoke = pathlib.Path(__file__).parent.parent / "results" / "shared_footprint_smoke.csv"
        exit_code = main(
            ["plot", str(smoke), "--out-dir", str(tmp_path), "--backend", "svg"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        written = list(tmp_path.glob("*.svg"))
        assert written, "plot command produced no figures"
        assert any("btb_mpki" in path.name for path in written)


class TestCacheCommands:
    def test_stats_reports_entries_and_bytes(self, tmp_path, capsys):
        expected = _seed_cache(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"entries         : {expected}" in out
        assert "total bytes" in out

    def test_stats_on_empty_directory(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["cache", "stats", "--cache-dir", str(empty)]) == 0
        assert "entries         : 0" in capsys.readouterr().out

    def test_stats_on_nonexistent_directory_is_friendly_and_side_effect_free(
        self, tmp_path, capsys
    ):
        missing = tmp_path / "never" / "created"
        assert main(["cache", "stats", "--cache-dir", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "entries         : 0" in out
        assert "does not exist" in out
        # Probing a path must not create the directory as a side effect.
        assert not missing.exists() and not missing.parent.exists()

    def test_prune_on_nonexistent_directory_is_friendly_and_side_effect_free(
        self, tmp_path, capsys
    ):
        missing = tmp_path / "never"
        assert main(["cache", "prune", "--cache-dir", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "pruned 0 entries" in out and "does not exist" in out
        assert not missing.exists()

    def test_prune_by_age_keeps_young_entries(self, tmp_path, capsys):
        expected = _seed_cache(tmp_path)
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--max-age-days", "1"]) == 0
        assert "pruned 0 entries" in capsys.readouterr().out
        assert len(ResultCache(tmp_path)) == expected

    def test_prune_without_age_empties_the_cache(self, tmp_path, capsys):
        expected = _seed_cache(tmp_path)
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 0
        assert f"pruned {expected}" in capsys.readouterr().out
        assert len(ResultCache(tmp_path)) == 0

    def test_prune_removes_old_entries(self, tmp_path):
        import os
        import time

        expected = _seed_cache(tmp_path)
        old = time.time() - 10 * 86400.0
        # Entries live in hash-prefix shard subdirectories; age the files.
        for root, _dirs, files in os.walk(tmp_path):
            for name in files:
                os.utime(os.path.join(root, name), (old, old))
        cache = ResultCache(tmp_path)
        assert cache.prune(max_age_seconds=86400.0) == expected
        assert len(cache) == 0

    def test_stats_reports_on_disk_format_version(self, tmp_path, capsys):
        from repro.experiments.engine import CACHE_FORMAT_VERSION

        _seed_cache(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"format versions : v{CACHE_FORMAT_VERSION}" in out
        assert f"(this tool writes v{CACHE_FORMAT_VERSION})" in out

    @staticmethod
    def _forge_newer_entry(tmp_path) -> None:
        import os

        entry_path = next(
            os.path.join(root, name)
            for root, _dirs, files in os.walk(tmp_path)
            for name in files
            if name.endswith(".json")
        )
        with open(entry_path, encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["job"]["cache_format"] = 999
        # Forge at the legacy flat path: stats/prune must scan both layouts.
        (tmp_path / "forged_newer.json").write_text(json.dumps(entry))

    def test_prune_refuses_newer_format_caches_with_friendly_exit_0(
        self, tmp_path, capsys
    ):
        expected = _seed_cache(tmp_path)
        self._forge_newer_entry(tmp_path)
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "not pruning" in out and "v999" in out
        # Nothing was deleted -- neither the newer entry nor the older ones.
        assert len(ResultCache(tmp_path)) == expected + 1

    def test_stats_still_works_on_newer_format_caches(self, tmp_path, capsys):
        _seed_cache(tmp_path)
        self._forge_newer_entry(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "v999" in capsys.readouterr().out


class TestRunAllResilience:
    @pytest.fixture
    def _failing_registry(self, monkeypatch):
        """A registry with one healthy experiment and one that raises."""
        boom = types.ModuleType("tests_fake_boom")
        boom.__doc__ = "Always fails (test fixture)."

        def run(scale, engine=None):
            raise RuntimeError("synthetic driver failure")

        def format_report(result):  # pragma: no cover - never reached
            return "boom"

        boom.run, boom.format_report = run, format_report
        monkeypatch.setitem(sys.modules, "tests_fake_boom", boom)
        monkeypatch.setattr(
            "repro.cli.EXPERIMENTS",
            {
                "table3_storage": "repro.experiments.table3_storage",
                "boom": "tests_fake_boom",
                "table4_capacity": "repro.experiments.table4_capacity",
            },
        )

    def test_run_all_continues_past_failures(self, _failing_registry):
        summary = run_all("smoke", engine=ExperimentEngine(workers=1))
        assert summary["status"] == {
            "table3_storage": "ok", "boom": "failed", "table4_capacity": "ok"
        }
        assert summary["failed"] == ["boom"]
        assert "synthetic driver failure" in summary["errors"]["boom"]
        # Experiments after the failure still produced results.
        assert "table4_capacity" in summary["results"]
        assert "boom" not in summary["results"]

    def test_main_run_all_reports_failures_and_exits_1(
        self, _failing_registry, tmp_path, capsys
    ):
        timings = tmp_path / "timings.json"
        exit_code = main(["run-all", "--scale", "smoke", "--timings", str(timings)])
        assert exit_code == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "boom" in out
        record = json.loads(timings.read_text())
        assert record["status"]["boom"] == "failed"
        assert record["status"]["table3_storage"] == "ok"
        assert "synthetic driver failure" in record["errors"]["boom"]
        assert set(record["timings_s"]) == {"table3_storage", "boom", "table4_capacity"}

    def test_main_run_all_exits_0_when_all_ok(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            "repro.cli.EXPERIMENTS",
            {"table4_capacity": "repro.experiments.table4_capacity"},
        )
        timings = tmp_path / "timings.json"
        assert main(["run-all", "--scale", "smoke", "--timings", str(timings)]) == 0
        record = json.loads(timings.read_text())
        assert record["status"] == {"table4_capacity": "ok"}
        assert record["errors"] == {}

    def test_timings_report_per_driver_instruction_throughput(
        self, monkeypatch, tmp_path
    ):
        """Drivers that simulate report instructions/sec; analytical ones report 0."""
        tiny = types.ModuleType("tests_fake_tiny_sim")
        tiny.__doc__ = "Simulates one tiny job (test fixture)."

        def run(scale, engine=None):
            from repro.experiments.engine import get_active_engine

            job = SimJob(
                workload="client_001",
                instructions=4_000,
                warmup_instructions=1_000,
                style=BTBStyle.BTBX,
                fdip_enabled=True,
                budget_kib=0.90625,
            )
            get_active_engine().run_jobs([job])
            return {"ok": True}

        tiny.run = run
        tiny.format_report = lambda result: "tiny"
        monkeypatch.setitem(sys.modules, "tests_fake_tiny_sim", tiny)
        monkeypatch.setattr(
            "repro.cli.EXPERIMENTS",
            {
                "tiny_sim": "tests_fake_tiny_sim",
                "table4_capacity": "repro.experiments.table4_capacity",
            },
        )
        timings = tmp_path / "timings.json"
        assert main(["run-all", "--scale", "smoke", "--timings", str(timings)]) == 0
        record = json.loads(timings.read_text())
        assert record["instructions"]["tiny_sim"] == 4_000
        assert record["instructions_per_second"]["tiny_sim"] > 0
        assert record["instructions"]["table4_capacity"] == 0
        assert record["engine"]["instructions_simulated"] == sum(
            record["instructions"].values()
        )
        # Per-driver engine-counter deltas: the simulating driver executed its
        # one job (cold cache, so no memo/disk hits); the analytical driver
        # submitted nothing.
        tiny = record["engine_per_driver"]["tiny_sim"]
        assert tiny == {"submitted": 1, "executed": 1, "memo_hits": 0, "disk_hits": 0}
        assert record["engine_per_driver"]["table4_capacity"]["submitted"] == 0


class TestBackendFlag:
    def test_backend_flag_routes_through_environment(self, monkeypatch, capsys):
        import os

        import repro.cli as cli_module
        from repro.common.config import BACKEND_ENV_VAR

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        seen = {}
        real_dispatch = cli_module._dispatch

        def spy(args, parser):
            seen["backend"] = os.environ.get(BACKEND_ENV_VAR)
            return real_dispatch(args, parser)

        monkeypatch.setattr(cli_module, "_dispatch", spy)
        assert main(
            ["run", "table4_capacity", "--scale", "smoke", "--backend", "python"]
        ) == 0
        # main() exports the knob *for the duration of the command* so
        # simulation code (and forked pool workers) resolve it ...
        assert seen["backend"] == "python"
        # ... and restores the environment afterwards: invoking the CLI must
        # not leak the previous run's backend into the caller's process.
        assert BACKEND_ENV_VAR not in os.environ

    def test_backend_env_restored_to_prior_value(self, monkeypatch, capsys):
        import os

        from repro.common.config import BACKEND_ENV_VAR

        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert main(
            ["run", "table4_capacity", "--scale", "smoke", "--backend", "python"]
        ) == 0
        assert os.environ[BACKEND_ENV_VAR] == "numpy"

    def test_unavailable_backend_fails_fast(self, monkeypatch, capsys):
        import repro.common.config as config

        real = config.resolve_backend

        def deny_numpy(backend):
            if backend == "numpy":
                raise config.ConfigurationError("backend 'numpy' requested but ...")
            return real(backend)

        monkeypatch.setattr(config, "resolve_backend", deny_numpy)
        with pytest.raises(SystemExit):
            main(["run", "table4_capacity", "--scale", "smoke", "--backend", "numpy"])


def _fake_record(commit: str, python_ips: float, numpy_ips: float | None = None):
    backends = {"python": {"wall_s": 1.0, "ips": python_ips}}
    if numpy_ips is not None:
        backends["numpy"] = {"wall_s": 1.0, "ips": numpy_ips}
    return {
        "format": 1,
        "benchmark": "sweep_scenarios_smoke",
        "commit": commit,
        "date": "2026-01-01T00:00:00+00:00",
        "scale": "smoke",
        "repeats": 2,
        "cells": 210,
        "instructions": 4_200_000,
        "backends": backends,
    }


class TestBenchCommand:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload) + "\n")
        return str(path)

    def test_compare_within_threshold_exits_0(self, tmp_path, capsys):
        fresh = self._write(tmp_path / "fresh.json", _fake_record("new", 95.0, 190.0))
        baseline = self._write(
            tmp_path / "history.jsonl", _fake_record("old", 100.0, 200.0)
        )
        assert main(["bench", "compare", "--fresh", fresh, "--baseline", baseline]) == 0
        assert "within threshold" in capsys.readouterr().out

    def test_compare_regression_exits_1_and_names_override_label(self, tmp_path, capsys):
        from repro.experiments.bench import OVERRIDE_LABEL

        fresh = self._write(tmp_path / "fresh.json", _fake_record("new", 50.0, 200.0))
        baseline = self._write(
            tmp_path / "history.jsonl", _fake_record("old", 100.0, 200.0)
        )
        assert main(["bench", "compare", "--fresh", fresh, "--baseline", baseline]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and OVERRIDE_LABEL in out

    def test_compare_uses_last_history_record_as_baseline(self, tmp_path, capsys):
        fresh = self._write(tmp_path / "fresh.json", _fake_record("new", 100.0))
        history = tmp_path / "history.jsonl"
        with history.open("w") as handle:
            handle.write(json.dumps(_fake_record("ancient", 500.0)) + "\n")
            handle.write(json.dumps(_fake_record("latest", 100.0)) + "\n")
        assert main(
            ["bench", "compare", "--fresh", fresh, "--baseline", str(history)]
        ) == 0
        assert "latest" in capsys.readouterr().out

    def test_compare_never_gates_on_backends_missing_from_one_side(
        self, tmp_path, capsys
    ):
        """The numpy-free CI leg must pass against a numpy-bearing baseline."""
        fresh = self._write(tmp_path / "fresh.json", _fake_record("new", 100.0))
        baseline = self._write(
            tmp_path / "history.jsonl", _fake_record("old", 100.0, 400.0)
        )
        assert main(["bench", "compare", "--fresh", fresh, "--baseline", baseline]) == 0
        assert "only one record" in capsys.readouterr().out

    def test_compare_missing_baseline_is_a_usage_error(self, tmp_path):
        fresh = self._write(tmp_path / "fresh.json", _fake_record("new", 100.0))
        with pytest.raises(SystemExit):
            main(
                ["bench", "compare", "--fresh", fresh,
                 "--baseline", str(tmp_path / "absent.jsonl")]
            )

    def test_smoke_writes_json_and_appends_history(self, monkeypatch, tmp_path, capsys):
        from repro.experiments import bench

        monkeypatch.setattr(
            bench, "run_smoke",
            lambda backends=None, repeats=2, **kw: _fake_record("fake", 100.0, 250.0),
        )
        json_out = tmp_path / "record.json"
        history = tmp_path / "history.jsonl"
        assert main(
            ["bench", "smoke", "--repeats", "1", "--json", str(json_out),
             "--append-history", "--history-path", str(history)]
        ) == 0
        assert json.loads(json_out.read_text())["commit"] == "fake"
        assert len(bench.load_history(history)) == 1
        out = capsys.readouterr().out
        assert "instructions/s" in out

    def test_committed_history_parses_and_demonstrates_numpy_speedup(self):
        """The first committed trajectory record exists and carries real numbers."""
        import pathlib

        from repro.experiments import bench

        path = pathlib.Path(__file__).resolve().parent.parent / bench.DEFAULT_HISTORY_PATH
        records = bench.load_history(path)
        assert records, "results/bench_history.jsonl must hold the seed record"
        first = records[0]
        assert first["benchmark"] == "sweep_scenarios_smoke"
        assert first["backends"]["python"]["ips"] > 0
        if "numpy" in first["backends"]:
            assert first["backends"]["numpy"]["ips"] > first["backends"]["python"]["ips"]

"""Concurrency tests for the sharded on-disk result cache.

The service shares one cache directory between its pool workers, the janitor
task and any number of concurrent CLI runs, so the atomic tmp+replace write
discipline has to hold up under real multi-process traffic: concurrent
writers of the same and different entries, readers racing writers, and a
prune sweeping the directory while writes are in flight.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor

from repro.common.config import BTBStyle
from repro.experiments.engine import ResultCache, SimJob


def make_job(index: int) -> SimJob:
    return SimJob(
        workload=f"wl{index}",
        instructions=1_000 + index,
        warmup_instructions=100,
        style=BTBStyle.BTBX,
        fdip_enabled=True,
        budget_kib=14.5,
    )


def make_payload(index: int) -> dict:
    return {"result": {"index": index}, "access_counts": {"reads": float(index)}}


def _hammer(cache_dir: str, indices: list, rounds: int) -> int:
    """Worker: repeatedly put+get every job; returns observed good reads."""
    cache = ResultCache(cache_dir)
    good = 0
    for _ in range(rounds):
        for index in indices:
            job = make_job(index)
            cache.put(job, make_payload(index))
            payload = cache.get(job)
            if payload is not None:
                assert payload["result"]["index"] == index
                good += 1
    return good


def _hammer_with_prune(cache_dir: str, indices: list, rounds: int) -> int:
    """Worker: interleave writes with whole-directory prunes."""
    cache = ResultCache(cache_dir)
    for round_number in range(rounds):
        for index in indices:
            cache.put(make_job(index), make_payload(index))
        cache.prune(max_age_seconds=None)
    return rounds


def test_concurrent_writers_same_and_different_entries(tmp_path):
    cache_dir = str(tmp_path / "cache")
    shared = list(range(8))  # every process writes these
    with ProcessPoolExecutor(max_workers=4) as pool:
        futures = [
            pool.submit(_hammer, cache_dir, shared + [100 + worker], 5)
            for worker in range(4)
        ]
        results = [future.result(timeout=120) for future in futures]
    # A process always reads back a valid payload right after its own write
    # (last-writer-wins, but every version of an entry is identical here).
    assert all(good == 5 * 9 for good in results)
    cache = ResultCache(cache_dir)
    assert len(cache) == 8 + 4
    for index in shared:
        assert cache.get(make_job(index)) == make_payload(index)
    # No orphaned temp files: every write completed its atomic replace.
    leftovers = [
        name
        for directory in cache._scan_dirs()
        for name in os.listdir(directory)
        if name.endswith(".tmp")
    ]
    assert leftovers == []


def test_prune_racing_concurrent_writers_never_corrupts(tmp_path):
    cache_dir = str(tmp_path / "cache")
    indices = list(range(6))
    with ProcessPoolExecutor(max_workers=3) as pool:
        futures = [
            pool.submit(_hammer_with_prune, cache_dir, indices, 8)
            for _ in range(3)
        ]
        for future in futures:
            assert future.result(timeout=120) == 8
    # Whatever survived the last prune is readable and valid; a torn or
    # half-deleted entry would surface as a JSON error inside get().
    cache = ResultCache(cache_dir)
    for index in indices:
        payload = cache.get(make_job(index))
        assert payload is None or payload == make_payload(index)


def test_prune_leaves_fresh_inflight_tmp_writes_alone(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    job = make_job(0)
    cache.put(job, make_payload(0))
    shard = cache._shard_dir(job.config_hash())
    fresh_tmp = os.path.join(shard, "inflight-write.tmp")
    stale_tmp = os.path.join(shard, "crash-orphan.tmp")
    for path in (fresh_tmp, stale_tmp):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{partial")
    stale_age = cache._TMP_GRACE_SECONDS + 60
    os.utime(stale_tmp, (time.time() - stale_age, time.time() - stale_age))

    removed = cache.prune(max_age_seconds=None)

    assert removed == 1  # the entry; tmp files are not counted as entries
    assert os.path.exists(fresh_tmp), "prune must not break an in-flight write"
    assert not os.path.exists(stale_tmp), "crash orphans past the grace period go"
    # The in-flight write can still complete its atomic replace afterwards.
    os.replace(fresh_tmp, cache._path(job.config_hash()))


def test_legacy_flat_entries_remain_readable_and_prunable(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    job = make_job(1)
    legacy = cache._legacy_path(job.config_hash())
    with open(legacy, "w", encoding="utf-8") as handle:
        json.dump({"job": job.config_dict(), "payload": make_payload(1)}, handle)
    assert cache.get(job) == make_payload(1)
    assert len(cache) == 1
    # A sharded write of the same job shadows the legacy entry...
    cache.put(job, make_payload(2))
    assert cache.get(job) == make_payload(2)
    # ...and prune sweeps both layouts.
    assert cache.prune(max_age_seconds=None) == 2
    assert cache.get(job) is None

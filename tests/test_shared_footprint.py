"""Property tests for the shared-footprint remap and its sweep driver.

The remap's structural contracts, checked with hypothesis where randomization
helps (the golden suite and the differential matrix own bit-exactness):

* per tenant, the remapped shared and private page sets are disjoint -- and
  the private sets of *different* tenants are disjoint too, while the shared
  sets nest (rank-based, so tenants running the same binary coincide);
* remapping never changes instruction counts or the per-tenant schedule
  shares of the composed stream;
* remapping is deterministic across engine worker counts (scenario cells
  with a shared footprint stay bit-identical, duplication counters included);
* the sweep driver reports aligned curves, duplication monotone in the
  overlap fraction over the remapped cells, and replays from a warm cache
  with zero simulations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import ASIDMode, BTBStyle
from repro.common.errors import ConfigurationError
from repro.experiments.config import ExperimentScale
from repro.experiments.engine import ExperimentEngine, ScenarioJob, _result_to_payload
from repro.experiments.runner import clear_trace_cache
from repro.experiments import shared_footprint
from repro.experiments.shared_footprint import shared_variant
from repro.scenarios.compose import (
    PAGE_SHIFT,
    PRIVATE_BASE_PAGE,
    PRIVATE_TENANT_STRIDE_PAGES,
    SHARED_BASE_PAGE,
    SHARED_SLOT_STRIDE_PAGES,
    TraceComposer,
    remap_tenant_trace,
    shared_page_split,
    tenant_code_pages,
)
from repro.scenarios.presets import get_scenario
from repro.scenarios.spec import ScenarioSpec, TenantSpec
from repro.traces.store import default_store


@pytest.fixture(autouse=True)
def _bounded_traces():
    yield
    clear_trace_cache()


_WORKLOADS = ("server_001", "server_009", "client_001", "client_002")

TINY = ExperimentScale(
    name="tiny", instructions=6_000, warmup_fraction=0.25,
    server_workloads=1, client_workloads=1,
)


def _spec(fraction: float, tenant_count: int = 2, quantum: int = 512) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"prop_shared@{fraction:g}x{tenant_count}",
        tenants=tuple(
            TenantSpec(f"t{i}", _WORKLOADS[i % len(_WORKLOADS)]) for i in range(tenant_count)
        ),
        quantum_instructions=quantum,
        shared_fraction=fraction,
    )


def _region_of(page: int, tenant_index: int) -> str:
    private_base = PRIVATE_BASE_PAGE + tenant_index * PRIVATE_TENANT_STRIDE_PAGES
    if SHARED_BASE_PAGE <= page < PRIVATE_BASE_PAGE:
        return "shared"
    if private_base <= page < private_base + PRIVATE_TENANT_STRIDE_PAGES:
        return "private"
    return "foreign"


class TestSharedPageSplit:
    def test_decimal_fractions_split_without_truncation(self):
        """Regression: ``int(10 * 0.7)`` is 6 because 0.7 is not a binary
        float; the split must honour the decimal the user actually wrote."""
        assert shared_page_split(10, 0.7) == 7
        assert shared_page_split(100, 0.29) == 29
        assert shared_page_split(1000, 0.001) == 1
        # Still a floor, never a round-up past the true product.
        assert shared_page_split(3, 0.1) == 0
        assert shared_page_split(7, 0.5) == 3

    def test_binary_exact_fractions_match_the_old_truncation(self):
        """Golden safety: the pinned shared-footprint cells use 0.5 and the
        sweep grid uses quarters -- all binary-exact fractions where the old
        ``int(count * fraction)`` was already correct.  Byte-identical here
        means the rewrite cannot move a golden cell."""
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            for count in range(257):
                assert shared_page_split(count, fraction) == int(count * fraction)


class TestRemapPageProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        fraction=st.floats(min_value=0.01, max_value=1.0),
        tenant_count=st.integers(min_value=1, max_value=3),
    )
    def test_shared_and_private_page_sets_are_disjoint(self, fraction, tenant_count):
        store = default_store()
        per_tenant_pages = []
        for index in range(tenant_count):
            trace = store.get(_WORKLOADS[index % len(_WORKLOADS)], 2_048)
            original_pages = tenant_code_pages(trace)
            remapped = remap_tenant_trace(trace, index, fraction, shared_slot=index)
            pages = set(tenant_code_pages(remapped))
            # Bijection: the footprint never grows or shrinks.
            assert len(pages) == len(original_pages)
            shared = {page for page in pages if _region_of(page, index) == "shared"}
            private = pages - shared
            # Every page lands in the tenant's own window or the shared region.
            assert all(_region_of(page, index) == "private" for page in private)
            assert shared.isdisjoint(private)
            assert len(shared) == shared_page_split(len(original_pages), fraction)
            # Rank-based shared mapping: a contiguous run from the slot's base.
            slot_base = SHARED_BASE_PAGE + index * SHARED_SLOT_STRIDE_PAGES
            assert shared == {slot_base + rank for rank in range(len(shared))}
            per_tenant_pages.append((shared, private))
        # Private windows never collide across tenants, and neither do the
        # shared regions of tenants in different slots (different binaries).
        for left in range(tenant_count):
            for right in range(left + 1, tenant_count):
                assert per_tenant_pages[left][1].isdisjoint(per_tenant_pages[right][1])
                assert per_tenant_pages[left][0].isdisjoint(per_tenant_pages[right][0])

    @settings(max_examples=10, deadline=None)
    @given(fraction=st.floats(min_value=0.01, max_value=1.0))
    def test_same_workload_tenants_share_the_shared_mapping(self, fraction):
        store = default_store()
        trace = store.get("server_009", 2_048)
        left = remap_tenant_trace(trace, 0, fraction)
        right = remap_tenant_trace(trace, 1, fraction)
        shared_left = {p for p in tenant_code_pages(left) if p < PRIVATE_BASE_PAGE}
        shared_right = {p for p in tenant_code_pages(right) if p < PRIVATE_BASE_PAGE}
        assert shared_left == shared_right

    @settings(max_examples=10, deadline=None)
    @given(fraction=st.floats(min_value=0.01, max_value=1.0))
    def test_remap_preserves_branch_structure(self, fraction):
        """Branch mix, taken-ness, ordering and same-pageness all survive."""
        store = default_store()
        trace = store.get("client_001", 2_048)
        remapped = remap_tenant_trace(trace, 0, fraction)
        assert len(remapped) == len(trace)
        for before, after in zip(trace, remapped):
            assert before.branch_type == after.branch_type
            assert before.taken == after.taken
            assert (before.pc & 0xFFF) == (after.pc & 0xFFF)
            if before.is_branch:
                same_before = (before.pc >> PAGE_SHIFT) == (before.target >> PAGE_SHIFT)
                same_after = (after.pc >> PAGE_SHIFT) == (after.target >> PAGE_SHIFT)
                assert same_before == same_after

    def test_composer_scopes_shared_regions_per_workload(self):
        """Tenants share pages only with tenants mapping the same binary:
        a heterogeneous preset must report zero cross-workload 'sharing',
        so its duplication counters never call unrelated code duplicated."""
        store = default_store()
        spec = ScenarioSpec(
            name="hetero_vs_homo",
            tenants=(
                TenantSpec("a1", "server_001"),
                TenantSpec("b1", "client_001"),
                TenantSpec("a2", "server_001"),
            ),
            quantum_instructions=512,
            shared_fraction=0.5,
        )
        traces = {w: store.get(w, 2_048) for w in set(spec.workloads)}
        composer = TraceComposer(spec, traces)
        shared_sets = []
        for index in range(3):
            pages = tenant_code_pages(composer.tenant_trace(index))
            shared_sets.append({p for p in pages if p < PRIVATE_BASE_PAGE})
        # Same binary (a1/a2): identical shared mapping.  Different binary
        # (b1): a disjoint shared slot.
        assert shared_sets[0] == shared_sets[2]
        assert shared_sets[0] and shared_sets[1]
        assert shared_sets[0].isdisjoint(shared_sets[1])
        # The composer's own accounting agrees with the raw page walk.
        stats = composer.code_page_stats()
        assert set(stats) == {"a1", "b1", "a2"}
        assert stats["a1"] == stats["a2"]
        assert stats["a1"]["shared_pages"] == len(shared_sets[0])
        assert stats["b1"]["shared_pages"] == len(shared_sets[1])
        for tenant_stats in stats.values():
            assert tenant_stats["pages"] == (
                tenant_stats["shared_pages"] + tenant_stats["private_pages"]
            )

    def test_code_page_stats_reports_no_sharing_without_remap(self):
        store = default_store()
        spec = ScenarioSpec(
            name="no_remap_stats",
            tenants=(TenantSpec("a", "server_001"), TenantSpec("b", "server_001")),
            quantum_instructions=512,
            shared_fraction=0.0,
        )
        traces = {w: store.get(w, 2_048) for w in set(spec.workloads)}
        stats = TraceComposer(spec, traces).code_page_stats()
        for tenant_stats in stats.values():
            assert tenant_stats["shared_pages"] == 0
            assert tenant_stats["pages"] == tenant_stats["private_pages"] > 0

    def test_remap_is_deterministic(self):
        store = default_store()
        trace = store.get("server_001", 2_048)
        first = remap_tenant_trace(trace, 1, 0.4)
        second = remap_tenant_trace(trace, 1, 0.4)
        assert [i.pc for i in first] == [i.pc for i in second]
        assert [i.target for i in first] == [i.target for i in second]


class TestRemapScheduleProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        fraction=st.floats(min_value=0.01, max_value=1.0),
        quantum=st.integers(min_value=32, max_value=512),
        total=st.integers(min_value=1, max_value=3_000),
    )
    def test_schedule_shares_unchanged_by_remapping(self, fraction, quantum, total):
        store = default_store()
        plain = _spec(0.0, tenant_count=2, quantum=quantum)
        shared = _spec(fraction, tenant_count=2, quantum=quantum)
        traces = {w: store.get(w, 2_048) for w in set(plain.workloads)}
        def shares(spec):
            counts: dict[str, int] = {}
            asids = []
            for asid, tenant, _ in TraceComposer(spec, traces).stream(total):
                counts[tenant] = counts.get(tenant, 0) + 1
                asids.append(asid)
            return counts, asids
        plain_counts, plain_asids = shares(plain)
        shared_counts, shared_asids = shares(shared)
        assert plain_counts == shared_counts
        assert plain_asids == shared_asids

    def test_remapped_cells_identical_across_worker_counts(self):
        spec = shared_variant(get_scenario("shared_services"), 0.75)
        jobs = [
            ScenarioJob(
                scenario=spec.name,
                instructions=TINY.instructions,
                warmup_instructions=TINY.warmup_instructions,
                style=style,
                asid_mode=ASIDMode.TAGGED,
                budget_kib=14.5,
                spec=spec,
            )
            for style in (BTBStyle.PDEDE, BTBStyle.REDUCED)
        ]
        serial = ExperimentEngine(workers=1).run_jobs(jobs)
        parallel = ExperimentEngine(workers=2).run_jobs(jobs)
        for left, right in zip(serial, parallel):
            assert _result_to_payload(left.result) == _result_to_payload(right.result)
            assert left.scenario.duplication == right.scenario.duplication
            assert left.scenario.to_dict() == right.scenario.to_dict()


class TestSpecValidation:
    @pytest.mark.parametrize("fraction", [-0.1, 1.5, True, "half", None])
    def test_bad_shared_fractions_rejected_naming_the_field(self, fraction):
        with pytest.raises(ConfigurationError, match="shared_fraction"):
            ScenarioSpec(
                name="bad_fraction",
                tenants=(TenantSpec("t0", "server_001"),),
                shared_fraction=fraction,
            )

    def test_shared_fraction_normalized_to_float(self):
        assert _spec(0).shared_fraction == 0.0
        assert isinstance(_spec(0).shared_fraction, float)
        assert _spec(1).shared_fraction == 1.0

    def test_shared_fraction_in_config_dict_and_hash(self):
        base = _spec(0.0)
        shared = _spec(0.5)
        assert base.config_dict()["shared_fraction"] == 0.0
        assert shared.config_dict()["shared_fraction"] == 0.5

    def test_shared_variant_reuses_spec_at_its_own_fraction(self):
        """The preset's own coordinate must stay cache-identical."""
        spec = get_scenario("shared_services")
        assert shared_variant(spec, spec.shared_fraction) is spec
        other = shared_variant(spec, 0.25)
        assert other.name == "shared_services@s0.25"
        assert other.shared_fraction == 0.25
        with pytest.raises(ConfigurationError):
            shared_variant(spec, 1.5)


# -- the sweep driver ---------------------------------------------------------


def _tiny_sweep(engine, **overrides):
    settings_ = dict(
        preset="shared_services",
        fractions=(0.25, 0.5, 1.0),
        styles=(BTBStyle.PDEDE,),
        asid_modes=(ASIDMode.FLUSH, ASIDMode.TAGGED),
        engine=engine,
    )
    settings_.update(overrides)
    return shared_footprint.run(TINY, **settings_)


class TestSharedFootprintSweep:
    def test_result_structure_and_duplication_monotonicity(self):
        result = _tiny_sweep(ExperimentEngine(workers=1))
        assert result["axis"] == [0.25, 0.5, 1.0]
        assert set(result["curves"]) == {"PDede/flush", "PDede/tagged"}
        for curve in result["curves"].values():
            for series in ("aggregate_mpki", "aggregate_ipc", "context_switches",
                           "duplication", "per_tenant_mpki"):
                assert len(curve[series]) == 3
        tagged = result["curves"]["PDede/tagged"]
        duplicated = [point["page"]["duplicated"] for point in tagged["duplication"]]
        # Acceptance: more overlap, more duplicated page allocations -- and a
        # strict excess of tag-distinct over distinct as soon as code is shared.
        assert duplicated == sorted(duplicated)
        for point in tagged["duplication"]:
            assert point["page"]["tag_distinct"] > point["page"]["distinct"]
        # Flush never retags across tenants, so it never duplicates.
        flush = result["curves"]["PDede/flush"]
        assert all(point["page"]["duplicated"] == 0 for point in flush["duplication"])

    def test_partitioned_curve_reports_secondary_partitions(self):
        result = _tiny_sweep(
            ExperimentEngine(workers=1), asid_modes=(ASIDMode.PARTITIONED,)
        )
        curve = result["curves"]["PDede/partitioned"]
        for secondary in curve["secondary_partition_sets"]:
            assert set(secondary) == {"page", "region"}
            assert set(secondary["page"]) == {"svc_a", "svc_b", "svc_c"}
        for partitions in curve["partition_sets"]:
            assert set(partitions) == {"svc_a", "svc_b", "svc_c"}

    def test_warm_cache_replays_sweep_with_zero_simulations(self, tmp_path):
        cold_engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        cold = _tiny_sweep(cold_engine)
        assert cold_engine.stats()["executed"] > 0
        warm_engine = ExperimentEngine(workers=1, cache_dir=tmp_path)
        warm = _tiny_sweep(warm_engine)
        assert warm_engine.stats()["executed"] == 0
        assert warm_engine.stats()["disk_hits"] > 0
        # Duplication and secondary partitions survive the disk round-trip.
        assert warm == cold

    def test_csv_rows_cover_aggregates_tenants_and_duplication(self, tmp_path):
        import csv

        result = _tiny_sweep(ExperimentEngine(workers=1))
        path = tmp_path / "shared.csv"
        shared_footprint.write_csv(result, str(path))
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert rows and set(rows[0]) == set(shared_footprint.CSV_FIELDS)
        records = {row["record"] for row in rows}
        assert "(aggregate)" in records
        # At the tiny scale only the first two tenants ever get scheduled.
        assert {"svc_a", "svc_b"} <= records
        assert {"dup:main", "dup:page", "dup:region"} <= records
        dup_rows = [row for row in rows if row["record"].startswith("dup:")]
        assert all(row["tag_distinct"] != "" and row["distinct"] != "" for row in dup_rows)

    def test_format_report_mentions_duplication(self):
        result = _tiny_sweep(ExperimentEngine(workers=1))
        report = shared_footprint.format_report(result)
        assert "duplicated allocations" in report
        assert "PDede/tagged" in report


class TestResultSchema:
    """Small-fix satellite: to_dict/payload must round-trip every new field."""

    def test_to_dict_covers_every_field(self):
        import dataclasses

        from repro.core.metrics import ScenarioResult

        field_names = {field.name for field in dataclasses.fields(ScenarioResult)}
        job = ScenarioJob(
            scenario="shared_services",
            instructions=4_000,
            warmup_instructions=1_000,
            style=BTBStyle.REDUCED,
            asid_mode=ASIDMode.PARTITIONED,
            budget_kib=14.5,
        )
        outcome = ExperimentEngine(workers=1).run_job(job)
        flattened = outcome.scenario.to_dict()
        assert field_names <= set(flattened), (
            "ScenarioResult.to_dict() dropped fields: "
            f"{sorted(field_names - set(flattened))}"
        )
        assert flattened["duplication"] is not None
        assert flattened["secondary_partition_sets"] is not None
        assert flattened["partition_sets"] is not None
        # Scenario-aware energy accounting: the BTB's access counters and
        # their Table V evaluation must ride along on every scenario cell.
        assert flattened["btb_access_counts"], "BTB access counters missing"
        assert flattened["btb_access_counts"]["reads.total"] > 0
        assert flattened["energy"] is not None
        assert flattened["energy"]["total_energy_uj"] > 0
        assert set(flattened["energy"]["structures"]) >= {"main", "page"}
        # Per-tenant cache metrics: every tenant row carries l2_mpki.
        for tenant_payload in flattened["per_tenant"].values():
            assert "l2_mpki" in tenant_payload

    def test_payload_round_trips_new_counters(self, tmp_path):
        job = ScenarioJob(
            scenario="shared_services",
            instructions=4_000,
            warmup_instructions=1_000,
            style=BTBStyle.PDEDE,
            asid_mode=ASIDMode.PARTITIONED,
            budget_kib=14.5,
        )
        first = ExperimentEngine(workers=1, cache_dir=tmp_path).run_job(job)
        second = ExperimentEngine(workers=1, cache_dir=tmp_path).run_job(job)
        assert second.scenario.duplication == first.scenario.duplication
        assert (
            second.scenario.secondary_partition_sets
            == first.scenario.secondary_partition_sets
        )
        assert second.scenario.btb_access_counts == first.scenario.btb_access_counts
        assert second.scenario.energy == first.scenario.energy
        assert second.scenario.to_dict() == first.scenario.to_dict()

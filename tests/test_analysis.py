"""Tests for the offset-distribution and aggregation helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.aggregate import (
    arithmetic_mean,
    format_table,
    geometric_mean,
    gmean_speedup,
    speedups_over_baseline,
    summarize_results,
)
from repro.analysis.offset_analysis import (
    OffsetDistribution,
    combined_distribution,
    distribution_table,
    offset_distribution,
)
from repro.common.config import ISAStyle
from repro.core.metrics import SimulationResult


def _result(workload: str, ipc: float, mpki: float) -> SimulationResult:
    cycles = 1000.0 / ipc
    return SimulationResult(
        workload=workload, btb_style="btbx", btb_storage_kib=14.5, fdip_enabled=True,
        instructions=1000, cycles=cycles, base_cycles=cycles, flush_cycles=0.0,
        resteer_cycles=0.0, icache_stall_cycles=0.0, btb_extra_cycles=0.0,
        btb_misses_taken=int(mpki), decode_resteers=0, execute_flushes=0,
        direction_mispredictions=0, target_mispredictions=0, taken_branches=100,
        branches=150, l1i_accesses=60, l1i_misses=5, l1i_misses_covered=1,
    )


class TestOffsetDistribution:
    def test_monotone_cdf(self, small_server_trace):
        dist = offset_distribution(small_server_trace)
        cdf = dist.cdf(46)
        assert cdf == sorted(cdf)
        assert cdf[-1] == pytest.approx(1.0)

    def test_quantile_and_way_sizing(self, small_server_trace):
        dist = offset_distribution(small_server_trace)
        ways = dist.way_sizing(8)
        assert len(ways) == 8
        assert ways == sorted(ways)
        assert dist.fraction_covered(ways[-1]) >= 0.99

    def test_combined_distribution_totals(self, small_server_trace, small_client_trace):
        combined = combined_distribution([small_server_trace, small_client_trace])
        total = (
            offset_distribution(small_server_trace).total_branches
            + offset_distribution(small_client_trace).total_branches
        )
        assert combined.total_branches == total

    def test_combined_requires_traces(self):
        with pytest.raises(ValueError):
            combined_distribution([])

    def test_distribution_table(self, small_client_trace):
        rows = distribution_table([offset_distribution(small_client_trace)])
        assert rows[0]["name"] == small_client_trace.name
        assert rows[0]["<=46b"] == pytest.approx(1.0)

    def test_quantile_rejects_bad_fraction(self):
        dist = OffsetDistribution("x", ISAStyle.ARM64)
        with pytest.raises(ValueError):
            dist.quantile_bits(1.5)


class TestAggregation:
    def test_geometric_mean_basics(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0

    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=20))
    def test_gmean_bounded_by_min_max(self, values):
        gmean = geometric_mean(values)
        assert min(values) - 1e-9 <= gmean <= max(values) + 1e-9

    def test_summarize_results(self):
        results = [_result("a", 1.0, 10), _result("b", 2.0, 20)]
        summary = summarize_results(results)
        assert summary["workloads"] == 2
        assert summary["avg_btb_mpki"] == pytest.approx(15.0)

    def test_speedups_and_gmean(self):
        baseline = {"a": _result("a", 1.0, 10), "b": _result("b", 1.0, 10)}
        improved = {"a": _result("a", 1.2, 5), "b": _result("b", 1.5, 5)}
        speedups = speedups_over_baseline(improved, baseline)
        assert speedups["a"] == pytest.approx(1.2)
        assert gmean_speedup(improved, baseline) == pytest.approx(geometric_mean([1.2, 1.5]))

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.1}])
        assert "a" in text and "2.500" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no data)"

"""Unit and property tests for repro.common.bitutils."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common import bitutils
from repro.common.errors import ConfigurationError


class TestMaskAndExtract:
    def test_mask_zero(self):
        assert bitutils.mask(0) == 0

    def test_mask_small(self):
        assert bitutils.mask(3) == 0b111

    def test_mask_negative_rejected(self):
        with pytest.raises(ValueError):
            bitutils.mask(-1)

    def test_extract_bits(self):
        assert bitutils.extract_bits(0b101100, 2, 4) == 0b11

    def test_extract_bits_invalid_range(self):
        with pytest.raises(ValueError):
            bitutils.extract_bits(0b1, 4, 2)

    @given(st.integers(min_value=0, max_value=2**48 - 1), st.integers(min_value=0, max_value=48))
    def test_mask_extract_roundtrip(self, value, width):
        assert bitutils.extract_bits(value, 0, width) == value & bitutils.mask(width)


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert bitutils.is_power_of_two(1)
        assert bitutils.is_power_of_two(4096)
        assert not bitutils.is_power_of_two(0)
        assert not bitutils.is_power_of_two(12)

    def test_log2_exact(self):
        assert bitutils.log2_exact(1024) == 10

    def test_log2_exact_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            bitutils.log2_exact(12)

    def test_log2_ceil(self):
        assert bitutils.log2_ceil(1) == 0
        assert bitutils.log2_ceil(2) == 1
        assert bitutils.log2_ceil(3) == 2
        assert bitutils.log2_ceil(512) == 9

    @given(st.integers(min_value=1, max_value=10**9))
    def test_log2_ceil_bounds(self, value):
        bits = bitutils.log2_ceil(value)
        assert (1 << bits) >= value
        if value > 1:
            assert (1 << (bits - 1)) < value


class TestAlignment:
    def test_align_down(self):
        assert bitutils.align_down(0x1234, 16) == 0x1230

    def test_align_up(self):
        assert bitutils.align_up(0x1234, 16) == 0x1240

    def test_align_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            bitutils.align_up(10, 3)

    @given(st.integers(min_value=0, max_value=2**40), st.sampled_from([1, 2, 4, 16, 64, 4096]))
    def test_align_properties(self, value, alignment):
        down = bitutils.align_down(value, alignment)
        up = bitutils.align_up(value, alignment)
        assert down <= value <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)


class TestFoldXor:
    def test_fold_small_value_unchanged(self):
        assert bitutils.fold_xor(0x5, 12) == 0x5

    def test_fold_known_value(self):
        assert bitutils.fold_xor(0xABC123, 12) == (0xABC ^ 0x123)

    def test_fold_requires_positive_width(self):
        with pytest.raises(ValueError):
            bitutils.fold_xor(0x1, 0)

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=1, max_value=20))
    def test_fold_fits_width(self, value, width):
        assert 0 <= bitutils.fold_xor(value, width) < (1 << width)


class TestConversionsAndPages:
    def test_bits_to_kib(self):
        assert bitutils.bits_to_kib(8 * 1024) == 1.0

    def test_kib_to_bits(self):
        assert bitutils.kib_to_bits(14.5) == 14.5 * 1024 * 8

    def test_same_page(self):
        assert bitutils.same_page(0x401000, 0x401FFC)
        assert not bitutils.same_page(0x401000, 0x402000)

    def test_page_number_and_offset(self):
        assert bitutils.page_number(0x12345678) == 0x12345
        assert bitutils.page_offset(0x12345678) == 0x678

    def test_region_number(self):
        # 48-bit address; region = bits above page(12) + page-number-in-region(16).
        addr = 0x7F00_1234_5678
        assert bitutils.region_number(addr) == addr >> 28

"""Tests for the trace container, formats and slicing helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import ISAStyle
from repro.common.errors import TraceFormatError
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.traces.binary_io import iter_binary_trace, read_binary_trace, write_binary_trace, write_many
from repro.traces.filters import branch_only, iter_windows, split_warmup, taken_branches, window
from repro.traces.text_io import read_text_trace, write_text_trace
from repro.traces.trace import Trace, TraceSet


def _tiny_trace() -> Trace:
    instructions = [
        Instruction.non_branch(0x1000),
        Instruction.branch(0x1004, BranchType.CONDITIONAL, True, 0x1010),
        Instruction.non_branch(0x1010),
        Instruction.branch(0x1014, BranchType.CALL, True, 0x2000),
        Instruction.branch(0x2000, BranchType.RETURN, True, 0x1018),
        Instruction.branch(0x1018, BranchType.CONDITIONAL, False, 0x1004),
    ]
    return Trace("tiny", instructions, metadata={"origin": "test"})


class TestTraceContainer:
    def test_len_iter_getitem(self):
        trace = _tiny_trace()
        assert len(trace) == 6
        assert trace[0].pc == 0x1000
        assert [i.pc for i in trace][-1] == 0x1018

    def test_summary(self):
        summary = _tiny_trace().summary()
        assert summary.instruction_count == 6
        assert summary.branch_count == 4
        assert summary.taken_branch_count == 3
        assert summary.call_count == 1
        assert summary.return_count == 1
        assert 0 < summary.branch_fraction < 1
        assert summary.unique_cache_blocks >= 2

    def test_branches_and_taken_views(self):
        trace = _tiny_trace()
        assert len(list(trace.branches())) == 4
        assert len(list(trace.taken_branches())) == 3

    def test_slice(self):
        piece = _tiny_trace().slice(1, 3)
        assert len(piece) == 2
        assert piece[0].pc == 0x1004

    def test_trace_set(self):
        suite = TraceSet("suite")
        suite.add(_tiny_trace())
        assert len(suite) == 1
        assert suite.names() == ["tiny"]


class TestBinaryFormat:
    def test_roundtrip(self, tmp_path):
        trace = _tiny_trace()
        path = tmp_path / "t.btbx"
        write_binary_trace(trace, path)
        loaded = read_binary_trace(path)
        assert loaded.name == trace.name
        assert loaded.isa == trace.isa
        assert list(loaded) == list(trace)
        assert loaded.metadata["origin"] == "test"

    def test_streaming_reader(self, tmp_path):
        trace = _tiny_trace()
        path = tmp_path / "t.btbx"
        write_binary_trace(trace, path)
        assert list(iter_binary_trace(path)) == list(trace)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.btbx"
        path.write_bytes(b"NOTATRACE")
        with pytest.raises(TraceFormatError):
            read_binary_trace(path)

    def test_truncated_record_rejected(self, tmp_path):
        trace = _tiny_trace()
        path = tmp_path / "t.btbx"
        write_binary_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(TraceFormatError):
            read_binary_trace(path)

    def test_write_many(self, tmp_path):
        paths = write_many([_tiny_trace()], tmp_path / "suite")
        assert len(paths) == 1
        assert paths[0].exists()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**47),
                st.integers(min_value=0, max_value=2**47),
                st.booleans(),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_binary_roundtrip_property(self, tmp_path_factory, rows):
        instructions = [
            Instruction.branch(pc, BranchType.CONDITIONAL, taken, target)
            for pc, target, taken in rows
        ]
        trace = Trace("prop", instructions, isa=ISAStyle.X86)
        path = tmp_path_factory.mktemp("prop") / "trace.btbx"
        write_binary_trace(trace, path)
        assert list(read_binary_trace(path)) == instructions


class TestTextFormat:
    def test_roundtrip(self, tmp_path):
        trace = _tiny_trace()
        path = tmp_path / "t.txt"
        write_text_trace(trace, path)
        loaded = read_text_trace(path)
        assert list(loaded) == list(trace)
        assert loaded.name == "tiny"

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#! name=x isa=arm64\n0x1000 4 conditional 1\n")
        with pytest.raises(TraceFormatError):
            read_text_trace(path)

    def test_unknown_type_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0x1000 4 mystery 1 0x2000\n")
        with pytest.raises(TraceFormatError):
            read_text_trace(path)


class TestFilters:
    def test_split_warmup(self):
        warm, measured = split_warmup(_tiny_trace(), 2)
        assert len(warm) == 2
        assert len(measured) == 4

    def test_split_warmup_longer_than_trace(self):
        warm, measured = split_warmup(_tiny_trace(), 100)
        assert len(warm) == 6
        assert len(measured) == 0

    def test_split_warmup_negative_rejected(self):
        with pytest.raises(ValueError):
            split_warmup(_tiny_trace(), -1)

    def test_window(self):
        piece = window(_tiny_trace(), 2, 3)
        assert len(piece) == 3

    def test_branch_only_and_taken(self):
        trace = _tiny_trace()
        assert len(branch_only(trace)) == 4
        assert len(taken_branches(trace)) == 3

    def test_iter_windows(self):
        pieces = list(iter_windows(_tiny_trace(), 4))
        assert [len(p) for p in pieces] == [4, 2]

"""Tests for the zero-dependency telemetry layer (:mod:`repro.obs`).

Covers the recorder core (span nesting, parent ids, the metrics registry,
drain/merge/write round-trips), the disabled-path contract (NullRecorder
no-ops, <2% overhead against a smoke-scale sweep), the Chrome trace-event
export (deterministic, Perfetto-loadable shape), the report aggregation
(percentiles, pool utilization, cache hit rates, per-driver throughput), the
cross-process story (pool workers ship spans back and the parent merges them
under consistent parent ids), and the CLI surface (``--trace-out``,
``--trace-format chrome``, ``obs report|export``, ``--quiet``/``--verbose``,
``bench compare --json``).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main
from repro.common.config import BTBStyle
from repro.experiments.engine import ExperimentEngine, SimJob
from repro.experiments.runner import clear_trace_cache
from repro.obs import (
    NULL_RECORDER,
    OBS_ENV_VAR,
    OBS_FORMAT_ENV_VAR,
    JsonlRecorder,
    NullRecorder,
    Recorder,
    get_recorder,
    read_trace,
    set_recorder,
    trace_path_from_env,
    use_recorder,
)
from repro.obs.chrome import export_chrome, to_chrome_events
from repro.obs.report import aggregate, format_report, percentile


@pytest.fixture(autouse=True)
def _clean_obs_state(monkeypatch):
    monkeypatch.delenv(OBS_ENV_VAR, raising=False)
    monkeypatch.delenv(OBS_FORMAT_ENV_VAR, raising=False)
    yield
    set_recorder(None)
    clear_trace_cache()


def _tiny_job(style: BTBStyle = BTBStyle.BTBX, workload: str = "client_001") -> SimJob:
    return SimJob(
        workload=workload,
        instructions=4_000,
        warmup_instructions=1_000,
        style=style,
        fdip_enabled=True,
        budget_kib=0.90625,
    )


class TestSpanCore:
    def test_nested_spans_record_parent_ids(self):
        recorder = JsonlRecorder(origin="t")
        with recorder.span("outer") as outer:
            with recorder.span("middle") as middle:
                with recorder.span("inner", depth=3):
                    pass
            with recorder.span("sibling"):
                pass
        events = recorder.drain()
        spans = {e["name"]: e for e in events if e["type"] == "span"}
        assert spans["outer"]["parent_id"] is None
        assert spans["middle"]["parent_id"] == outer.span_id
        assert spans["inner"]["parent_id"] == middle.span_id
        assert spans["sibling"]["parent_id"] == outer.span_id
        assert spans["inner"]["attrs"] == {"depth": 3}
        # Exit order: innermost spans close (and are appended) first.
        names = [e["name"] for e in events if e["type"] == "span"]
        assert names == ["inner", "middle", "sibling", "outer"]

    def test_span_ids_are_origin_prefixed_and_unique(self):
        recorder = JsonlRecorder(origin="t")
        for _ in range(5):
            with recorder.span("x"):
                pass
        ids = [e["span_id"] for e in recorder.drain()]
        assert len(ids) == len(set(ids))
        assert all(span_id.startswith("t-") for span_id in ids)

    def test_default_origins_differ_across_recorders(self):
        """A pool worker builds one recorder per job; ids must never collide."""
        first, second = JsonlRecorder(), JsonlRecorder()
        assert first.origin != second.origin

    def test_span_durations_are_monotonic_nonnegative(self):
        recorder = JsonlRecorder(origin="t")
        with recorder.span("timed"):
            time.sleep(0.01)
        (event,) = recorder.drain()
        assert event["dur"] >= 0.01
        assert event["ts"] > 0

    def test_set_attaches_attributes_mid_span(self):
        recorder = JsonlRecorder(origin="t")
        with recorder.span("job", fixed=1) as span:
            span.set(result=42)
        (event,) = recorder.drain()
        assert event["attrs"] == {"fixed": 1, "result": 42}

    def test_emit_span_records_explicit_timing(self):
        recorder = JsonlRecorder(origin="t")
        recorder.emit_span("engine.queue_wait", ts=123.0, dur=0.5, parent_id="t-9", job="abc")
        (event,) = recorder.drain()
        assert event["ts"] == 123.0
        assert event["dur"] == 0.5
        assert event["parent_id"] == "t-9"
        assert event["attrs"] == {"job": "abc"}

    def test_current_span_id_tracks_the_open_stack(self):
        recorder = JsonlRecorder(origin="t")
        assert recorder.current_span_id() is None
        with recorder.span("outer") as outer:
            assert recorder.current_span_id() == outer.span_id
        assert recorder.current_span_id() is None


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        recorder = JsonlRecorder(origin="t")
        recorder.count("jobs")
        recorder.count("jobs", 4)
        assert recorder.metrics_snapshot()["counters"] == {"jobs": 5}

    def test_gauges_keep_the_latest_value(self):
        recorder = JsonlRecorder(origin="t")
        recorder.gauge("workers", 2)
        recorder.gauge("workers", 8)
        assert recorder.metrics_snapshot()["gauges"] == {"workers": 8}

    def test_histograms_collect_observations(self):
        recorder = JsonlRecorder(origin="t")
        recorder.observe("latency", 0.1)
        recorder.observe("latency", 0.3)
        assert recorder.metrics_snapshot()["histograms"] == {"latency": [0.1, 0.3]}

    def test_drain_flushes_metrics_as_sorted_events(self):
        recorder = JsonlRecorder(origin="t")
        recorder.count("b.count", 2)
        recorder.count("a.count", 1)
        recorder.gauge("g", 3.5)
        recorder.observe("h", 1.0)
        events = recorder.drain()
        assert [(e["type"], e["name"]) for e in events] == [
            ("counter", "a.count"),
            ("counter", "b.count"),
            ("gauge", "g"),
            ("histogram", "h"),
        ]
        # Drain clears everything: a second drain is empty.
        assert recorder.drain() == []


class TestNullRecorder:
    def test_null_recorder_is_disabled_and_inert(self):
        recorder = NullRecorder()
        assert recorder.enabled is False
        with recorder.span("anything", a=1) as span:
            span.set(b=2)
        assert span.span_id is None
        recorder.count("x")
        recorder.gauge("y", 1.0)
        recorder.observe("z", 2.0)

    def test_null_span_is_a_shared_singleton(self):
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")

    def test_recorders_satisfy_the_protocol(self):
        assert isinstance(NULL_RECORDER, Recorder)
        assert isinstance(JsonlRecorder(origin="t"), Recorder)

    def test_disabled_overhead_is_under_two_percent_of_a_sweep(self):
        """The NullRecorder path must cost <2% of a smoke-scale sweep.

        Wall-clock A/B runs are too noisy on shared runners, so the bound is
        established structurally: record one representative cell to count how
        many telemetry calls it makes per simulated instruction, micro-bench
        the disabled primitives, and check the product against the measured
        per-instruction simulation cost.
        """
        from repro.scenarios.run import execute_scenario

        recorder = JsonlRecorder(origin="t")
        started = time.perf_counter()
        with use_recorder(recorder):
            execute_scenario(
                "consolidated_server",
                style=BTBStyle.BTBX,
                instructions=8_000,
                warmup_instructions=2_000,
                budget_kib=14.5,
            )
        cell_wall_s = time.perf_counter() - started
        events = recorder.drain()
        spans = sum(1 for e in events if e["type"] == "span")
        counter_calls = sum(e["value"] for e in events if e["type"] == "counter")
        calls = spans + counter_calls
        assert spans > 0

        rounds = 100_000
        started = time.perf_counter()
        for _ in range(rounds):
            with NULL_RECORDER.span("bench", attr=1):
                pass
            NULL_RECORDER.count("bench")
        per_call_s = (time.perf_counter() - started) / (2 * rounds)

        overhead_s = calls * per_call_s
        assert overhead_s < 0.02 * cell_wall_s, (
            f"{calls} disabled telemetry calls at {per_call_s * 1e6:.3f}us each "
            f"cost {overhead_s:.6f}s against a {cell_wall_s:.3f}s cell"
        )


class TestActiveRecorderPlumbing:
    def test_default_recorder_is_the_null_singleton(self):
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_scopes_and_restores(self):
        recorder = JsonlRecorder(origin="t")
        with use_recorder(recorder):
            assert get_recorder() is recorder
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder_none_restores_the_null_recorder(self):
        set_recorder(JsonlRecorder(origin="t"))
        set_recorder(None)
        assert get_recorder() is NULL_RECORDER

    def test_trace_path_from_env(self, monkeypatch):
        assert trace_path_from_env() is None
        monkeypatch.setenv(OBS_ENV_VAR, "  ")
        assert trace_path_from_env() is None
        monkeypatch.setenv(OBS_ENV_VAR, "out.jsonl")
        assert trace_path_from_env() == "out.jsonl"


class TestMergeAndSerialization:
    def test_merge_reparents_worker_root_spans(self):
        parent = JsonlRecorder(origin="parent")
        worker = JsonlRecorder(origin="worker")
        with worker.span("engine.execute"):
            with worker.span("job.simulate"):
                pass
        shipped = worker.drain()
        with parent.span("engine.run_jobs") as run_span:
            parent.merge(shipped, parent_id=run_span.span_id)
        events = parent.drain()
        spans = {e["name"]: e for e in events if e["type"] == "span"}
        assert spans["engine.execute"]["parent_id"] == run_span.span_id
        # Non-root worker spans keep their original parent.
        assert spans["job.simulate"]["parent_id"] == spans["engine.execute"]["span_id"]
        ids = [e["span_id"] for e in events if e["type"] == "span"]
        assert len(ids) == len(set(ids))

    def test_merge_does_not_mutate_the_shipped_events(self):
        worker = JsonlRecorder(origin="worker")
        with worker.span("root"):
            pass
        shipped = worker.drain()
        JsonlRecorder(origin="parent").merge(shipped, parent_id="parent-0")
        assert shipped[0]["parent_id"] is None

    def test_write_read_round_trip(self, tmp_path):
        recorder = JsonlRecorder(origin="t")
        with recorder.span("a", k="v"):
            pass
        recorder.count("c", 3)
        path = recorder.write(tmp_path / "trace.jsonl")
        events = read_trace(path)
        assert [e["type"] for e in events] == ["span", "counter"]
        assert events[0]["attrs"] == {"k": "v"}
        assert events[1]["value"] == 3


class TestChromeExport:
    def _sample_events(self):
        recorder = JsonlRecorder(origin="p1")
        with recorder.span("engine.run_jobs", jobs=2):
            with recorder.span("engine.execute"):
                pass
        recorder.count("engine.executed", 2)
        return recorder.drain()

    def test_spans_become_complete_events(self):
        events = self._sample_events()
        chrome = to_chrome_events(events)
        complete = [e for e in chrome if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"engine.run_jobs", "engine.execute"}
        for event in complete:
            assert event["cat"] == "engine"
            assert event["tid"] == "p1"
            assert event["ts"] >= 0.0
            assert "span_id" in event["args"]

    def test_counters_become_counter_events(self):
        chrome = to_chrome_events(self._sample_events())
        (counter,) = [e for e in chrome if e["ph"] == "C"]
        assert counter["name"] == "engine.executed"
        assert counter["args"] == {"value": 2}
        assert counter["tid"] == "metrics"

    def test_export_is_deterministic_and_loadable(self, tmp_path):
        events = self._sample_events()
        first = export_chrome(events, tmp_path / "a.json")
        second = export_chrome(events, tmp_path / "b.json")
        assert first.read_bytes() == second.read_bytes()
        document = json.loads(first.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert isinstance(document["traceEvents"], list)
        assert document["traceEvents"]

    def test_empty_trace_exports_cleanly(self, tmp_path):
        path = export_chrome([], tmp_path / "empty.json")
        assert json.loads(path.read_text())["traceEvents"] == []


class TestReport:
    def test_percentile_is_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.95) == 3.0
        values = [float(v) for v in range(1, 11)]
        # index = round(q * (n - 1)): banker's rounding puts the median at 5.
        assert percentile(values, 0.50) == 5.0
        assert percentile(values, 0.95) == 10.0

    def test_aggregate_builds_phase_table_and_derived_sections(self):
        recorder = JsonlRecorder(origin="t")
        recorder.gauge("engine.workers", 2)
        recorder.count("engine.submitted", 4)
        recorder.count("engine.memo_hits", 1)
        recorder.count("engine.disk_hits", 1)
        recorder.count("engine.executed", 2)
        recorder.count("trace.store.hits", 3)
        recorder.count("trace.store.misses", 1)
        recorder.emit_span("engine.run_jobs", ts=0.0, dur=2.0)
        recorder.emit_span("engine.execute", ts=0.0, dur=1.0)
        recorder.emit_span("engine.execute", ts=1.0, dur=1.0)
        recorder.emit_span("driver.fig09", ts=0.0, dur=2.0, instructions=1_000_000)
        report = aggregate(recorder.drain())
        assert report["phases"]["engine.execute"] == {
            "count": 2, "total_s": 2.0, "p50_s": 1.0, "p95_s": 1.0,
        }
        assert report["pool"] == {
            "workers": 2,
            "run_jobs_wall_s": 2.0,
            "execute_busy_s": 2.0,
            "utilization": 0.5,
        }
        assert report["caches"]["engine"]["hit_rate"] == 0.5
        assert report["caches"]["trace_store"]["hit_rate"] == 0.75
        assert report["drivers"]["fig09"]["ips"] == 500_000.0

    def test_format_report_renders_the_sections(self):
        recorder = JsonlRecorder(origin="t")
        recorder.emit_span("scenario.simulate", ts=0.0, dur=1.5)
        recorder.count("engine.submitted", 2)
        recorder.count("engine.executed", 2)
        text = format_report(aggregate(recorder.drain()))
        assert "phase" in text and "scenario.simulate" in text
        assert "engine cache: 2 submitted" in text
        assert "counters:" in text


class TestEngineIntegration:
    def test_inline_run_records_engine_and_job_spans(self, tmp_path):
        recorder = JsonlRecorder(origin="t")
        with use_recorder(recorder):
            ExperimentEngine(workers=1, cache_dir=tmp_path / "cache").run_jobs(
                [_tiny_job()]
            )
        events = recorder.drain()
        names = {e["name"] for e in events if e["type"] == "span"}
        assert {"engine.run_jobs", "engine.memo_lookup", "engine.cache_read",
                "engine.execute", "job.simulate", "engine.cache_write"} <= names
        counters = {e["name"]: e["value"] for e in events if e["type"] == "counter"}
        assert counters["engine.submitted"] == 1
        assert counters["engine.executed"] == 1

    def test_memo_hits_are_counted_not_reexecuted(self, tmp_path):
        recorder = JsonlRecorder(origin="t")
        engine = ExperimentEngine(workers=1, cache_dir=tmp_path / "cache")
        with use_recorder(recorder):
            engine.run_jobs([_tiny_job()])
            engine.run_jobs([_tiny_job()])
        counters = {
            e["name"]: e["value"] for e in recorder.drain() if e["type"] == "counter"
        }
        assert counters["engine.memo_hits"] == 1
        assert counters["engine.executed"] == 1

    def test_pooled_run_merges_worker_spans_under_run_jobs(self, tmp_path):
        jobs = [_tiny_job(style) for style in (BTBStyle.BTBX, BTBStyle.CONVENTIONAL)]
        recorder = JsonlRecorder(origin="parent")
        with use_recorder(recorder):
            ExperimentEngine(workers=2, cache_dir=tmp_path / "cache").run_jobs(jobs)
        events = recorder.drain()
        spans = [e for e in events if e["type"] == "span"]
        ids = [s["span_id"] for s in spans]
        assert len(ids) == len(set(ids)), "span ids must be globally unique"
        id_set = set(ids)
        assert all(
            s["parent_id"] is None or s["parent_id"] in id_set for s in spans
        ), "merged trace must not dangle parent ids"
        (run_jobs,) = [s for s in spans if s["name"] == "engine.run_jobs"]
        executes = [s for s in spans if s["name"] == "engine.execute"]
        assert len(executes) == 2
        assert all(s["parent_id"] == run_jobs["span_id"] for s in executes)
        assert any(s["pid"] != run_jobs["pid"] for s in executes), (
            "worker spans must come from worker processes"
        )
        waits = [s for s in spans if s["name"] == "engine.queue_wait"]
        assert len(waits) == 2
        assert all(s["parent_id"] == run_jobs["span_id"] for s in waits)

    def test_pooled_run_ships_no_telemetry_when_disabled(self, tmp_path):
        """The worker return stays lean (no third-element payload) when off."""
        summary = ExperimentEngine(workers=2, cache_dir=tmp_path / "cache").run_jobs(
            [_tiny_job()]
        )
        assert summary
        assert get_recorder() is NULL_RECORDER


class TestCliSurface:
    def test_trace_out_writes_a_jsonl_trace(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(
            ["scenario", "run", "noisy_neighbor", "--scale", "smoke",
             "--cache-dir", str(tmp_path / "cache"), "--trace-out", str(trace)]
        ) == 0
        events = read_trace(trace)
        names = {e["name"] for e in events if e["type"] == "span"}
        assert "scenario.simulate" in names and "scenario.compose" in names
        assert f"(telemetry trace written to {trace})" in capsys.readouterr().out

    def test_trace_format_chrome_writes_trace_events(self, tmp_path):
        trace = tmp_path / "run.chrome.json"
        assert main(
            ["scenario", "run", "noisy_neighbor", "--scale", "smoke",
             "--cache-dir", str(tmp_path / "cache"),
             "--trace-out", str(trace), "--trace-format", "chrome"]
        ) == 0
        document = json.loads(trace.read_text())
        assert document["traceEvents"]

    def test_env_var_enables_recording(self, tmp_path, monkeypatch):
        trace = tmp_path / "env.jsonl"
        monkeypatch.setenv(OBS_ENV_VAR, str(trace))
        assert main(
            ["scenario", "run", "noisy_neighbor", "--scale", "smoke",
             "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        assert read_trace(trace)

    def test_obs_report_renders_phase_table(self, tmp_path, capsys):
        recorder = JsonlRecorder(origin="t")
        recorder.emit_span("scenario.simulate", ts=0.0, dur=1.0)
        recorder.count("engine.submitted", 1)
        path = recorder.write(tmp_path / "trace.jsonl")
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "scenario.simulate" in out and "phase" in out

    def test_obs_report_json(self, tmp_path, capsys):
        recorder = JsonlRecorder(origin="t")
        recorder.emit_span("scenario.simulate", ts=0.0, dur=1.0)
        path = recorder.write(tmp_path / "trace.jsonl")
        json_out = tmp_path / "report.json"
        assert main(["obs", "report", str(path), "--json", str(json_out)]) == 0
        report = json.loads(json_out.read_text())
        assert report["phases"]["scenario.simulate"]["count"] == 1

    def test_obs_export_derives_the_output_name(self, tmp_path, capsys):
        recorder = JsonlRecorder(origin="t")
        recorder.emit_span("a", ts=0.0, dur=1.0)
        path = recorder.write(tmp_path / "trace.jsonl")
        assert main(["obs", "export", str(path)]) == 0
        exported = tmp_path / "trace.chrome.json"
        assert exported.exists()
        assert json.loads(exported.read_text())["traceEvents"]

    def test_quiet_suppresses_info_but_keeps_results(self, tmp_path, capsys):
        trace = tmp_path / "q.jsonl"
        assert main(
            ["--quiet", "scenario", "run", "noisy_neighbor", "--scale", "smoke",
             "--cache-dir", str(tmp_path / "cache"), "--trace-out", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "BTB" in out  # the scenario report still prints
        assert "telemetry trace written" not in out

    def test_quiet_and_verbose_are_mutually_exclusive(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--quiet", "--verbose", "scenario", "list"])
        assert excinfo.value.code == 2

    def test_bench_compare_json_writes_per_field_verdict(self, tmp_path):
        from test_cli import _fake_record

        fresh = tmp_path / "fresh.json"
        baseline = tmp_path / "history.jsonl"
        fresh.write_text(json.dumps(_fake_record("new", 95.0, 190.0)) + "\n")
        baseline.write_text(json.dumps(_fake_record("old", 100.0, 200.0)) + "\n")
        verdict_path = tmp_path / "verdict.json"
        assert main(
            ["bench", "compare", "--fresh", str(fresh), "--baseline", str(baseline),
             "--json", str(verdict_path)]
        ) == 0
        verdict = json.loads(verdict_path.read_text())
        assert verdict["regressed"] is False
        assert verdict["comparisons"]["python"]["ratio"] == 0.95
        assert verdict["comparisons"]["numpy"]["regressed"] is False


class TestBenchPhases:
    def test_phase_seconds_splits_spans_by_name(self):
        from repro.experiments.bench import _phase_seconds

        events = [
            {"type": "span", "name": "trace.decode", "dur": 0.25},
            {"type": "span", "name": "trace.build", "dur": 0.25},
            {"type": "span", "name": "scenario.compose", "dur": 1.0},
            {"type": "span", "name": "scenario.simulate", "dur": 2.0},
            {"type": "span", "name": "engine.run_jobs", "dur": 9.0},
            {"type": "counter", "name": "trace.decode", "value": 3},
        ]
        assert _phase_seconds(events) == {
            "decode_s": 0.5, "compose_s": 1.0, "simulate_s": 2.0,
        }

    def test_format_record_includes_the_phase_breakdown(self):
        from repro.experiments.bench import format_record
        from test_cli import _fake_record

        record = _fake_record("abc", 100.0)
        record["backends"]["python"]["phases"] = {
            "decode_s": 0.1, "compose_s": 0.2, "simulate_s": 0.7,
        }
        text = format_record(record)
        assert "decode 0.100 s / compose 0.200 s / simulate 0.700 s" in text

    def test_v1_records_without_phases_still_format(self):
        from repro.experiments.bench import format_record
        from test_cli import _fake_record

        assert "instructions/s" in format_record(_fake_record("abc", 100.0))

"""Tests for the PDede and Reduced-BTB (Seznec) organizations."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.btb.pdede import PDedeBTB
from repro.btb.rbtb import ReducedBTB


def _branch(pc, target, branch_type=BranchType.CONDITIONAL):
    return Instruction.branch(pc, branch_type, True, target)


class TestPDedeGeometry:
    def test_entry_bits_match_figure7(self):
        btb = PDedeBTB(entries=3184, page_entries=512)
        assert btb.same_page_entry_bits() == 29
        # different-page: 29 - delta(1) + page pointer(9) + region pointer(2) = 39
        assert btb.different_page_entry_bits() == 39
        assert btb.average_entry_bits() == 34.0

    def test_page_and_region_entry_bits(self):
        btb = PDedeBTB(entries=64, page_entries=32)
        assert btb.page_entry_bits() == 20
        assert btb.region_entry_bits() == 22

    def test_same_page_way_reservation(self):
        btb = PDedeBTB(entries=64, page_entries=16, same_page_way_fraction=0.5)
        assert btb.same_page_ways == 4
        assert btb._eligible_ways(True) == list(range(8))
        assert btb._eligible_ways(False) == [4, 5, 6, 7]

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            PDedeBTB(entries=63)
        with pytest.raises(ConfigurationError):
            PDedeBTB(entries=64, page_entries=0)
        with pytest.raises(ConfigurationError):
            PDedeBTB(entries=64, same_page_way_fraction=1.5)


class TestPDedeBehaviour:
    def test_same_page_branch_single_cycle(self):
        btb = PDedeBTB(entries=64, page_entries=16)
        branch = _branch(0x401000, 0x401200)
        btb.update(branch)
        result = btb.lookup(branch.pc)
        assert result.hit
        assert result.target == branch.target
        assert result.latency_cycles == 1

    def test_different_page_branch_two_cycles(self):
        btb = PDedeBTB(entries=64, page_entries=16)
        branch = _branch(0x401000, 0x480000, BranchType.CALL)
        btb.update(branch)
        result = btb.lookup(branch.pc)
        assert result.hit
        assert result.target == branch.target
        assert result.latency_cycles == 2

    def test_returns_do_not_allocate_pages(self):
        btb = PDedeBTB(entries=64, page_entries=16)
        btb.update(_branch(0x401000, 0x7F0000000000, BranchType.RETURN))
        counts = btb.access_counts()
        assert counts.get("writes.page", 0) == 0
        assert btb.lookup(0x401000).hit

    def test_page_deduplication(self):
        btb = PDedeBTB(entries=64, page_entries=16)
        # Two branches targeting the same page share one Page-BTB entry.
        btb.update(_branch(0x401000, 0x480010, BranchType.CALL))
        btb.update(_branch(0x402000, 0x480020, BranchType.CALL))
        assert btb.access_counts()["writes.page"] == 1

    def test_page_eviction_invalidates_pointers(self):
        btb = PDedeBTB(entries=64, page_entries=2, page_associativity=2)
        targets = [0x480000, 0x980000, 0x1480000]
        branches = [_branch(0x401000 + i * 0x100, t, BranchType.CALL) for i, t in enumerate(targets)]
        for branch in branches:
            btb.update(branch)
        # At most two distinct pages fit; at least one earlier branch must now miss
        # (its page entry was evicted and the main entry invalidated).
        hits = [btb.lookup(b.pc).hit for b in branches]
        assert hits[-1]
        assert not all(hits)

    def test_stale_same_page_entry_reallocated_when_target_moves(self):
        btb = PDedeBTB(entries=8, page_entries=16, same_page_way_fraction=1.0)
        near = _branch(0x401000, 0x401100, BranchType.INDIRECT)
        btb.update(near)
        far = _branch(0x401000, 0x980000, BranchType.INDIRECT)
        btb.update(far)
        # With every way reserved for same-page entries there is nowhere to put
        # the far target, so the lookup must not return a wrong target.
        result = btb.lookup(0x401000)
        assert not result.hit or result.target == far.target

    def test_capacity_and_storage(self):
        btb = PDedeBTB(entries=3184, page_entries=512)
        assert btb.capacity_entries() == 3184
        assert 13.0 < btb.storage_kib() < 15.0


class TestReducedBTB:
    def test_hit_recovers_target_with_two_cycle_latency(self):
        btb = ReducedBTB(entries=64, page_entries=16)
        branch = _branch(0x401000, 0x480040, BranchType.CALL)
        btb.update(branch)
        result = btb.lookup(branch.pc)
        assert result.hit
        assert result.target == branch.target
        assert result.latency_cycles == 2

    def test_page_number_deduplicated(self):
        btb = ReducedBTB(entries=64, page_entries=16)
        btb.update(_branch(0x401000, 0x480010))
        btb.update(_branch(0x402000, 0x480020))
        assert btb.access_counts()["writes.page"] == 1

    def test_page_eviction_invalidates_main_entries(self):
        btb = ReducedBTB(entries=64, page_entries=2)
        branches = [
            _branch(0x401000 + i * 0x100, 0x480000 + i * 0x10000, BranchType.CALL)
            for i in range(3)
        ]
        for branch in branches:
            btb.update(branch)
        assert not all(btb.lookup(b.pc).hit for b in branches)

    def test_storage_accounts_for_both_partitions(self):
        btb = ReducedBTB(entries=64, page_entries=16)
        expected = 64 * btb.main_entry_bits() + 16 * btb.page_entry_bits()
        assert btb.storage_bits() == expected

    def test_main_entry_smaller_than_conventional(self):
        btb = ReducedBTB(entries=64, page_entries=128)
        assert btb.main_entry_bits() < 64

"""Unit and property tests for the replacement-policy state."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.lru import LRUState, TreePLRUState


class TestLRU:
    def test_requires_positive_ways(self):
        with pytest.raises(ValueError):
            LRUState(0)

    def test_victim_is_least_recently_used(self):
        lru = LRUState(4)
        for way in (0, 1, 2, 3, 0, 1):
            lru.touch(way)
        assert lru.victim() == 2

    def test_untouched_ways_are_victims_first(self):
        lru = LRUState(4)
        lru.touch(1)
        assert lru.victim() in (0, 2, 3)

    def test_constrained_victim(self):
        lru = LRUState(8)
        for way in range(8):
            lru.touch(way)
        lru.touch(6)
        # Only ways 6 and 7 are eligible: 7 is older.
        assert lru.victim([6, 7]) == 7

    def test_constrained_victim_requires_candidates(self):
        with pytest.raises(ValueError):
            LRUState(4).victim([])

    def test_out_of_range_way_rejected(self):
        lru = LRUState(2)
        with pytest.raises(IndexError):
            lru.touch(2)
        with pytest.raises(IndexError):
            lru.victim([5])

    def test_recency_order(self):
        lru = LRUState(3)
        lru.touch(2)
        lru.touch(0)
        order = lru.recency_order()
        assert order[-1] == 0
        assert order[-2] == 2

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60))
    def test_victim_never_most_recent(self, touches):
        lru = LRUState(8)
        for way in touches:
            lru.touch(way)
        assert lru.victim() != touches[-1] or len(set(touches)) == 1

    @given(
        st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60),
        st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=8),
    )
    def test_constrained_victim_is_eligible(self, touches, eligible):
        lru = LRUState(8)
        for way in touches:
            lru.touch(way)
        assert lru.victim(sorted(eligible)) in eligible


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRUState(6)

    def test_single_way(self):
        plru = TreePLRUState(1)
        plru.touch(0)
        assert plru.victim() == 0

    def test_victim_avoids_recent_way(self):
        plru = TreePLRUState(4)
        plru.touch(0)
        assert plru.victim() != 0

    def test_eligible_fallback(self):
        plru = TreePLRUState(4)
        plru.touch(0)
        victim = plru.victim([1])
        assert victim == 1

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=40))
    def test_victim_in_range(self, touches):
        plru = TreePLRUState(8)
        for way in touches:
            plru.touch(way)
        assert 0 <= plru.victim() < 8

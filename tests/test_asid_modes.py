"""Differential ASID-mode test matrix.

Three families of differential guarantees, checked for every scenario preset
and every BTB organization rather than against pinned numbers (the golden
suite owns bit-exactness):

* **solo invariance** -- a one-tenant scenario runs entirely in ASID 0, so
  ``flush``, ``tagged`` and ``partitioned`` retention must produce bit-exact
  identical results for every preset x organization (there is nothing to
  flush, tag or partition away from a lone tenant);
* **remap-off invariance** -- ``shared_fraction == 0.0`` must reproduce the
  historical composer output bit-exactly (no remapped traces, identical
  streams), which is what keeps the legacy golden cells byte-identical;
* **duplication floor** -- full overlap under ``tagged`` never *lowers*
  tag-distinct allocations below the disjoint (``shared_fraction == 0``)
  case: per-tenant footprints are remapped bijectively, so the per-ASID
  working sets -- and with them the tag-distinct counts of the reference-time
  duplication counters -- are invariant, while the distinct counts shrink as
  sharing grows.
"""

from __future__ import annotations

import pytest

from repro.common.config import ASIDMode, BTBStyle
from repro.experiments.engine import _result_to_payload
from repro.experiments.runner import clear_trace_cache
from repro.scenarios.presets import PRESET_NAMES, get_scenario
from repro.scenarios.run import execute_scenario
from repro.scenarios.spec import ScenarioSpec, TenantSpec
from repro.traces.store import default_store


@pytest.fixture(autouse=True)
def _bounded_traces():
    yield
    clear_trace_cache()


#: Every BTB organization the matrix covers.
MATRIX_STYLES = (
    BTBStyle.CONVENTIONAL,
    BTBStyle.REDUCED,
    BTBStyle.PDEDE,
    BTBStyle.BTBX,
    BTBStyle.IDEAL,
)

MATRIX_MODES = (ASIDMode.FLUSH, ASIDMode.TAGGED, ASIDMode.PARTITIONED)

#: Small but non-trivial: enough instructions for warmup plus several
#: scheduling turns of every preset.
INSTRUCTIONS = 3_000
WARMUP = 600


def solo_variant(preset: str) -> ScenarioSpec:
    """The preset reduced to its first tenant (the solo anchor)."""
    spec = get_scenario(preset)
    first = spec.tenants[0]
    return ScenarioSpec(
        name=f"{spec.name}@solo",
        tenants=(TenantSpec(first.name, first.workload, first.weight),),
        quantum_instructions=spec.quantum_instructions,
        policy=spec.policy,
        switch_semantics=spec.switch_semantics,
        shared_fraction=spec.shared_fraction,
    )


def result_fingerprint(result) -> dict:
    """Everything comparable about a scenario result, payload-flattened."""
    return {
        "context_switches": result.context_switches,
        "aggregate": _result_to_payload(result.aggregate),
        "per_tenant": {
            name: _result_to_payload(tenant) for name, tenant in result.per_tenant.items()
        },
        "duplication": result.duplication,
    }


class TestSoloInvariance:
    @pytest.mark.parametrize("preset", PRESET_NAMES)
    @pytest.mark.parametrize("style", MATRIX_STYLES, ids=lambda s: s.value)
    def test_solo_tenants_bit_exact_across_all_asid_modes(self, preset, style):
        """A lone tenant must be indistinguishable across retention modes.

        Warm presets keep ASID 0 for the whole run, so all three modes have
        literally nothing to flush, tag or partition: every result is
        bit-exact.  Cold presets mint a fresh ASID per scheduling turn even
        solo -- flushing then legitimately differs from retention -- but
        ``tagged`` and ``partitioned`` must still agree bit-exactly (a single
        tenant's partition is the whole structure).
        """
        spec = solo_variant(preset)
        cold = spec.switch_semantics == "cold"
        fingerprints = {}
        switches = {}
        for mode in MATRIX_MODES:
            result = execute_scenario(
                spec,
                style=style,
                asid_mode=mode,
                instructions=INSTRUCTIONS,
                warmup_instructions=WARMUP,
            )
            if not cold:
                assert result.context_switches == 0
            switches[mode] = result.context_switches
            fingerprints[mode] = result_fingerprint(result)
        assert len(set(switches.values())) == 1
        assert fingerprints[ASIDMode.PARTITIONED] == fingerprints[ASIDMode.TAGGED], (
            f"{preset}/{style.value}: solo partitioned diverged from tagged"
        )
        if not cold:
            assert fingerprints[ASIDMode.TAGGED] == fingerprints[ASIDMode.FLUSH], (
                f"{preset}/{style.value}: solo tagged diverged from flush"
            )


class TestRemapOffInvariance:
    def test_zero_shared_fraction_reproduces_legacy_composer_stream(self):
        """An explicit ``shared_fraction=0.0`` spec must stream the raw input
        traces exactly as the pre-shared-footprint composer did: same tenant
        schedule, same ASIDs, same instruction objects (no remapped copies)."""
        from repro.scenarios.compose import TraceComposer

        spec = ScenarioSpec(
            name="legacy_pair",
            tenants=(TenantSpec("a", "server_001"), TenantSpec("b", "client_001")),
            quantum_instructions=512,
            shared_fraction=0.0,
        )
        store = default_store()
        traces = {w: store.get(w, 4_000) for w in set(spec.workloads)}
        composer = TraceComposer(spec, traces)
        # No remapping: tenants replay the *identical* trace objects.
        assert composer.tenant_trace(0) is traces["server_001"]
        assert composer.tenant_trace(1) is traces["client_001"]

        # And the schedule is the plain alternating cursor walk of old.
        from repro.traces.trace import TraceCursor

        cursors = {
            "a": TraceCursor(traces["server_001"]),
            "b": TraceCursor(traces["client_001"]),
        }
        expected = []
        order = ["a", "b"]
        turn = 0
        remaining = 3_000
        while remaining > 0:
            tenant = order[turn % 2]
            count = min(512, remaining)
            for instruction in cursors[tenant].take(count):
                expected.append((turn % 2, tenant, instruction))
            remaining -= count
            turn += 1
        assert list(composer.stream(3_000)) == expected

    @pytest.mark.parametrize("style", (BTBStyle.BTBX, BTBStyle.PDEDE), ids=lambda s: s.value)
    def test_zero_shared_fraction_simulates_identically_to_default_spec(self, style):
        base = get_scenario("consolidated_server")
        assert base.shared_fraction == 0.0
        explicit = ScenarioSpec(
            name=base.name,
            tenants=base.tenants,
            quantum_instructions=base.quantum_instructions,
            policy=base.policy,
            switch_semantics=base.switch_semantics,
            shared_fraction=0.0,
        )
        left = execute_scenario(
            base, style=style, asid_mode=ASIDMode.TAGGED,
            instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
        )
        right = execute_scenario(
            explicit, style=style, asid_mode=ASIDMode.TAGGED,
            instructions=INSTRUCTIONS, warmup_instructions=WARMUP,
        )
        assert result_fingerprint(left) == result_fingerprint(right)


#: Cache hierarchy context-switch modes (``None`` = the legacy shared,
#: untagged hierarchy that ignores switches entirely).
CACHE_MATRIX_MODES = (None, ASIDMode.FLUSH, ASIDMode.TAGGED, ASIDMode.PARTITIONED)


class TestCacheModeInvariance:
    """The cache-mode counterpart of the BTB matrix: solo runs must not be
    able to tell the hierarchy modes apart, and retention must never *add*
    instruction-supply misses over flushing."""

    @pytest.mark.parametrize("preset", PRESET_NAMES)
    def test_solo_tenants_bit_exact_across_cache_modes(self, preset):
        """A lone tenant must be indistinguishable across hierarchy modes.

        Warm presets keep ASID 0 for the whole run, so all three cache modes
        *and* the legacy hierarchy have literally nothing to flush, tag or
        partition: every result is bit-exact (tagged == legacy is the
        single-ASID acceptance criterion).  Cold presets mint a fresh ASID
        per scheduling turn even solo -- flushing and legacy sharing then
        legitimately differ from tagging -- but ``tagged`` and
        ``partitioned`` must still agree bit-exactly (a single tenant's
        partition is the whole hierarchy).
        """
        spec = solo_variant(preset)
        cold = spec.switch_semantics == "cold"
        fingerprints = {}
        for cache_mode in CACHE_MATRIX_MODES:
            result = execute_scenario(
                spec,
                style=BTBStyle.BTBX,
                asid_mode=ASIDMode.TAGGED,
                instructions=INSTRUCTIONS,
                warmup_instructions=WARMUP,
                cache_mode=cache_mode,
            )
            fingerprints[cache_mode] = result_fingerprint(result)
        assert fingerprints[ASIDMode.PARTITIONED] == fingerprints[ASIDMode.TAGGED], (
            f"{preset}: solo partitioned hierarchy diverged from tagged"
        )
        if not cold:
            assert all(fp == fingerprints[None] for fp in fingerprints.values()), (
                f"{preset}: solo cache modes diverged from the legacy hierarchy"
            )

    def test_tagged_equals_legacy_shared_hierarchy_with_single_asid(self):
        """Acceptance: with one ASID, the tagged (PIPT-style) hierarchy is
        bit-exactly the legacy shared one -- tagging with the neutral color
        is the identity, so the L1-I/L2 numbers cannot move."""
        result_legacy = execute_scenario(
            "solo_baseline",
            style=BTBStyle.BTBX,
            asid_mode=ASIDMode.TAGGED,
            instructions=INSTRUCTIONS,
            warmup_instructions=WARMUP,
            cache_mode=None,
        )
        result_tagged = execute_scenario(
            "solo_baseline",
            style=BTBStyle.BTBX,
            asid_mode=ASIDMode.TAGGED,
            instructions=INSTRUCTIONS,
            warmup_instructions=WARMUP,
            cache_mode=ASIDMode.TAGGED,
        )
        assert result_tagged.cache_mode == "tagged"
        assert result_legacy.cache_mode is None
        assert result_fingerprint(result_tagged) == result_fingerprint(result_legacy)

    @pytest.mark.parametrize("preset", ("consolidated_server", "shared_services"))
    def test_flush_never_beats_retention_on_l1i_misses(self, preset):
        """Flushing every level on every switch can only lose instruction
        supply relative to tagged retention: the tagged hierarchy sees the
        same per-tenant access streams with strictly more lines surviving."""
        misses = {}
        for cache_mode in (ASIDMode.FLUSH, ASIDMode.TAGGED):
            result = execute_scenario(
                preset,
                style=BTBStyle.BTBX,
                asid_mode=ASIDMode.TAGGED,
                instructions=8_000,
                warmup_instructions=2_000,
                cache_mode=cache_mode,
            )
            misses[cache_mode] = result.aggregate.l1i_misses
        assert misses[ASIDMode.FLUSH] >= misses[ASIDMode.TAGGED], misses

    def test_partitioned_hierarchy_reports_per_level_slices(self):
        result = execute_scenario(
            "noisy_neighbor",
            style=BTBStyle.BTBX,
            asid_mode=ASIDMode.TAGGED,
            instructions=INSTRUCTIONS,
            warmup_instructions=WARMUP,
            cache_mode=ASIDMode.PARTITIONED,
        )
        assert result.cache_partition_sets is not None
        assert set(result.cache_partition_sets) == {"l1i", "l1d", "l2", "llc"}
        spec = get_scenario("noisy_neighbor")
        weights = dict(zip(spec.tenant_names, spec.partition_weights))
        for level, slices in result.cache_partition_sets.items():
            assert set(slices) == set(spec.tenant_names)
            # Weight-proportional: the heavy tenant gets the biggest slice.
            assert slices["noisy"] == max(slices.values()), (level, slices)
        # Non-partitioned modes report nothing.
        tagged = execute_scenario(
            "noisy_neighbor",
            style=BTBStyle.BTBX,
            asid_mode=ASIDMode.TAGGED,
            instructions=INSTRUCTIONS,
            warmup_instructions=WARMUP,
            cache_mode=ASIDMode.TAGGED,
        )
        assert tagged.cache_partition_sets is None


class TestDuplicationFloor:
    """Full overlap can only concentrate the footprint, never shrink the
    per-ASID working sets the tagged structures must provide for."""

    def _pair_spec(self, fraction: float) -> ScenarioSpec:
        return ScenarioSpec(
            name=f"dup_pair@{fraction:g}",
            tenants=(TenantSpec("left", "server_009"), TenantSpec("right", "server_009")),
            quantum_instructions=1_024,
            shared_fraction=fraction,
        )

    #: Structures for which the floor is exact: the remap is a per-tenant
    #: bijection on branch PCs and on target pages, so per-ASID working sets
    #: -- the tag-distinct counts -- cannot shrink under full overlap.  The
    #: Region-BTB aggregates pages into 256 MB regions (compaction merges
    #: regions, legitimately shrinking per-tenant region counts) and BTB-X
    #: splits branches between main and companion by offset width (which the
    #: remap changes), so those structures only get the internal-consistency
    #: checks.
    FLOOR_STRUCTURES = {
        BTBStyle.CONVENTIONAL: ("main",),
        BTBStyle.REDUCED: ("main", "page"),
        BTBStyle.PDEDE: ("main", "page"),
        BTBStyle.BTBX: (),
    }

    @pytest.mark.parametrize(
        "style",
        (BTBStyle.CONVENTIONAL, BTBStyle.REDUCED, BTBStyle.PDEDE, BTBStyle.BTBX),
        ids=lambda s: s.value,
    )
    def test_full_overlap_never_lowers_tag_distinct_below_disjoint(self, style):
        results = {
            fraction: execute_scenario(
                self._pair_spec(fraction),
                style=style,
                asid_mode=ASIDMode.TAGGED,
                instructions=8_000,
                warmup_instructions=2_000,
            )
            for fraction in (0.0, 1.0)
        }
        disjoint = results[0.0].duplication
        overlapped = results[1.0].duplication
        for structure in self.FLOOR_STRUCTURES[style]:
            assert overlapped[structure]["tag_distinct"] >= disjoint[structure]["tag_distinct"], (
                f"{style.value}/{structure}: full overlap lowered tag-distinct "
                f"allocations {overlapped[structure]} below disjoint {disjoint[structure]}"
            )
        for counters in overlapped.values():
            # Tagging must store shared content once per address space.
            assert counters["tag_distinct"] >= counters["distinct"]
            assert counters["duplicated"] == (
                counters["tag_distinct"] - counters["distinct"]
            )

    @pytest.mark.parametrize("style", (BTBStyle.PDEDE, BTBStyle.REDUCED), ids=lambda s: s.value)
    def test_page_duplication_strictly_positive_once_shared(self, style):
        """Acceptance: tag-distinct Page-BTB allocations strictly exceed the
        distinct branch pages as soon as the tenants actually share pages."""
        result = execute_scenario(
            self._pair_spec(0.5),
            style=style,
            asid_mode=ASIDMode.TAGGED,
            instructions=8_000,
            warmup_instructions=2_000,
        )
        page = result.duplication["page"]
        assert page["tag_distinct"] > page["distinct"]
        assert page["duplicated"] > 0

"""Tests for the FTQ, the FDIP prefetcher and the branch prediction unit."""

from __future__ import annotations

import pytest

from repro.common.config import BTBStyle, MachineConfig, default_machine_config
from repro.common.errors import ConfigurationError
from repro.common.stats import Stats
from repro.isa.branch import BranchType
from repro.isa.instruction import Instruction
from repro.btb.conventional import ConventionalBTB
from repro.btb.ideal import IdealBTB
from repro.frontend.bpu import BranchPredictionUnit, PredictionOutcome
from repro.frontend.fdip import FDIPPrefetcher
from repro.frontend.ftq import FetchTargetQueue
from repro.memory.hierarchy import MemoryHierarchy


class TestFTQ:
    def test_capacity_bounded(self):
        ftq = FetchTargetQueue(capacity=4)
        for i in range(10):
            ftq.push(0x1000 + 4 * i)
        assert ftq.occupancy == 4
        assert ftq.is_full

    def test_push_returns_displaced_oldest(self):
        ftq = FetchTargetQueue(capacity=2)
        assert ftq.push(0x1) is None
        assert ftq.push(0x2) is None
        assert ftq.push(0x3) == 0x1

    def test_pop_order(self):
        ftq = FetchTargetQueue(capacity=4)
        ftq.push(0xA)
        ftq.push(0xB)
        assert ftq.pop() == 0xA
        assert ftq.pop() == 0xB
        assert ftq.pop() is None

    def test_flush(self):
        ftq = FetchTargetQueue(capacity=8)
        for i in range(5):
            ftq.push(i)
        assert ftq.flush() == 5
        assert ftq.occupancy == 0

    def test_requires_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            FetchTargetQueue(capacity=0)


class TestFDIP:
    def _make(self, enabled=True):
        machine = default_machine_config(fdip_enabled=enabled)
        stats = Stats()
        hierarchy = MemoryHierarchy(machine, stats)
        ftq = FetchTargetQueue(machine.fdip.ftq_instructions, stats)
        return FDIPPrefetcher(machine, ftq, hierarchy, stats), ftq

    def test_lead_grows_with_run_ahead(self):
        fdip, _ = self._make()
        assert fdip.lead_cycles == 0
        for i in range(60):
            fdip.observe_predicted_address(0x400000 + 4 * i)
        assert fdip.lead_cycles == 60 // 6

    def test_lead_capped_by_ftq(self):
        fdip, ftq = self._make()
        for i in range(1000):
            fdip.observe_predicted_address(0x400000 + 4 * i)
        assert fdip.lead_cycles == ftq.capacity // 6

    def test_stream_break_resets_lead(self):
        fdip, _ = self._make()
        for i in range(100):
            fdip.observe_predicted_address(0x400000 + 4 * i)
        fdip.on_stream_break()
        assert fdip.lead_cycles == 0

    def test_coverage_full_partial_none(self):
        fdip, _ = self._make()
        for i in range(200):
            fdip.observe_predicted_address(0x400000 + 4 * i)
        lead = fdip.lead_cycles
        full = fdip.cover_demand_miss(lead - 1)
        partial = fdip.cover_demand_miss(lead + 10)
        assert full.coverage == "full" and full.residual_latency == 0
        assert partial.coverage == "partial" and partial.residual_latency == 10

    def test_disabled_fdip_hides_nothing(self):
        fdip, _ = self._make(enabled=False)
        for i in range(200):
            fdip.observe_predicted_address(0x400000 + 4 * i)
        coverage = fdip.cover_demand_miss(14)
        assert coverage.coverage == "none"
        assert coverage.residual_latency == 14


def _bpu(btb=None, machine: MachineConfig | None = None) -> BranchPredictionUnit:
    machine = machine or default_machine_config(btb_style=BTBStyle.CONVENTIONAL, btb_entries=512)
    return BranchPredictionUnit(btb if btb is not None else ConventionalBTB(512), machine)


class TestBPU:
    def test_btb_miss_on_taken_direct_branch_is_decode_resteer(self):
        bpu = _bpu()
        jump = Instruction.branch(0x401000, BranchType.UNCONDITIONAL, True, 0x402000)
        prediction = bpu.process(jump)
        assert not prediction.btb_hit
        assert prediction.btb_miss_taken_branch
        assert prediction.outcome is PredictionOutcome.DECODE_RESTEER
        assert prediction.stream_break

    def test_btb_miss_on_not_taken_conditional_is_harmless(self):
        bpu = _bpu()
        branch = Instruction.branch(0x401000, BranchType.CONDITIONAL, False, 0x402000)
        prediction = bpu.process(branch)
        assert prediction.outcome is PredictionOutcome.CORRECT
        assert not prediction.btb_miss_taken_branch

    def test_btb_miss_on_indirect_branch_is_execute_flush(self):
        bpu = _bpu()
        indirect = Instruction.branch(0x401000, BranchType.INDIRECT, True, 0x480000)
        prediction = bpu.process(indirect)
        assert prediction.outcome is PredictionOutcome.EXECUTE_FLUSH

    def test_second_visit_hits_and_is_correct(self):
        bpu = _bpu()
        jump = Instruction.branch(0x401000, BranchType.UNCONDITIONAL, True, 0x402000)
        bpu.process(jump)
        prediction = bpu.process(jump)
        assert prediction.btb_hit
        assert prediction.outcome is PredictionOutcome.CORRECT
        assert prediction.predicted_target == jump.target

    def test_returns_use_ras_target(self):
        bpu = _bpu(btb=IdealBTB())
        call = Instruction.branch(0x401000, BranchType.CALL, True, 0x500000)
        ret = Instruction.branch(0x500040, BranchType.RETURN, True, call.fall_through)
        # Visit once so both branches are in the (ideal) BTB, then replay.
        bpu.process(call)
        bpu.process(ret)
        bpu.process(call)
        prediction = bpu.process(ret)
        assert prediction.btb_hit
        assert prediction.predicted_target == call.fall_through
        assert prediction.outcome is PredictionOutcome.CORRECT

    def test_indirect_target_change_flushes(self):
        bpu = _bpu(btb=IdealBTB())
        first = Instruction.branch(0x401000, BranchType.INDIRECT, True, 0x480000)
        second = Instruction.branch(0x401000, BranchType.INDIRECT, True, 0x490000)
        bpu.process(first)
        prediction = bpu.process(second)
        assert prediction.btb_hit
        assert prediction.outcome is PredictionOutcome.EXECUTE_FLUSH

    def test_non_branches_are_correct_and_cheap(self):
        bpu = _bpu()
        prediction = bpu.process(Instruction.non_branch(0x401000))
        assert prediction.outcome is PredictionOutcome.CORRECT
        assert not prediction.stream_break

    def test_conditional_training_reaches_predictor(self):
        bpu = _bpu(btb=IdealBTB())
        branch_taken = Instruction.branch(0x401000, BranchType.CONDITIONAL, True, 0x401100)
        for _ in range(50):
            bpu.process(branch_taken)
        prediction = bpu.process(branch_taken)
        assert prediction.predicted_taken
        assert prediction.outcome is PredictionOutcome.CORRECT

    def test_btb_updated_only_by_taken_branches(self):
        btb = ConventionalBTB(512)
        bpu = _bpu(btb=btb)
        not_taken = Instruction.branch(0x401000, BranchType.CONDITIONAL, False, 0x401100)
        bpu.process(not_taken)
        assert not btb.lookup(0x401000).hit

"""Unit tests for the perf-trajectory benchmark harness.

The timing legs themselves are exercised end-to-end by CI's bench-compare
job; these tests pin the *record construction* logic around them — most
importantly the regression guards: a leg that executed zero cells must not
crash the speedup computation, and legs that executed different grids must
fail loudly instead of producing a meaningless ratio.
"""

from __future__ import annotations

import pytest

from repro.experiments import bench


def _leg(cells: int, wall_s: float) -> dict:
    instructions = cells * 20_000
    return {
        "cells": cells,
        "instructions": instructions,
        "wall_s": wall_s,
        "ips": instructions / wall_s if wall_s > 0 else 0.0,
        "phases": {"decode_s": 0.0, "compose_s": 0.0, "simulate_s": 0.0},
    }


@pytest.fixture(autouse=True)
def _no_real_work(monkeypatch):
    """Keep run_smoke from generating traces or timing real sweeps."""
    monkeypatch.setattr(bench, "warm_traces", lambda scale, store=None: 0)
    monkeypatch.setattr(bench, "resolve_backend", lambda backend: backend)


def test_record_carries_per_leg_cells(monkeypatch):
    legs = {"python": _leg(6, 3.0), "numpy": _leg(6, 1.0)}
    monkeypatch.setattr(bench, "_time_sweep_leg", lambda backend, scale: legs[backend])
    record = bench.run_smoke(backends=["python", "numpy"], repeats=1)
    assert record["cells"] == 6
    for backend in ("python", "numpy"):
        assert record["backends"][backend]["cells"] == 6
        assert record["backends"][backend]["instructions"] == 6 * 20_000
    assert record["speedup_numpy_over_python"] == pytest.approx(3.0)


def test_zero_cell_leg_does_not_divide_by_zero(monkeypatch):
    """Regression: ips is 0.0 (not wall_s) when a leg executed nothing."""
    legs = {"python": _leg(0, 2.0), "numpy": _leg(0, 1.0)}
    monkeypatch.setattr(bench, "_time_sweep_leg", lambda backend, scale: legs[backend])
    record = bench.run_smoke(backends=["python", "numpy"], repeats=1)
    assert "speedup_numpy_over_python" not in record
    assert record["backends"]["python"]["ips"] == 0.0


def test_mismatched_leg_cell_counts_fail_loudly(monkeypatch):
    legs = {"python": _leg(6, 3.0), "numpy": _leg(4, 1.0)}
    monkeypatch.setattr(bench, "_time_sweep_leg", lambda backend, scale: legs[backend])
    with pytest.raises(RuntimeError, match="different cell counts"):
        bench.run_smoke(backends=["python", "numpy"], repeats=1)


def test_best_of_n_keeps_the_fastest_wall_time(monkeypatch):
    runs = iter([_leg(6, 5.0), _leg(6, 2.0), _leg(6, 4.0)])
    monkeypatch.setattr(bench, "_time_sweep_leg", lambda backend, scale: next(runs))
    record = bench.run_smoke(backends=["python"], repeats=3)
    assert record["backends"]["python"]["wall_s"] == 2.0
